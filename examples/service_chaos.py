"""Fault injection, retries, breakers and graceful partial answers.

Through PR 6 the service assumed a perfect wire.  This example turns the
failure model on: a seeded :class:`repro.distributed.FaultInjector` drops,
delays and duplicates messages between the simulated sites, takes one site
through recurring blackout windows, and the host's resilience layer
(:class:`repro.service.ResiliencePolicy`) answers with bounded retries,
per-site circuit breakers and per-request deadline budgets.

Three acts:

1. **A flaky site** — 40% of the messages through one site are dropped.
   Bounded retries absorb most of it; the accounting stays exactly-once
   (a retried round never double-counts traffic).
2. **A dead site** — every message through the site is lost.  After the
   retry budget the breaker trips and queries *degrade*: they return a
   :class:`repro.service.PartialAnswer` — a sound subset over the
   reachable fragments, with the missing sites listed — instead of
   failing.  Partial answers are never cached.
3. **Recovery** — the fault clears, the breaker's half-open probe
   succeeds, and the same query is complete again.

Run it with::

    python examples/service_chaos.py

The standing benchmark is ``python -m repro bench-chaos``, which replays a
mixed multi-tenant workload under the issue's fault schedule, verifies
every degraded answer differentially against solo engines, and emits
``BENCH_chaos.json``.
"""

from __future__ import annotations

from repro.distributed import FaultInjector, FaultPolicy, SiteFaultProfile
from repro.service import ResiliencePolicy, RetryPolicy, ServiceEngine
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation

QUERY = "//name"


def build_engine(injector: FaultInjector) -> ServiceEngine:
    fragmentation = clientele_paper_fragmentation(clientele_example_tree())
    return ServiceEngine(
        fragmentation,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.001),
            breaker_failure_threshold=3,
            breaker_reset_seconds=0.02,
        ),
        fault_injector=injector,
    )


def main() -> None:
    # -- act 1: a flaky site — retries absorb a 40% drop rate ---------------
    flaky = FaultInjector(
        FaultPolicy(sites={"S2": SiteFaultProfile(drop_probability=0.4)}, seed=5)
    )
    engine = build_engine(flaky)
    baseline = ServiceEngine(
        clientele_paper_fragmentation(clientele_example_tree())
    ).execute(QUERY)
    result = engine.execute(QUERY)
    stats = engine.resilience.stats
    print("act 1: flaky site (40% drops on S2)")
    print(f"  answers   : {len(result.answer_ids)}"
          f" (complete: {result.answer_ids == baseline.answer_ids})")
    print(f"  retries   : {stats.retries} (per site: {stats.retries_by_site})")
    print(f"  traffic   : {result.stats.communication_units} units,"
          f" {result.stats.message_count} messages — identical to fault-free"
          f" ({baseline.stats.communication_units} units,"
          f" {baseline.stats.message_count} messages)")
    print()

    # -- act 2: a dead site — the query degrades to a flagged subset --------
    dead = FaultInjector(
        FaultPolicy(sites={"S1": SiteFaultProfile(drop_probability=1.0)}, seed=7)
    )
    engine = build_engine(dead)
    partial = engine.execute(QUERY)
    print("act 2: dead site (100% drops on S1)")
    print(f"  partial   : {partial.is_partial}"
          f" — {len(partial.answer_ids)} of {len(baseline.answer_ids)} answers")
    print(f"  missing   : sites {partial.missing_sites},"
          f" fragments {partial.missing_fragments}")
    print(f"  sound     : {set(partial.answer_ids) <= set(baseline.answer_ids)}"
          f" (every returned node is in the complete answer)")
    print(f"  cached    : {len(engine.cache)} entries"
          " (partial answers never enter the cache)")
    print()

    # -- act 3: the fault clears — the breaker probes and re-closes ---------
    dead.enabled = False
    import time

    time.sleep(0.03)  # past breaker_reset_seconds: the probe is let through
    recovered = engine.execute(QUERY)
    breaker = engine.resilience.breaker("S1")
    print("act 3: recovery")
    print(f"  answers   : {len(recovered.answer_ids)}"
          f" (complete: {recovered.answer_ids == baseline.answer_ids})")
    print(f"  breaker   : {breaker.state}"
          f" after {engine.resilience.stats.breaker_trips} trip(s)"
          f" and {engine.resilience.stats.breaker_probes} probe(s)")
    print()
    print(engine.host.summary())


if __name__ == "__main__":
    main()
