"""Serving a read/write workload with incremental maintenance.

The document is no longer frozen: this example starts a
:class:`repro.service.ServiceEngine` over the XMark FT2 scenario and drives
a mixed stream of queries and typed mutations (insert subtree, delete
subtree, edit text) through it.  Every write lands through the mutation API
— admission-controlled alongside the reads — bumps exactly one fragment's
epoch, rebuilds exactly one columnar encoding, rolls the version tag
forward without walking the document, and retires only the cached answers
that depended on the touched fragment.

Run it with::

    python examples/service_updates.py [ops] [write_percent]

The standing benchmark is ``python -m repro bench-update``, which compares
this maintenance discipline against the rebuild-everything baseline and
emits ``BENCH_update.json``.
"""

from __future__ import annotations

import sys

from repro.service.server import ServiceEngine
from repro.updates import MixedWorkload
from repro.workloads.queries import PAPER_QUERIES
from repro.workloads.scenarios import build_ft2


def main() -> None:
    ops = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    write_percent = float(sys.argv[2]) if len(sys.argv) > 2 else 10.0

    scenario = build_ft2(total_bytes=120_000, seed=11)
    service = ServiceEngine(
        scenario.fragmentation, placement=scenario.placement, max_in_flight=16
    )
    print(f"scenario: {scenario.description}")
    print(
        f"document: {scenario.tree.size()} nodes over"
        f" {scenario.fragment_count} fragments\n"
    )

    workload = MixedWorkload(
        scenario.fragmentation,
        list(PAPER_QUERIES.values()),
        write_ratio=write_percent / 100.0,
        seed=42,
    )
    walks_before = scenario.fragmentation.full_walks
    for _ in range(ops):
        op = workload.next_op()
        if op.is_write:
            service.update(op.mutation)
        else:
            service.execute(op.query)

    print(service.summary())
    print(
        f"\nfull-document walks while serving:"
        f" {scenario.fragmentation.full_walks - walks_before}"
        f" (the epoch-based version tag never re-walks the tree)"
    )
    scenario.fragmentation.validate()
    print("fragmentation invariants: OK after every mutation")


if __name__ == "__main__":
    main()
