"""How the fragmentation strategy shapes distributed query performance.

The paper imposes no constraint on how the tree is fragmented — this example
shows why a user might still care.  One XMark-like document is fragmented
four different ways (coarse top-level cuts, size-balanced cuts, cuts at the
answer-bearing subtrees, random cuts) and the same query is run over each,
comparing the largest fragment (which bounds the parallel time), the measured
parallel time, the traffic, and how much the annotation-based pruner can cut
away.

Run it with::

    python examples/fragmentation_strategies.py
"""

from __future__ import annotations

from repro import (
    cut_by_size,
    cut_matching,
    cut_random,
    cut_top_level,
    evaluate_centralized,
    run_pax2,
)
from repro.bench.reporting import format_table
from repro.workloads.xmark import SiteSpec, generate_sites_document

QUERY = '/sites/site/people/person[profile/age > 30 and address/country = "US"]/name'


def build_document():
    specs = [SiteSpec.from_bytes(60_000) for _ in range(3)]
    return generate_sites_document(specs, seed=21)


def main() -> None:
    tree = build_document()
    expected = evaluate_centralized(tree, QUERY).answer_ids
    print(f"document: {tree.size()} nodes; query: {QUERY}")
    print(f"centralized answer: {len(expected)} person names\n")

    strategies = {
        "top-level (one site subtree per fragment)": cut_top_level(tree),
        "size-balanced (~600 elements each)": cut_by_size(tree, max_elements=600),
        "people subtrees (answer-aligned)": cut_matching(tree, "/sites/site/people"),
        "random cuts (seed 7)": cut_random(tree, fragment_count=8, seed=7),
    }

    rows = [[
        "strategy", "fragments", "largest fragment (elems)",
        "parallel ms (NA)", "parallel ms (XA)", "evaluated (XA)", "traffic (XA)",
    ]]
    for label, fragmentation in strategies.items():
        fragmentation.validate()
        plain = run_pax2(fragmentation, QUERY, use_annotations=False)
        pruned = run_pax2(fragmentation, QUERY, use_annotations=True)
        assert plain.answer_ids == expected and pruned.answer_ids == expected
        rows.append([
            label,
            str(len(fragmentation)),
            str(fragmentation.max_fragment_elements()),
            f"{plain.parallel_seconds * 1000:.1f}",
            f"{pruned.parallel_seconds * 1000:.1f}",
            f"{len(pruned.fragments_evaluated)}/{len(fragmentation)}",
            str(pruned.communication_units),
        ])
    print(format_table(rows))
    print()
    print("Reading the table:")
    print(" * the parallel time tracks the largest fragment — finer fragmentation helps")
    print("   until fragments stop shrinking (the paper's Experiment 1 effect);")
    print(" * aligning fragment boundaries with the query's answer paths lets the")
    print("   XPath-annotation pruner skip most fragments outright;")
    print(" * even adversarial random nesting changes none of the answers — only the")
    print("   performance profile (the paper's 'no constraints on fragmentation' claim).")


if __name__ == "__main__":
    main()
