"""Serving many concurrent clients through the service layer.

The batch engine (``DistributedQueryEngine``) answers one query at a time;
this example starts a :class:`repro.service.ServiceEngine` over the XMark
FT2 scenario and fires a multi-user request stream at it — N simulated
clients drawing from the paper's four benchmark queries — then prints what a
serving system cares about: throughput, latency percentiles, cache hit rate,
single-flight coalescing and per-site actor load, cold versus warm cache.

Run it with::

    python examples/service_concurrent.py [clients] [requests]

The equivalent CLI verbs are ``python -m repro serve`` (your own document and
query file) and ``python -m repro bench-service`` (the standing benchmark,
which also emits ``BENCH_service.json``).
"""

from __future__ import annotations

import sys
import time

from repro import DistributedQueryEngine
from repro.workloads.queries import PAPER_QUERIES
from repro.workloads.scenarios import build_ft2


def main() -> None:
    clients = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    requests = int(sys.argv[2]) if len(sys.argv) > 2 else 128

    scenario = build_ft2(total_bytes=120_000, seed=11)
    engine = DistributedQueryEngine(scenario.fragmentation, placement=scenario.placement)
    print(f"scenario: {scenario.description}")
    print(f"document: {scenario.tree.size()} nodes over {scenario.fragment_count} fragments\n")

    # The request stream: `requests` queries round-robin over the paper's
    # four benchmark queries — a stand-in for many users asking overlapping
    # questions about the same document.
    pool = list(PAPER_QUERIES.values())
    stream = [pool[index % len(pool)] for index in range(requests)]

    # Baseline: the seed's only serving mode, a sequential execute() loop.
    started = time.perf_counter()
    for query in stream:
        engine.execute(query)
    sequential_wall = time.perf_counter() - started
    print(f"sequential loop  : {requests / sequential_wall:8.1f} queries/s"
          f" ({sequential_wall * 1000:.1f} ms wall)")

    # The service: admission control, per-site actors, normalized-query cache.
    service = engine.as_service(max_in_flight=clients, site_parallelism=4)

    started = time.perf_counter()
    service.serve_batch(stream, concurrency=clients)
    cold_wall = time.perf_counter() - started
    print(f"service (cold)   : {requests / cold_wall:8.1f} queries/s"
          f" ({cold_wall * 1000:.1f} ms wall, {clients} clients)")

    started = time.perf_counter()
    service.serve_batch(stream, concurrency=clients)
    warm_wall = time.perf_counter() - started
    print(f"service (warm)   : {requests / warm_wall:8.1f} queries/s"
          f" ({warm_wall * 1000:.1f} ms wall, {clients} clients)\n")

    print(service.summary())
    print()
    print(f"speedup vs sequential: {sequential_wall / cold_wall:.1f}x cold,"
          f" {sequential_wall / warm_wall:.1f}x warm")


if __name__ == "__main__":
    main()
