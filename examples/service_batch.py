"""The fused batch tier: one scan per fragment per query wave.

Many concurrent users ask overlapping questions about the same document.
Without batching every in-flight query walks every relevant fragment on its
own; the batch tier coalesces the queries that reach the same fragment
round into **one** fused scan, with exact-duplicate queries (same
normalized form) collapsed to a single kernel slot first.

This example shows both entry points:

1. the synchronous wave runner — ``DistributedQueryEngine.run_batch``
   evaluates a whole list of queries in shared site rounds, and each query
   still gets the exact per-query RunStats its solo run would produce;
2. the service layer — concurrent submissions share fused site visits
   through the batching window (`ServiceConfig.batching`, on by default),
   and the batch-efficiency counters (queries per fused scan, dedup hits,
   window latency) appear next to the cache statistics.

Run it with::

    python examples/service_batch.py [wave_size]
"""

from __future__ import annotations

import sys
import time

from repro import DistributedQueryEngine
from repro.workloads.queries import PAPER_QUERIES
from repro.workloads.scenarios import build_ft2


def main() -> None:
    wave_size = int(sys.argv[1]) if len(sys.argv) > 1 else 16

    scenario = build_ft2(total_bytes=120_000, seed=11)
    engine = DistributedQueryEngine(scenario.fragmentation, placement=scenario.placement)
    print(f"scenario: {scenario.description}")
    print(f"document: {scenario.tree.size()} nodes over {scenario.fragment_count} fragments\n")

    # A wave: `wave_size` in-flight queries drawn round-robin from the
    # paper's four benchmark queries — so a wave of 16 holds only 4 distinct
    # forms, and the duplicates share kernel slots.
    pool = list(PAPER_QUERIES.values())
    wave = [pool[index % len(pool)] for index in range(wave_size)]

    # --- 1. synchronous: query-at-a-time vs one fused wave ----------------
    for query in wave:
        engine.run(query)  # warm the flat encodings and dispatch tables
    started = time.perf_counter()
    solo_stats = [engine.run(query) for query in wave]
    solo_wall = time.perf_counter() - started

    started = time.perf_counter()
    batch_stats = engine.run_batch(wave)
    batch_wall = time.perf_counter() - started

    assert [s.answer_ids for s in batch_stats] == [s.answer_ids for s in solo_stats]
    print(f"query-at-a-time  : {solo_wall * 1000:8.1f} ms for {wave_size} queries")
    print(f"fused wave       : {batch_wall * 1000:8.1f} ms"
          f" ({solo_wall / batch_wall:.1f}x, identical answers and accounting)\n")

    # --- 2. the service layer: fused site visits under concurrency --------
    # Cache and single-flight coalescing disabled so every request actually
    # reaches the batcher (in production you want all three layers on).
    service = engine.as_service(
        cache_capacity=0, coalesce=False, max_in_flight=wave_size,
        batch_window=0.001,
    )
    service.serve_batch(wave, concurrency=wave_size)
    print(service.batcher.stats.summary())
    print()
    print(service.summary())


if __name__ == "__main__":
    main()
