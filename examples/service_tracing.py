"""Tracing live service traffic: spans, attribution, guarantees, exports.

This example attaches a :class:`repro.obs.Tracer` to a
:class:`repro.service.ServiceEngine` over the XMark FT2 scenario, serves a
concurrent query wave followed by a mixed read/write stream (so both the
query path and the update path — gate wait, fragment apply, version roll,
cache retirement — leave spans), and then uses the finished span trees to
answer the questions aggregates cannot: where did one request spend its
time (admission queue, batching window, kernel scan, simulated wire,
reassembly), did any site exceed the paper's per-site visit bound
(PaX2 ≤ 2), and what does the whole workload look like as a flame chart.

It writes three artifacts next to the repository root:

``trace_spans.jsonl``
    One JSON line per request — the nested span tree, grep-able.
``trace_chrome.json``
    Chrome trace events; load the file at https://ui.perfetto.dev to see
    the requests as nested flame slices.
``trace_slow.jsonl``
    Requests at or above the slow threshold, with full RunStats dumps.

Run it with::

    python examples/service_tracing.py [requests] [concurrency]

The standing benchmark is ``python -m repro bench-obs``, which measures the
tracing overhead on/off, the attribution residue and the guarantee-checker
coverage, and emits ``BENCH_obs.json``.
"""

from __future__ import annotations

import sys

from repro.obs import ChromeTraceExporter, JsonLinesExporter, SlowQueryLog, Tracer
from repro.service.server import ServiceEngine
from repro.updates import MixedWorkload
from repro.workloads.queries import PAPER_QUERIES
from repro.workloads.scenarios import build_ft2


def main() -> None:
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    concurrency = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    scenario = build_ft2(total_bytes=80_000, seed=11)
    tracer = Tracer(
        exporters=[
            JsonLinesExporter("trace_spans.jsonl"),
            ChromeTraceExporter("trace_chrome.json"),
            SlowQueryLog("trace_slow.jsonl", threshold_seconds=0.05),
        ],
        check_guarantees=True,
    )
    service = ServiceEngine(
        scenario.fragmentation,
        placement=scenario.placement,
        tracer=tracer,
        max_in_flight=concurrency,
    )
    print(f"scenario: {scenario.description}")

    queries = [
        list(PAPER_QUERIES.values())[index % len(PAPER_QUERIES)]
        for index in range(requests)
    ]
    service.serve_batch(queries, concurrency=concurrency)

    # A mixed read/write tail: every write traces the update path too
    # (gate wait, fragment apply, version roll, cache retirement).
    workload = MixedWorkload(
        scenario.fragmentation,
        list(PAPER_QUERIES.values()),
        write_ratio=0.25,
        seed=42,
    )
    for _ in range(requests // 2):
        op = workload.next_op()
        if op.is_write:
            service.update(op.mutation)
        else:
            service.execute(op.query)
    tracer.close()

    print(service.summary())

    by_kind = {}
    for root in tracer.finished:
        by_kind[root.kind] = by_kind.get(root.kind, 0) + 1
    print(
        f"\ntraced {tracer.requests_traced} root span(s): "
        + ", ".join(f"{count} {kind}" for kind, count in sorted(by_kind.items()))
    )

    # -- where did the slowest request spend its time? ----------------------
    slowest = max(tracer.finished, key=lambda root: root.duration)
    print(f"\nslowest request: {slowest.attributes.get('query', slowest.name)!r}")
    print(f"  wall clock     : {slowest.duration * 1000:.2f} ms")
    for stage, seconds in sorted(
        slowest.breakdown().items(), key=lambda item: -item[1]
    ):
        share = seconds / slowest.duration * 100.0
        print(f"  {stage:<12s} : {seconds * 1000:7.2f} ms  ({share:4.1f}%)")
    # breakdown() reconciles to wall clock by construction (uncovered
    # instants are charged to the synthetic "dispatch" stage), so the
    # shares above account for the whole request.

    # -- the paper's guarantee, verified on every evaluated request ---------
    checker = tracer.guarantees
    print(
        f"\nguarantees: {checker.checked} evaluation(s) checked against the"
        f" PaX2 visit bound, {checker.violation_count} violation(s)"
    )
    visits = [
        root.attributes["max_site_visits"]
        for root in tracer.finished
        if "max_site_visits" in root.attributes
    ]
    if visits:
        print(f"  worst per-site visits observed: {max(visits)} (bound: 2)")

    # -- per-stage latency distribution over the whole workload ------------
    print("\nper-stage attributed seconds across the workload:")
    for key, histogram in sorted(tracer.histograms.items()):
        if key.startswith("stage:"):
            print(
                f"  {key.split(':', 1)[1]:<12s}:"
                f" {histogram.count:4d} samples,"
                f" mean {histogram.mean * 1000:6.2f} ms,"
                f" p95 <= {histogram.quantile(0.95) * 1000:.1f} ms"
            )

    print(
        "\nwrote trace_spans.jsonl, trace_chrome.json (open at"
        " https://ui.perfetto.dev) and trace_slow.jsonl"
    )


if __name__ == "__main__":
    main()
