"""The paper's running example, replayed end to end (Figures 1-6).

The document is the investment-company clientele of Figure 1: three clients
(Anna, Kim, Lisa), their brokers, the markets they trade in and their stock
positions.  It is fragmented exactly as the paper draws it — brokers and
NASDAQ markets live on remote sites for administrative/regulatory reasons —
and the queries discussed throughout Sections 1-5 are evaluated with ParBoX,
PaX3 and PaX2, printing the per-stage statistics so the three-visit /
two-visit behaviour is visible.

Run it with::

    python examples/investment_clientele.py
"""

from __future__ import annotations

from repro import DistributedQueryEngine, run_parbox, run_pax2, run_pax3, serialize
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)


def show_answers(tree, stats) -> str:
    return ", ".join(tree.node(node_id).text() for node_id in stats.answer_ids) or "(none)"


def main() -> None:
    tree = clientele_example_tree()
    print("The clientele document (Figure 1):\n")
    print(serialize(tree, pretty=True))

    fragmentation = clientele_paper_fragmentation(tree)
    print("Fragmentation (Figure 1's dashed regions / Figure 2's fragment tree):\n")
    print(fragmentation.summary())
    print()

    # --- Section 1: the Boolean query Q -----------------------------------
    boolean_query = CLIENTELE_QUERIES["boolean_goog"]
    stats = run_parbox(fragmentation, boolean_query)
    print(f"Boolean query  {boolean_query}")
    print(f"  ParBoX result: {bool(stats.answer_ids)}  "
          f"(each site visited {stats.max_site_visits} time, "
          f"{stats.communication_units} traffic units)\n")

    # --- Section 1: the data-selecting query Q' ----------------------------
    q_prime = CLIENTELE_QUERIES["brokers_goog"]
    print(f"Data-selecting query  {q_prime}")
    for name, runner in (("PaX3", run_pax3), ("PaX2", run_pax2)):
        stats = runner(fragmentation, q_prime)
        print(f"  {name}: answers = {show_answers(tree, stats)}")
        print(f"        max site visits = {stats.max_site_visits}, "
              f"traffic = {stats.communication_units} units, "
              f"stages = {[stage.name for stage in stats.stages]}")
    print()

    # --- Section 2.2: GOOG but not YHOO ------------------------------------
    q1 = CLIENTELE_QUERIES["brokers_goog_not_yhoo"]
    stats = run_pax2(fragmentation, q1)
    print(f"Query Q1 (negation)  {q1}")
    print(f"  answers: {show_answers(tree, stats)}   (Bache is excluded: it also trades YHOO)\n")

    # --- Example 2.1 / 3.3: US clients on NASDAQ ----------------------------
    example_21 = CLIENTELE_QUERIES["us_nasdaq_brokers"]
    print(f"Example 2.1 query  {example_21}")
    stats3 = run_pax3(fragmentation, example_21)
    stats2 = run_pax2(fragmentation, example_21)
    print(f"  PaX3: {show_answers(tree, stats3)}  (visits {stats3.max_site_visits}, "
          f"{len(stats3.stages)} stages)")
    print(f"  PaX2: {show_answers(tree, stats2)}  (visits {stats2.max_site_visits}, "
          f"{len(stats2.stages)} stages)\n")

    # --- Section 5 / Example 5.1: XPath-annotations -------------------------
    engine = DistributedQueryEngine(fragmentation)
    client_names = CLIENTELE_QUERIES["client_names"]
    print(f"Example 5.1 query  {client_names}")
    print(engine.explain(client_names))
    pruned = engine.run(client_names, use_annotations=True)
    unpruned = engine.run(client_names, use_annotations=False)
    print(f"  answers (both): {show_answers(tree, pruned)}")
    print(f"  without annotations: {len(unpruned.fragments_evaluated)} fragments evaluated, "
          f"{unpruned.communication_units} traffic units")
    print(f"  with annotations   : {len(pruned.fragments_evaluated)} fragment evaluated, "
          f"{pruned.communication_units} traffic units "
          f"(pruned {', '.join(pruned.fragments_pruned)})")


if __name__ == "__main__":
    main()
