"""Hosting many documents behind one shared scheduler.

The service layer no longer assumes one document: this example builds a
:class:`repro.service.ServiceHost`, registers several XMark tenants in its
:class:`repro.service.DocumentStore` catalog, and drives an interleaved
multi-tenant read/write stream through the shared scheduler — one actor
pool, one admission gate, one LRU result cache whose keys are namespaced by
document (a tenant can only ever hit its own entries), and per-document
sessions carrying the version tags and write gates (writes to different
documents never serialize against each other).

It then drops one tenant mid-flight: only that tenant's cached answers are
purged, and the survivors keep serving hits as if nothing happened.

Run it with::

    python examples/service_multidoc.py [documents] [ops_per_document]

The standing benchmark is ``python -m repro bench-tenancy``, which compares
this shared host against N isolated single-document engines (differentially
verified first) and emits ``BENCH_tenancy.json``.
"""

from __future__ import annotations

import sys
import time

from repro.service import ServiceHost
from repro.workloads.multidoc import MultiDocumentWorkload, build_tenants


def main() -> None:
    documents = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    ops_per_document = int(sys.argv[2]) if len(sys.argv) > 2 else 60

    tenants = build_tenants(documents, total_bytes=40_000, seed=11)
    host = ServiceHost(max_in_flight=4 * documents)
    for tenant in tenants:
        host.register(tenant.name, tenant.fragmentation, tenant.placement)
    print(host.store.summary())
    print()

    # One interleaved multi-tenant stream: each tenant contributes reads
    # (the paper's four benchmark queries) and writes (typed mutations),
    # round-robin across documents.
    workload = MultiDocumentWorkload(tenants, write_ratio=0.1, seed=42)
    started = time.perf_counter()
    for name, op in workload.ops(ops_per_document):
        if op.is_write:
            host.update(name, op.mutation)
        else:
            host.execute(name, op.query)
    wall = time.perf_counter() - started
    total_ops = documents * ops_per_document
    print(f"served {total_ops} ops over {documents} documents"
          f" in {wall * 1000:.1f} ms ({total_ops / wall:.0f} ops/s)\n")
    print(host.summary())

    # Drop one tenant: its cache entries go, everyone else's survive.
    victim = tenants[0].name
    survivor = tenants[-1].name if documents > 1 else victim
    purged = host.drop_document(victim)
    print(f"\ndropped {victim!r}: purged {purged} cached answers")
    if survivor != victim:
        hits_before = host.cache.stats.document(survivor).hits
        host.execute(survivor, tenants[-1].queries[0])
        hits_after = host.cache.stats.document(survivor).hits
        print(f"{survivor!r} still serves from cache:"
              f" hits {hits_before} -> {hits_after}")


if __name__ == "__main__":
    main()
