"""Tenant interference protection: snapshots, fair queueing, shedding.

One shared :class:`repro.service.ServiceHost` serves every tenant, so a
flooding tenant is everyone's problem unless the host actively isolates
them.  This example walks the three mechanisms PR 8 added:

1. **MVCC snapshot reads** — a reader pins the current version's columnar
   encodings at admission and a concurrent writer never waits for it; the
   overlapped read stays exact at its pinned version
   (``stats.evaluated_version``).
2. **Weighted-fair admission** — a 2x-weighted tenant keeps its admission
   share while a neighbour floods the queue; per-document slices cap how
   many host slots the flooder can hold at once.
3. **Adaptive overload shedding** — submissions over a tenant's
   queue-depth budget fail fast with
   :class:`repro.service.OverloadShedError`, counted against that tenant
   only; the quiet neighbour never sheds.

Run it with::

    python examples/service_fairness.py

The standing benchmark is ``python -m repro bench-fairness``, which pits a
victim tenant against a write-heavy antagonist under both this stack and
the legacy gate + flat semaphore, differentially verifies every snapshot
read against a quiesced re-run at its pinned version, and emits
``BENCH_fairness.json``.
"""

from __future__ import annotations

import asyncio

from repro.service import FairnessPolicy, OverloadShedError, ServiceHost
from repro.updates import EditText
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation

QUERY = "//name"


def fragmentation():
    return clientele_paper_fragmentation(clientele_example_tree())


async def snapshot_reads(host: ServiceHost) -> None:
    session = host.session("victim")
    pinned_version = session.version
    text = next(
        node
        for node in session.fragmentation[session.fragmentation.fragment_ids()[0]].iter_span()
        if node.is_text
    )
    read = asyncio.create_task(host.submit("victim", QUERY))
    while session.snapshots.stats.pins == 0:  # wait until the read pinned
        await asyncio.sleep(0)
    # The write lands immediately — it never waits for the pinned reader.
    await host.apply_update("victim", EditText(text.node_id, "mid-read"))
    result = await read
    print(f"  read pinned {result.stats.evaluated_version!r}")
    print(f"  write rolled the live tree to {session.version!r} without waiting")
    print(f"  snapshot stats: {session.snapshots.stats.to_dict()}")


async def fair_shares(host: ServiceHost) -> None:
    order = []

    async def one(name: str) -> None:
        await host.submit(name, QUERY)
        order.append(name)

    # The antagonist floods 36 requests into the queue; the victim submits
    # 12.  Under a flat FIFO the victim's requests would drain last —
    # weighted-fair admission interleaves them at the victim's 2x weight
    # while the slice caps the antagonist at one of the four host slots.
    tasks = [asyncio.create_task(one("antagonist")) for _ in range(36)]
    tasks += [asyncio.create_task(one("victim")) for _ in range(12)]
    await asyncio.gather(*tasks)
    contended = order[: order.index("victim") + order.count("victim")]
    while contended and contended[-1] != "victim":
        contended.pop()
    victim_done = contended.count("victim")
    print(f"  victim finished its 12 reads after only"
          f" {len(contended) - victim_done} of 36 antagonist reads,"
          f" despite submitting last")


async def overload_shedding() -> None:
    # A separate host with a queue-depth budget: two queued requests per
    # document, anything beyond is shed — for that document only.
    host = ServiceHost(
        max_in_flight=1,
        cache_capacity=0,
        coalesce=False,
        fairness=FairnessPolicy(max_queue_depth=2),
    )
    host.register("victim", fragmentation())
    host.register("antagonist", fragmentation())
    admission = host._bound_admission()
    await admission.acquire("antagonist")  # wedge the flooder's one slot
    backlog = [
        asyncio.create_task(host.submit("antagonist", QUERY)) for _ in range(2)
    ]
    await asyncio.sleep(0)
    shed = 0
    for _ in range(5):
        try:
            await host.submit("antagonist", QUERY)
        except OverloadShedError:
            shed += 1
    # The quiet tenant queues but is never shed by the flooder's budget.
    victim_task = asyncio.create_task(host.submit("victim", QUERY))
    await asyncio.sleep(0)
    admission.release("antagonist")
    await asyncio.gather(*backlog)
    victim = await victim_task
    print(f"  {shed}/5 burst submissions shed with OverloadShedError")
    print(f"  victim answered {len(victim.answer_ids)} nodes, shed counters:"
          f" antagonist={host.metrics.document('antagonist').shed}"
          f" victim={host.metrics.document('victim').shed}")


def main() -> None:
    host = ServiceHost(
        max_in_flight=4,
        cache_capacity=0,
        coalesce=False,
        fairness=FairnessPolicy(
            weights={"victim": 2.0, "antagonist": 1.0},
            slices={"antagonist": 1},
        ),
    )
    host.register("victim", fragmentation())
    host.register("antagonist", fragmentation())

    print("1. MVCC snapshot reads: the write never waits for the reader")
    asyncio.run(snapshot_reads(host))
    print("2. Weighted-fair admission under a flood")
    asyncio.run(fair_shares(host))
    print("3. Overload shedding is per-tenant")
    asyncio.run(overload_shedding())
    print()
    print(host.summary())


if __name__ == "__main__":
    main()
