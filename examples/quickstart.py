"""Quickstart: fragment a document, distribute it, and run XPath queries.

This is the five-minute tour of the library:

1. parse an XML document (here: a small product catalog written inline),
2. fragment it (one fragment per department subtree),
3. hand the fragmentation to a :class:`repro.DistributedQueryEngine`, which
   places one fragment per simulated site,
4. run data-selecting XPath queries with PaX2 (the paper's best algorithm)
   and look at the answers *and* at the run statistics the paper's
   guarantees are about (site visits, network traffic, answer shipping).

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DistributedQueryEngine, cut_matching, parse_xml

CATALOG = """
<shop>
  <department>
    <name>fiction</name>
    <book><title>Dune</title><price>9</price><stock>3</stock></book>
    <book><title>Hyperion</title><price>12</price><stock>0</stock></book>
    <book><title>Foundation</title><price>11</price><stock>5</stock></book>
  </department>
  <department>
    <name>science</name>
    <book><title>Cosmos</title><price>15</price><stock>7</stock></book>
    <book><title>Relativity</title><price>8</price><stock>2</stock></book>
  </department>
  <department>
    <name>history</name>
    <book><title>SPQR</title><price>14</price><stock>1</stock></book>
    <book><title>Persian Fire</title><price>13</price><stock>0</stock></book>
  </department>
</shop>
"""

QUERIES = {
    "titles of affordable books in stock": "//book[price < 13][stock > 0]/title",
    "departments selling something above 14": "department[book/price > 14]/name",
    "all prices under the root, absolute path": "/shop/department/book/price",
    "books whose title is 'cosmos' (case-insensitive)": '//book[title = "cosmos"]/price',
}


def main() -> None:
    # 1. Parse.  parse_xml builds the library's own tree model; stable node
    #    ids survive fragmentation, which is how distributed answers are
    #    compared against the centralized ground truth.
    tree = parse_xml(CATALOG)
    print(f"document: {tree.size()} nodes, {tree.element_count()} elements\n")

    # 2. Fragment: every <department> subtree becomes its own fragment; the
    #    <shop> root plus whatever remains forms the root fragment F0.
    fragmentation = cut_matching(tree, "department")
    print(fragmentation.summary(), "\n")

    # 3. Build the engine.  Default: PaX2 + XPath-annotations, one simulated
    #    site per fragment, the root fragment's site acting as coordinator.
    engine = DistributedQueryEngine(fragmentation)
    print(engine.describe_fragmentation(), "\n")

    # 4. Query.
    for description, query in QUERIES.items():
        result = engine.execute(query)
        print(f"-- {description}")
        print(f"   query   : {query}")
        print(f"   answers : {result.texts()}")
        stats = result.stats
        print(
            f"   visits<= {stats.max_site_visits}, "
            f"traffic = {stats.communication_units} units, "
            f"fragments evaluated = {len(stats.fragments_evaluated)}"
            + (f" (pruned: {', '.join(stats.fragments_pruned)})" if stats.fragments_pruned else "")
        )
        # Sanity: the distributed answer equals the centralized one.
        assert result.answer_ids == engine.evaluate_centralized(query).answer_ids
        print()

    # Boolean queries go through ParBoX (one visit per site).
    print("-- Boolean query via ParBoX")
    print("   is any book out of stock? ->", engine.execute_boolean(".[//book/stock = '0']"))


if __name__ == "__main__":
    main()
