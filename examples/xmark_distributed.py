"""The paper's benchmark setting at laptop scale (Section 6).

Generates the FT2 scenario of Experiments 2/3 — four XMark "sites" split into
ten fragments with the paper's 5/12/28/8 size ratios, one fragment per
simulated machine — and runs the four benchmark queries Q1-Q4 with every
algorithm variant the figures plot, printing a comparison table plus the
effect of XPath-annotation pruning per query.

Run it with::

    python examples/xmark_distributed.py [approx_total_bytes]
"""

from __future__ import annotations

import sys

from repro import evaluate_centralized, run_naive_centralized, run_pax2, run_pax3
from repro.bench.reporting import format_table
from repro.workloads.queries import PAPER_QUERIES
from repro.workloads.scenarios import build_ft2

VARIANTS = [
    ("PaX3-NA", run_pax3, False),
    ("PaX3-XA", run_pax3, True),
    ("PaX2-NA", run_pax2, False),
    ("PaX2-XA", run_pax2, True),
    ("Naive", run_naive_centralized, None),
]


def main() -> None:
    total_bytes = int(sys.argv[1]) if len(sys.argv) > 1 else 400_000
    scenario = build_ft2(total_bytes=total_bytes, seed=11)
    print(f"scenario: {scenario.description}")
    print(f"document: {scenario.tree.size()} nodes (~{scenario.total_bytes} bytes)\n")

    print("fragments (paper size classes in parentheses):")
    size_classes = scenario.metadata["size_class"]
    for fragment_id, size in scenario.fragment_sizes().items():
        print(f"  {fragment_id} @ {scenario.placement[fragment_id]}: ~{size} bytes "
              f"[{size_classes[fragment_id]}]")
    print()

    rows = [[
        "query", "variant", "answers", "parallel ms", "total ms",
        "traffic units", "max visits", "fragments",
    ]]
    for query_name, query in PAPER_QUERIES.items():
        expected = evaluate_centralized(scenario.tree, query).answer_ids
        for label, runner, use_annotations in VARIANTS:
            if use_annotations is None:
                stats = runner(scenario.fragmentation, query, placement=scenario.placement)
            else:
                stats = runner(
                    scenario.fragmentation, query,
                    placement=scenario.placement, use_annotations=use_annotations,
                )
            if stats.answer_ids != expected:
                raise SystemExit(f"{label} disagrees with the centralized answer on {query_name}")
            rows.append([
                query_name,
                label,
                str(stats.answer_count),
                f"{stats.parallel_seconds * 1000:.1f}",
                f"{stats.total_seconds * 1000:.1f}",
                str(stats.communication_units),
                str(stats.max_site_visits),
                str(len(stats.fragments_evaluated)),
            ])
    print(format_table(rows))
    print()
    print("Things to notice (the paper's claims, at this scale):")
    print(" * PaX2 beats PaX3 whenever the query has qualifiers (Q3, Q4): one pass less.")
    print(" * XPath-annotations evaluate only 4 (Q1) / 6 (Q2) of the 10 fragments;")
    print("   for Q4 the leading '//' makes every fragment relevant, so XA changes nothing.")
    print(" * PaX* traffic is tiny and dominated by the answers; the naive strategy ships")
    print("   the whole document to the coordinator.")
    print(" * No algorithm ever visits a site more than 3 (PaX3) or 2 (PaX2) times.")


if __name__ == "__main__":
    main()
