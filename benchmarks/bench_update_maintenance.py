"""Incremental maintenance under updates: epoch tags vs rebuild-everything.

Tracks the update subsystem's trajectory: a mixed read/write stream served
through the version-tagged result cache, with writes landing through the
typed mutation API.  Incremental maintenance bumps one fragment epoch per
write, rebuilds one columnar encoding and retires only the cached answers
that depended on the touched fragment; the rebuild-everything baseline (the
pre-update-subsystem behavior) re-fingerprints the whole document, rebuilds
every encoding and flushes the whole cache on every write.

The tracked criterion is the ISSUE's acceptance bar: at a 10% write ratio
on the XMark workload, incremental maintenance sustains at least 3x the
baseline's throughput, with **zero** full-document walks on the query path
(counter-asserted — the harness raises if the incremental replay ever walks
the tree).  Before timing, the mutated final state is differentially
verified: every algorithm x engine x annotation mode must return answers
and traffic accounting identical to a from-scratch re-fragmentation.

``repro bench-update`` runs the same harness from the CLI and emits
``BENCH_update.json`` for the per-PR artifact trail.
"""

from __future__ import annotations

from conftest import scaled, write_report

from repro.bench.update_bench import (
    render_summary,
    run_update_benchmark,
    write_benchmark_json,
)

TOTAL_BYTES = scaled(150_000)


def test_incremental_maintenance_speedup(benchmark, results_dir):
    """Incremental maintenance is >= 3x rebuild-everything at 10% writes."""
    report = benchmark.pedantic(
        run_update_benchmark,
        kwargs={"total_bytes": TOTAL_BYTES, "ops": 300},
        rounds=1,
        iterations=1,
    )
    write_report(results_dir, "update_maintenance", render_summary(report))
    write_benchmark_json(report, results_dir / "BENCH_update.json")

    # Differential verification ran before every timed configuration.
    for entry in report["ratios"].values():
        assert entry["verified_identical"]
        assert entry["incremental"]["full_document_walks"] == 0
    assert report["headline"]["met"]
    assert report["headline"]["query_path_full_walks"] == 0
    assert report["ratios"]["0.1"]["speedup"] >= 3.0
