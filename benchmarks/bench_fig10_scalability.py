"""Figure 10: parallel evaluation time vs. cumulative data size (Experiment 2).

Regenerates the four sub-figures over the FT2 fragment tree and checks the
paper's qualitative claims:

* every variant scales (roughly) linearly with data size,
* annotations more than halve Q1 and Q2 (only 4 / 6 of 10 fragments run),
* PaX2 beats PaX3 when qualifiers are present (Q3, Q4), and annotations help
  PaX2 further on Q3,
* on Q4 (a ``//`` that reaches every fragment) annotations do not prune.
"""

from __future__ import annotations

from conftest import scaled, write_report

from repro.bench.experiment2 import run_experiment2

SIZES = [scaled(300_000 + 60_000 * step) for step in range(6)]


def _series(report, label):
    return report.series[label].values


def _run(benchmark):
    return benchmark.pedantic(
        run_experiment2, kwargs={"sizes": SIZES}, rounds=1, iterations=1
    )


def test_fig10a_q1_scalability(benchmark, results_dir):
    reports = _run(benchmark)
    fig = reports["fig10a"]
    write_report(results_dir, "fig10a", fig.render())
    na, xa = _series(fig, "PaX3-NA-Q1"), _series(fig, "PaX3-XA-Q1")
    assert na[-1] > na[0]          # more data, more time
    assert sum(xa) < sum(na)       # annotations prune 6 of 10 fragments


def test_fig10b_q2_scalability(benchmark, results_dir):
    reports = _run(benchmark)
    fig = reports["fig10b"]
    write_report(results_dir, "fig10b", fig.render())
    na, xa = _series(fig, "PaX3-NA-Q2"), _series(fig, "PaX3-XA-Q2")
    assert na[-1] > na[0]
    assert sum(xa) < sum(na)


def test_fig10c_q3_scalability(benchmark, results_dir):
    reports = _run(benchmark)
    fig = reports["fig10c"]
    write_report(results_dir, "fig10c", fig.render())
    pax3 = _series(fig, "PaX3-NA-Q3")
    pax2 = _series(fig, "PaX2-NA-Q3")
    pax2_xa = _series(fig, "PaX2-XA-Q3")
    assert sum(pax2) < sum(pax3)        # one pass instead of two
    assert sum(pax2_xa) < sum(pax2)     # annotations prune the combined pass


def test_fig10d_q4_scalability(benchmark, results_dir):
    reports = _run(benchmark)
    fig = reports["fig10d"]
    write_report(results_dir, "fig10d", fig.render())
    pax3 = _series(fig, "PaX3-NA-Q4")
    pax2 = _series(fig, "PaX2-NA-Q4")
    assert sum(pax2) < sum(pax3)
    assert pax3[-1] > pax3[0]
