"""Multi-tenancy: one shared ServiceHost vs N isolated single-doc engines.

Like ``bench_service_throughput`` this has no counterpart figure in the
paper — it tracks the ROADMAP's consolidation story: hosting N documents
behind one scheduler (one actor pool, one admission gate, one
document-namespaced result cache) may not cost more than 20% of the
throughput N fully isolated deployments achieve on the same per-tenant
mixed read/write streams.  The full report is written to
``results/BENCH_tenancy.json``.

Asserted qualitative claims:

* every read of every tenant's stream, served through the shared host,
  matches a solo ``DistributedQueryEngine`` over that tenant's (identically
  mutated) document — verified before any timing,
* shared-host aggregate throughput >= 0.8x the isolated deployments',
* the shared cache's per-document hit counters exactly account for the
  host-wide total (no hits outside a document namespace).

Run directly with ``pytest benchmarks/bench_multi_tenancy.py``; the
equivalent CLI is ``python -m repro bench-tenancy``.
"""

from __future__ import annotations

import json

from conftest import scaled

from repro.bench.tenancy_bench import TENANCY_CRITERION, run_tenancy_benchmark

DOCUMENTS = 8
OPS_PER_DOCUMENT = 48


def _run(benchmark):
    return benchmark.pedantic(
        run_tenancy_benchmark,
        kwargs={
            "documents": DOCUMENTS,
            "total_bytes": scaled(30_000),
            "ops_per_document": OPS_PER_DOCUMENT,
        },
        rounds=1,
        iterations=1,
    )


def test_shared_host_within_criterion_of_isolated(benchmark, results_dir):
    report = _run(benchmark)
    path = results_dir / "BENCH_tenancy.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\n[written to {path}]")

    # The differential pass ran (and would have raised on any divergence).
    verification = report["verification"]
    assert verification["passed"]
    assert verification["documents"] == DOCUMENTS
    assert verification["reads_verified"] > 0

    # Consolidation overhead bounded.
    assert report["qps_ratio_shared_vs_isolated"] >= TENANCY_CRITERION
    assert report["criterion"]["passed"]

    # Every tenant's traffic shows up in the shared host's breakdowns.
    documents = report["shared_host"]["metrics"]["documents"]
    assert len(documents) == DOCUMENTS
    assert all(payload["requests"] > 0 for payload in documents.values())
