"""Core kernel benchmark: columnar per-fragment passes vs the object-tree
reference implementation.

Unlike the figure benchmarks (which regenerate the paper's plots), this one
tracks the repo's own performance trajectory: the per-fragment qualifier /
selection / combined passes are the inner loop of every algorithm, and this
benchmark asserts the columnar kernel keeps its edge — at least 3x on the
XMark combined pass — while producing bit-identical answers and traffic
accounting (the run aborts on any divergence before timing anything).

``repro bench-core`` runs the same harness from the CLI and emits
``BENCH_core.json`` for the per-PR artifact trail.
"""

from __future__ import annotations

from conftest import scaled, write_report

from repro.bench.core_bench import render_summary, run_core_benchmark, write_benchmark_json

TOTAL_BYTES = scaled(150_000)


def test_core_kernel_speedup(benchmark, results_dir):
    """The kernel path is >= 3x the reference on the XMark combined pass."""
    report = benchmark.pedantic(
        run_core_benchmark,
        kwargs={"total_bytes": TOTAL_BYTES, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    write_report(results_dir, "core_kernels", render_summary(report))
    write_benchmark_json(report, results_dir / "BENCH_core.json")

    passes = report["workloads"]["xmark-ft2"]["passes"]
    assert passes["combined"]["speedup"] >= 3.0
    assert report["headline"]["met"]
    # Every timed configuration was differentially verified before timing.
    for workload in report["workloads"].values():
        for timing in workload["algorithms"].values():
            assert timing["verified_identical"]
    # The kernel should win every per-pass comparison on the XMark workloads.
    for name in ("xmark-ft2", "xmark-ft1"):
        for timing in report["workloads"][name]["passes"].values():
            assert timing["speedup"] > 1.0
