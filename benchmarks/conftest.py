"""Shared fixtures and helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one figure (or table) of the paper's evaluation
section.  Because the data is scaled down to laptop size, the *absolute*
numbers differ from the paper; each benchmark asserts the qualitative shape
the paper claims (who wins, roughly by how much, where optimizations stop
helping) and writes the full series to ``benchmarks/results/`` so the numbers
can be inspected and copied into EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

# Allow running the benchmarks from a source checkout without installation.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Scale factor for benchmark workloads; raise REPRO_BENCH_SCALE to get
#: closer to the paper's data sizes (1.0 keeps the quick laptop defaults).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_report(results_dir: Path, name: str, rendered: str) -> Path:
    """Write a rendered figure/table to the results directory and echo it."""
    path = results_dir / f"{name}.txt"
    path.write_text(rendered + "\n", encoding="utf-8")
    print(f"\n{rendered}\n[written to {path}]")
    return path


def scaled(value: int) -> int:
    """Apply the REPRO_BENCH_SCALE factor to a byte size."""
    return int(value * BENCH_SCALE)
