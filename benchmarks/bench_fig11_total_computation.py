"""Figure 11: total computation time vs. cumulative data size (Experiment 3).

Same setting as Figure 10 but the y axis sums the evaluation time over every
machine holding a fragment.  Checks the paper's qualitative claims:

* with annotations the *total* computation of Q1/Q2 drops by more than the
  parallel time does (pruned machines do no work at all),
* PaX2's savings over PaX3 appear in the total as well,
* Q4's total is unaffected by annotations.
"""

from __future__ import annotations

from conftest import scaled, write_report

from repro.bench.experiment3 import run_experiment3

SIZES = [scaled(300_000 + 60_000 * step) for step in range(6)]


def _series(report, label):
    return report.series[label].values


def _run(benchmark):
    return benchmark.pedantic(
        run_experiment3, kwargs={"sizes": SIZES}, rounds=1, iterations=1
    )


def test_fig11a_q1_total(benchmark, results_dir):
    reports = _run(benchmark)
    fig = reports["fig11a"]
    write_report(results_dir, "fig11a", fig.render())
    na, xa = _series(fig, "PaX3-NA-Q1"), _series(fig, "PaX3-XA-Q1")
    # Pruned fragments do no work: the total drops by well over half
    # (the paper reports roughly two thirds).
    assert sum(xa) < 0.6 * sum(na)


def test_fig11b_q2_total(benchmark, results_dir):
    reports = _run(benchmark)
    fig = reports["fig11b"]
    write_report(results_dir, "fig11b", fig.render())
    na, xa = _series(fig, "PaX3-NA-Q2"), _series(fig, "PaX3-XA-Q2")
    assert sum(xa) < 0.75 * sum(na)


def test_fig11c_q3_total(benchmark, results_dir):
    reports = _run(benchmark)
    fig = reports["fig11c"]
    write_report(results_dir, "fig11c", fig.render())
    pax3 = _series(fig, "PaX3-NA-Q3")
    pax2 = _series(fig, "PaX2-NA-Q3")
    pax2_xa = _series(fig, "PaX2-XA-Q3")
    assert sum(pax2) < sum(pax3)
    assert sum(pax2_xa) < sum(pax2)


def test_fig11d_q4_total(benchmark, results_dir):
    reports = _run(benchmark)
    fig = reports["fig11d"]
    write_report(results_dir, "fig11d", fig.render())
    pax3 = _series(fig, "PaX3-NA-Q4")
    pax2 = _series(fig, "PaX2-NA-Q4")
    assert sum(pax2) < sum(pax3)
    assert pax3[-1] > pax3[0]
