"""Figure 9: evaluation time vs. number of machines/fragments (Experiment 1).

Regenerates both sub-figures over the FT1 fragment tree with a constant
cumulative size and 1..10 fragments, and checks the paper's qualitative
claims:

* fragmentation helps: the most fragmented iteration is faster than the
  single-fragment iteration for every variant;
* XPath-annotations make PaX3 faster on Q1 (they skip the answer-retrieval
  stage);
* PaX2 is at least as fast as PaX3 on Q4 (one pass instead of two).
"""

from __future__ import annotations

from conftest import scaled, write_report

from repro.bench.experiment1 import run_experiment1

TOTAL_BYTES = scaled(300_000)
MAX_FRAGMENTS = 10


def _series(report, label):
    return report.series[label].values


def test_fig9a_q1_fragmentation(benchmark, results_dir):
    """Figure 9(a): PaX3 on Q1, with and without annotations."""
    reports = benchmark.pedantic(
        run_experiment1,
        kwargs={"total_bytes": TOTAL_BYTES, "max_fragments": MAX_FRAGMENTS},
        rounds=1,
        iterations=1,
    )
    fig = reports["fig9a"]
    write_report(results_dir, "fig9a", fig.render())

    na = _series(fig, "PaX3-NA-Q1")
    xa = _series(fig, "PaX3-XA-Q1")
    # Parallelism: the 10-fragment iteration beats the unfragmented one.
    assert na[-1] < na[0]
    assert xa[-1] < xa[0]
    # Annotations help Q1 on average (they remove the candidate-resolution stage).
    assert sum(xa) < sum(na)


def test_fig9b_q4_fragmentation(benchmark, results_dir):
    """Figure 9(b): PaX3 vs PaX2 on Q4 (no annotations)."""
    reports = benchmark.pedantic(
        run_experiment1,
        kwargs={"total_bytes": TOTAL_BYTES, "max_fragments": MAX_FRAGMENTS},
        rounds=1,
        iterations=1,
    )
    fig = reports["fig9b"]
    write_report(results_dir, "fig9b", fig.render())

    pax3 = _series(fig, "PaX3-NA-Q4")
    pax2 = _series(fig, "PaX2-NA-Q4")
    # Fragmentation helps both algorithms.
    assert pax3[-1] < pax3[0]
    assert pax2[-1] < pax2[0]
    # Combining the two passes makes PaX2 the faster algorithm overall.
    assert sum(pax2) < sum(pax3)
