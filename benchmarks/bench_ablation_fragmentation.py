"""Ablation: design choices the paper leaves to the system.

The paper's algorithms work for *any* fragmentation and placement; these
ablations quantify how much those free choices matter, using the same
machinery as the figure benchmarks:

* **granularity** — the same document cut into 2, 5, 10, 20 size-balanced
  fragments: the parallel time tracks the largest fragment, the traffic grows
  only with the number of fragment-tree edges (`O(|Q| |FT|)`);
* **placement** — ten fragments placed on 1, 2, 5, 10 sites: fewer sites mean
  less parallelism but never more visits per site than the guarantee.
"""

from __future__ import annotations

from conftest import scaled, write_report

from repro.bench.reporting import format_table
from repro.core.pax2 import run_pax2
from repro.distributed.placement import round_robin_placement
from repro.fragments.fragmenters import cut_by_size
from repro.workloads.queries import PAPER_QUERIES
from repro.workloads.scenarios import build_ft1
from repro.workloads.xmark import SiteSpec, generate_sites_document
from repro.xpath.centralized import evaluate_centralized

QUERY = PAPER_QUERIES["Q3"]


def _granularity_rows(total_bytes: int):
    tree = generate_sites_document([SiteSpec.from_bytes(total_bytes // 2)] * 2, seed=17)
    expected = evaluate_centralized(tree, QUERY).answer_ids
    rows = [["fragments", "largest fragment (elems)", "parallel ms", "traffic units", "max visits"]]
    measurements = []
    for budget in (tree.element_count(), 2_000, 800, 400, 200):
        fragmentation = cut_by_size(tree, max_elements=budget)
        stats = run_pax2(fragmentation, QUERY)
        assert stats.answer_ids == expected
        measurements.append((len(fragmentation), fragmentation.max_fragment_elements(), stats))
        rows.append([
            str(len(fragmentation)),
            str(fragmentation.max_fragment_elements()),
            f"{stats.parallel_seconds * 1000:.1f}",
            str(stats.communication_units),
            str(stats.max_site_visits),
        ])
    return rows, measurements


def test_ablation_fragment_granularity(benchmark, results_dir):
    rows, measurements = benchmark.pedantic(
        _granularity_rows, kwargs={"total_bytes": scaled(200_000)}, rounds=1, iterations=1
    )
    write_report(
        results_dir, "ablation_granularity",
        "Ablation: fragment granularity (query Q3, PaX2)\n"
        "===============================================\n" + format_table(rows),
    )
    coarsest, finest = measurements[0], measurements[-1]
    # Finer fragmentation shrinks the largest fragment and the parallel time...
    assert finest[1] < coarsest[1]
    assert finest[2].parallel_seconds < coarsest[2].parallel_seconds
    # ...while the visit guarantee holds at every granularity.
    assert all(stats.max_site_visits <= 2 for _, _, stats in measurements)


def _placement_rows(total_bytes: int):
    scenario = build_ft1(fragment_count=10, total_bytes=total_bytes, seed=19)
    expected = evaluate_centralized(scenario.tree, QUERY).answer_ids
    rows = [["sites", "parallel ms", "total ms", "max visits", "traffic units"]]
    measurements = []
    for site_count in (1, 2, 5, 10):
        placement = round_robin_placement(scenario.fragmentation, site_count=site_count)
        stats = run_pax2(scenario.fragmentation, QUERY, placement=placement)
        assert stats.answer_ids == expected
        measurements.append((site_count, stats))
        rows.append([
            str(site_count),
            f"{stats.parallel_seconds * 1000:.1f}",
            f"{stats.total_seconds * 1000:.1f}",
            str(stats.max_site_visits),
            str(stats.communication_units),
        ])
    return rows, measurements


def test_ablation_placement(benchmark, results_dir):
    rows, measurements = benchmark.pedantic(
        _placement_rows, kwargs={"total_bytes": scaled(200_000)}, rounds=1, iterations=1
    )
    write_report(
        results_dir, "ablation_placement",
        "Ablation: fragments per site (query Q3, PaX2, 10 fragments)\n"
        "============================================================\n" + format_table(rows),
    )
    single_site = measurements[0][1]
    ten_sites = measurements[-1][1]
    # Spreading fragments over more sites reduces the parallel time...
    assert ten_sites.parallel_seconds < single_site.parallel_seconds
    # ...and the per-site visit bound is independent of how many fragments a
    # site holds (the paper's property (a)/(d)).
    assert all(stats.max_site_visits <= 2 for _, stats in measurements)
