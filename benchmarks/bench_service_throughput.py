"""Service-layer throughput: concurrent serving vs the sequential engine loop.

Unlike the ``bench_fig*`` modules this benchmark has no counterpart figure in
the paper — it seeds the *serving* performance trajectory of the reproduction
(ROADMAP north star) instead.  The same XMark request stream is answered by a
sequential ``DistributedQueryEngine.execute()`` loop and by the
:class:`repro.service.ServiceEngine` at 1/8/64 concurrent clients, cold and
warm cache; the full report is written to ``results/BENCH_service.json``.

Asserted qualitative claims:

* at 64 concurrent clients the service answers >= 2x the queries/sec of the
  sequential loop (single-flight coalescing plus the normalized-query cache),
* a warm-cache repeat run serves every request from the cache (hits > 0),
* answers are identical in every configuration (same totals as sequential).

Run directly with ``pytest benchmarks/bench_service_throughput.py``; the
equivalent CLI is ``python -m repro bench-service``.
"""

from __future__ import annotations

import json

from conftest import scaled

from repro.bench.service_bench import run_service_benchmark

CLIENT_COUNTS = (1, 8, 64)
REQUESTS = 128


def _run(benchmark):
    return benchmark.pedantic(
        run_service_benchmark,
        kwargs={
            "total_bytes": scaled(60_000),
            "requests": REQUESTS,
            "client_counts": CLIENT_COUNTS,
        },
        rounds=1,
        iterations=1,
    )


def test_service_throughput(benchmark, results_dir):
    report = _run(benchmark)
    path = results_dir / "BENCH_service.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\n[written to {path}]")

    sequential = report["sequential"]
    level64 = report["service"]["64"]

    # >= 2x queries/sec at 64 concurrent clients, cold cache.
    assert level64["cold"]["qps"] >= 2 * sequential["qps"]

    # The warm repeat is answered from the cache.
    assert level64["warm"]["cache"]["hits"] > 0
    assert level64["warm"]["qps"] >= level64["cold"]["qps"]

    # Caching/coalescing must not change the answers.
    for level in report["service"].values():
        assert level["cold"]["answers_total"] == sequential["answers_total"]
        assert level["warm"]["answers_total"] == sequential["answers_total"]

    # Every request is accounted for exactly once per phase.
    for clients in CLIENT_COUNTS:
        for phase in report["service"][str(clients)].values():
            assert phase["requests"] == REQUESTS
            assert phase["evaluated"] + phase["cache_hits"] + phase["coalesced"] == REQUESTS
