"""Fused multi-query scan benchmark: one walk per fragment per query wave.

Tracks the third engine tier (reference -> kernel -> batch): a wave of N
in-flight queries is evaluated with one fused scan of each fragment's flat
arrays (duplicate plans deduplicated to a single kernel slot) instead of N
query-at-a-time kernel passes.  The tracked criterion is the ISSUE's
acceptance bar: at batch size 16 on the XMark workload the fused combined
pass is at least 3x faster than 16 single-query kernel passes — with every
timed configuration differentially verified against the single-query kernel
*and* the object-tree reference before timing (the run aborts on any
divergence, so the CI job fails if the batch path loses its verification).

``repro bench-batch`` runs the same harness from the CLI and emits
``BENCH_batch.json`` for the per-PR artifact trail.
"""

from __future__ import annotations

from conftest import scaled, write_report

from repro.bench.batch_bench import (
    render_summary,
    run_batch_benchmark,
    write_benchmark_json,
)

TOTAL_BYTES = scaled(150_000)


def test_batch_scan_speedup(benchmark, results_dir):
    """The fused wave is >= 3x over 16 query-at-a-time kernel passes."""
    report = benchmark.pedantic(
        run_batch_benchmark,
        kwargs={"total_bytes": TOTAL_BYTES, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    write_report(results_dir, "batch_scan", render_summary(report))
    write_benchmark_json(report, results_dir / "BENCH_batch.json")

    # Differential verification ran before every timed configuration.
    for entry in report["batches"].values():
        assert entry["verified_identical"]
    assert report["headline"]["met"]
    assert report["batches"]["16"]["combined_pass"]["speedup"] >= 3.0
    # Duplicates collapse to kernel slots: 16 queries over 4 distinct forms.
    assert report["batches"]["16"]["distinct_plans"] == 4
    # The wave path keeps winning as the wave grows.
    assert (
        report["batches"]["64"]["combined_pass"]["speedup"]
        > report["batches"]["16"]["combined_pass"]["speedup"]
    )
