"""Section 3.4 guarantees: visits, communication, and the naive baseline.

Not a figure in the paper, but the claims its analysis section makes are the
point of the whole exercise; this benchmark measures them directly:

* each site is visited at most 3 times by PaX3 and at most 2 times by PaX2,
  regardless of query and data size;
* PaX* communication does not grow with the document (beyond the answers),
  while the naive baseline's communication is the document size;
* all algorithms (including the naive baseline) return identical answers.
"""

from __future__ import annotations

from conftest import scaled, write_report

from repro.bench.guarantees import run_guarantees

SIZES = [scaled(200_000), scaled(600_000)]


def test_guarantees_table(benchmark, results_dir):
    result = benchmark.pedantic(
        run_guarantees, kwargs={"sizes": SIZES}, rounds=1, iterations=1
    )
    write_report(results_dir, "guarantees", result["rendered"])
    rows = result["rows"]

    by_algorithm: dict[str, list[dict]] = {}
    for row in rows:
        by_algorithm.setdefault(row["algorithm"], []).append(row)

    # Visit bounds.
    assert all(row["max_site_visits"] <= 3 for row in by_algorithm["PaX3-NA"])
    assert all(row["max_site_visits"] <= 2 for row in by_algorithm["PaX2-NA"])
    assert all(row["max_site_visits"] <= 2 for row in by_algorithm["PaX2-XA"])

    # Naive ships the tree: its communication tracks the document size and
    # dwarfs PaX2's on every query.
    for query in {row["query"] for row in rows}:
        naive = [r for r in by_algorithm["Naive"] if r["query"] == query]
        pax2 = [r for r in by_algorithm["PaX2-NA"] if r["query"] == query]
        for naive_row, pax2_row in zip(naive, pax2):
            assert naive_row["communication_units"] > 5 * pax2_row["communication_units"]
            # Naive traffic is essentially the document: every node outside
            # the coordinator's own (root) fragment crosses the network.
            assert naive_row["communication_units"] >= 0.8 * naive_row["tree_nodes"]

    # PaX2 communication grows far slower than the document: compare the two
    # document sizes for the qualifier-free query Q1.
    q1 = [r for r in by_algorithm["PaX2-NA"] if r["query"] == "Q1"]
    small, large = q1[0], q1[-1]
    tree_growth = large["tree_nodes"] / small["tree_nodes"]
    comm_growth = (large["communication_units"] - large["answers"]) / max(
        1, small["communication_units"] - small["answers"]
    )
    assert comm_growth < tree_growth / 2
