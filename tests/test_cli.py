"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.xmltree.parser import parse_xml_file

CATALOG = """
<shop>
  <department>
    <name>fiction</name>
    <book><title>Dune</title><price>9</price></book>
    <book><title>Hyperion</title><price>12</price></book>
  </department>
  <department>
    <name>science</name>
    <book><title>Cosmos</title><price>15</price></book>
  </department>
</shop>
"""


@pytest.fixture
def catalog_path(tmp_path):
    path = tmp_path / "catalog.xml"
    path.write_text(CATALOG, encoding="utf-8")
    return str(path)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "file.xml", "//a"])
        assert args.algorithm == "pax2"
        assert args.fragment_size is None
        assert not args.annotations
        assert args.engine is None

    def test_engine_choices(self):
        args = build_parser().parse_args(
            ["query", "file.xml", "//a", "--engine", "reference"]
        )
        assert args.engine == "reference"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "file.xml", "//a", "--engine", "bogus"])


class TestQueryCommand:
    def test_centralized_query(self, catalog_path, capsys):
        assert main(["query", catalog_path, "//book[price < 13]/title",
                     "--algorithm", "centralized"]) == 0
        out = capsys.readouterr().out
        assert "2 answer(s)" in out
        assert "Dune" in out and "Hyperion" in out

    @pytest.mark.parametrize("algorithm", ["pax2", "pax3", "naive"])
    def test_distributed_query(self, catalog_path, capsys, algorithm):
        code = main([
            "query", catalog_path, "//book[price < 13]/title",
            "--fragment-at", "department", "--algorithm", algorithm,
            "--annotations", "--stats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 answer(s)" in out
        assert "max site visits" in out

    @pytest.mark.parametrize("engine", ["kernel", "reference"])
    def test_query_with_explicit_engine(self, catalog_path, capsys, engine):
        code = main([
            "query", catalog_path, "//book[price < 13]/title",
            "--fragment-at", "department", "--engine", engine,
        ])
        assert code == 0
        assert "2 answer(s)" in capsys.readouterr().out

    def test_fragment_size_and_sites(self, catalog_path, capsys):
        assert main([
            "query", catalog_path, "department/name",
            "--fragment-size", "4", "--sites", "2",
        ]) == 0
        assert "fiction" in capsys.readouterr().out

    def test_xml_output_and_limit(self, catalog_path, capsys):
        assert main(["query", catalog_path, "//book", "--xml", "--limit", "1",
                     "--algorithm", "centralized"]) == 0
        out = capsys.readouterr().out
        assert "<book>" in out and "... and 2 more" in out

    def test_conflicting_fragmentation_flags_rejected(self, catalog_path):
        with pytest.raises(SystemExit):
            main([
                "query", catalog_path, "//book",
                "--fragment-size", "4", "--fragment-at", "department",
            ])


class TestFragmentCommand:
    def test_summary_printed(self, catalog_path, capsys):
        assert main(["fragment", catalog_path, "--fragment-at", "department"]) == 0
        out = capsys.readouterr().out
        assert "F0" in out and "F2" in out


class TestServeCommand:
    def test_serve_batch_from_file(self, catalog_path, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text(
            "# workload\n//book[price < 13]/title\ndepartment/name\n\n", encoding="utf-8"
        )
        code = main([
            "serve", catalog_path, "--queries", str(queries),
            "--fragment-at", "department", "--concurrency", "4", "--repeat", "3",
            "--answers",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "requests         : 6" in out
        assert "cache:" in out and "actor pool:" in out
        # Second and third rounds of each query are answered by the cache.
        assert "cache hits" in out

    def test_serve_requires_queries(self, catalog_path, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_text("\n# nothing\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["serve", catalog_path, "--queries", str(empty)])

    def test_serve_reads_stdin_by_default(self, catalog_path, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("//book/title\n"))
        assert main(["serve", catalog_path, "--fragment-size", "4"]) == 0
        assert "requests         : 1" in capsys.readouterr().out

    def test_serve_multiple_named_documents(self, catalog_path, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        # one pinned query (name::query) and two round-robin queries
        queries.write_text(
            "left:://book/title\n//department/name\n//book/title\n", encoding="utf-8"
        )
        code = main([
            "serve",
            "--doc", f"left={catalog_path}",
            "--doc", f"right={catalog_path}",
            "--queries", str(queries),
            "--fragment-size", "4", "--answers",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[left] //book/title" in out
        assert "2 document(s)" in out
        assert "per document" in out

    def test_serve_rejects_doc_and_positional_together(self, catalog_path, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text("//book/title\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main([
                "serve", catalog_path, "--doc", f"other={catalog_path}",
                "--queries", str(queries),
            ])

    def test_serve_rejects_pin_to_unknown_document(self, catalog_path, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text("stor:://book/title\n", encoding="utf-8")  # typo'd pin
        with pytest.raises(SystemExit, match="unknown document 'stor'"):
            main([
                "serve", "--doc", f"store={catalog_path}",
                "--queries", str(queries), "--fragment-size", "4",
            ])

    def test_serve_rejects_malformed_doc_spec(self, catalog_path, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text("//book/title\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["serve", "--doc", "nopath", "--queries", str(queries)])

    def test_serve_requires_some_document(self, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text("//book/title\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["serve", "--queries", str(queries)])


class TestServeTracingFlags:
    def test_trace_artifacts_written(self, catalog_path, tmp_path, capsys):
        import json

        queries = tmp_path / "queries.txt"
        queries.write_text("//book[price < 13]/title\ndepartment/name\n", encoding="utf-8")
        trace = tmp_path / "spans.jsonl"
        chrome = tmp_path / "chrome.json"
        slow = tmp_path / "slow.jsonl"
        code = main([
            "serve", catalog_path, "--queries", str(queries),
            "--fragment-at", "department", "--repeat", "2",
            "--trace", str(trace),
            "--chrome-trace", str(chrome),
            "--slow-log", str(slow), "--slow-threshold", "0.0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tracing: 4 request(s) traced, 0 guarantee violation(s)" in out
        # every request is one JSON line; cache hits included
        roots = [json.loads(line) for line in trace.read_text().splitlines()]
        assert len(roots) == 4
        assert all(root["kind"] == "query" for root in roots)
        document = json.loads(chrome.read_text())
        names = {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}
        assert "query" in names and "plan:compile" in names
        assert len(slow.read_text().splitlines()) == 4  # threshold 0 logs all

    def test_untraced_serve_prints_no_tracing_line(self, catalog_path, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text("//book/title\n", encoding="utf-8")
        assert main([
            "serve", catalog_path, "--queries", str(queries), "--fragment-size", "4",
        ]) == 0
        assert "tracing:" not in capsys.readouterr().out

    def test_metrics_port_announced(self, catalog_path, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text("//book/title\n", encoding="utf-8")
        assert main([
            "serve", catalog_path, "--queries", str(queries),
            "--fragment-size", "4", "--metrics-port", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "[metrics at http://127.0.0.1:" in out
        assert "tracing: 1 request(s) traced" in out


class TestStatsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["stats", "http://127.0.0.1:9464"])
        assert not args.as_json

    def test_fetches_metrics_from_live_endpoint(self, catalog_path, capsys):
        import asyncio
        import threading

        from repro.fragments.fragmenters import cut_matching
        from repro.obs import MetricsServer, Tracer
        from repro.service.server import ServiceHost

        tree = parse_xml_file(catalog_path)
        host = ServiceHost(tracer=Tracer())
        host.register("shop", cut_matching(tree, "department"))
        started = threading.Event()
        box = {}

        def run_endpoint():
            async def scenario():
                box["stop"] = asyncio.Event()
                box["loop"] = asyncio.get_running_loop()
                server = await MetricsServer(host, port=0).start()
                box["port"] = server.port
                started.set()
                await box["stop"].wait()
                await server.stop()

            asyncio.run(scenario())

        thread = threading.Thread(target=run_endpoint, daemon=True)
        thread.start()
        assert started.wait(timeout=10.0)
        try:
            assert main(["stats", f"127.0.0.1:{box['port']}"]) == 0
            assert "repro_requests_total" in capsys.readouterr().out
            assert main(["stats", f"http://127.0.0.1:{box['port']}", "--json"]) == 0
            assert '"documents"' in capsys.readouterr().out
        finally:
            box["loop"].call_soon_threadsafe(box["stop"].set)
            thread.join(timeout=10.0)


class TestBenchObsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench-obs"])
        assert args.requests == 192
        assert args.clients == 16
        assert args.processes == 4
        assert args.output == "BENCH_obs.json"

    def test_emits_benchmark_json(self, tmp_path, capsys):
        import json

        output = tmp_path / "BENCH_obs.json"
        code = main([
            "bench-obs", "--requests", "12", "--clients", "4",
            "--bytes", "15000", "--repeats", "1", "--processes", "1",
            "--output", str(output),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "untraced" in out and "guarantees" in out
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["benchmark"] == "observability_overhead"
        assert report["answers_identical"]
        assert report["guarantee_violations_total"] == 0
        assert set(report["guarantees"]) == {"pax2", "pax3", "naive", "parbox"}
        assert report["reconciliation"]["requests"] == 12
        # one ABBA block per repeat: two passes per mode feed the
        # fastest-pass loss estimate
        assert len(report["overhead"]["enabled_untraced_wall_seconds"]) == 2
        assert len(report["overhead"]["enabled_traced_wall_seconds"]) == 2


class TestBenchServiceCommand:
    def test_emits_benchmark_json(self, tmp_path, capsys):
        import json

        output = tmp_path / "BENCH_service.json"
        code = main([
            "bench-service", "--requests", "16", "--clients", "1", "4",
            "--bytes", "20000", "--output", str(output),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sequential" in out and "service x" in out
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["benchmark"] == "service_throughput"
        assert set(report["service"]) == {"1", "4"}
        warm = report["service"]["4"]["warm"]
        assert warm["cache"]["hits"] > 0
        assert warm["answers_total"] == report["sequential"]["answers_total"]


class TestBenchCoreCommand:
    def test_emits_benchmark_json(self, tmp_path, capsys):
        import json

        output = tmp_path / "BENCH_core.json"
        code = main([
            "bench-core", "--bytes", "15000", "--repeats", "1",
            "--output", str(output),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pass combined" in out and "headline" in out
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["benchmark"] == "core_kernels"
        assert set(report["workloads"]) == {
            "xmark-ft2", "xmark-ft1", "clientele", "xmark-ft2-large",
        }
        for name, workload in report["workloads"].items():
            assert set(workload["passes"]) == {"qualifier", "selection", "combined"}
            for timing in workload["passes"].values():
                for engine in workload["engines"]:
                    assert timing[f"{engine}_seconds"] > 0
            # The larger-document sweep times passes only.
            algorithms = workload.get("algorithms", {})
            assert bool(algorithms) == (name != "xmark-ft2-large")
            for timing in algorithms.values():
                assert timing["verified_identical"]

    def test_vector_headline_when_numpy_available(self, tmp_path):
        import json

        from repro.core.vector import numpy_available

        output = tmp_path / "BENCH_core.json"
        code = main([
            "bench-core", "--bytes", "15000", "--repeats", "1",
            "--large-bytes", "0", "--output", str(output),
        ])
        assert code == 0
        report = json.loads(output.read_text(encoding="utf-8"))
        # --large-bytes 0 skips the sweep workload entirely.
        assert "xmark-ft2-large" not in report["workloads"]
        headline = report["headline"]
        assert "xmark_combined_pass_speedup" in headline
        if numpy_available():
            assert headline["vector_combined_pass_speedup"] > 0
            assert "vector >= 3x kernel" in headline["vector_criterion"]
        else:
            assert "vector_combined_pass_speedup" not in headline


class TestBenchUpdateCommand:
    def test_emits_benchmark_json(self, tmp_path, capsys):
        import json

        output = tmp_path / "BENCH_update.json"
        code = main([
            "bench-update", "--bytes", "20000", "--ops", "60",
            "--write-ratios", "0.1", "--output", str(output),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "incremental" in out and "rebuild" in out
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["benchmark"] == "update_maintenance"
        entry = report["ratios"]["0.1"]
        assert entry["verified_identical"]
        assert entry["incremental"]["full_document_walks"] == 0
        assert entry["rebuild"]["full_document_walks"] == entry["writes"]
        assert report["headline"]["query_path_full_walks"] == 0


class TestBenchTenancyCommand:
    def test_emits_benchmark_json(self, tmp_path, capsys):
        import json

        output = tmp_path / "BENCH_tenancy.json"
        code = main([
            "bench-tenancy", "--docs", "2", "--bytes", "10000",
            "--ops", "12", "--output", str(output),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "shared host" in out and "isolated" in out
        report = json.loads(output.read_text(encoding="utf-8"))
        assert report["benchmark"] == "tenancy"
        assert report["verification"]["passed"]
        assert report["verification"]["reads_verified"] > 0
        assert len(report["shared_host"]["metrics"]["documents"]) == 2
        assert report["qps_ratio_shared_vs_isolated"] > 0


class TestGenerateCommand:
    def test_generate_to_file_and_requery(self, tmp_path, capsys):
        output = tmp_path / "sites.xml"
        assert main([
            "generate", "--bytes", "20000", "--sites", "2",
            "--seed", "3", "--output", str(output),
        ]) == 0
        assert "wrote" in capsys.readouterr().out
        tree = parse_xml_file(output)
        assert tree.root.tag == "sites"
        # The generated file is itself queryable through the CLI.
        assert main(["query", str(output), "/sites/site/people/person",
                     "--fragment-size", "200"]) == 0

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "--bytes", "5000", "--sites", "1"]) == 0
        assert "<sites>" in capsys.readouterr().out
