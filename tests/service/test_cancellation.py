"""Cancellation safety: gate, batcher, actor slots and the host pipeline.

A request can be cancelled (or time out) at *any* await point — parked at
the readers-writer gate, inside the batching window, queued for a site
slot, mid-evaluation.  Whatever the point, the primitives must come back
clean: no leaked permits, no stranded waiters, no counters the next
request could observe half-updated.  The brute-force tests below cancel a
victim after every possible number of event-loop steps, which walks the
cancellation through every await point of the scenario.
"""

import asyncio

import pytest

from repro.core.pruning import stage1_init_vector
from repro.distributed.async_transport import LatencyModel
from repro.service.actors import FragmentWaveBatcher, ReadWriteGate, SiteActor
from repro.service.server import ServiceEngine
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import compile_plan


def clientele_fragmentation():
    return clientele_paper_fragmentation(clientele_example_tree())


def run(coroutine):
    return asyncio.run(coroutine)


async def step(count=1):
    for _ in range(count):
        await asyncio.sleep(0)


async def assert_gate_clean(gate):
    """The gate must be fully reusable: a writer can take it exclusively."""
    assert gate.readers_active == 0
    assert not gate.write_held
    assert gate.writers_waiting == 0 and gate.readers_waiting == 0
    await asyncio.wait_for(gate.acquire_write(), 1.0)
    assert gate.write_held
    gate._release_write()


class TestGateCancellation:
    def test_reader_cancelled_while_queued_behind_writer(self):
        async def scenario():
            gate = ReadWriteGate()
            release = asyncio.Event()

            async def writer():
                async with gate.write_locked():
                    await release.wait()

            writer_task = asyncio.create_task(writer())
            await step()
            reader_task = asyncio.create_task(gate.acquire_read())
            await step()
            assert gate.readers_waiting == 1
            reader_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await reader_task
            release.set()
            await writer_task
            await assert_gate_clean(gate)

        run(scenario())

    def test_writer_cancelled_while_queued_unblocks_readers(self):
        async def scenario():
            gate = ReadWriteGate()
            release = asyncio.Event()

            async def reader():
                async with gate.read_locked():
                    await release.wait()

            reader_task = asyncio.create_task(reader())
            await step()
            writer_task = asyncio.create_task(gate.acquire_write())
            await step()
            # Writer priority: a new reader queues behind the waiting writer.
            late_reader = asyncio.create_task(gate.acquire_read())
            await step()
            assert gate.readers_waiting == 1
            writer_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await writer_task
            # The cancelled writer must not strand the queued reader.
            await asyncio.wait_for(late_reader, 1.0)
            assert gate.readers_active == 2
            gate._release_read()
            release.set()
            await reader_task
            await assert_gate_clean(gate)

        run(scenario())

    def test_grant_racing_reader_cancellation_is_handed_back(self):
        async def scenario():
            gate = ReadWriteGate()
            await gate.acquire_write()
            reader_task = asyncio.create_task(gate.acquire_read())
            await step()
            # Releasing grants the parked reader *synchronously*; cancelling
            # before it resumes exercises the granted-but-dead handback.
            gate._release_write()
            assert gate.readers_active == 1  # grant already landed
            reader_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await reader_task
            await assert_gate_clean(gate)

        run(scenario())

    def test_grant_racing_writer_cancellation_is_handed_back(self):
        async def scenario():
            gate = ReadWriteGate()
            await gate.acquire_read()
            writer_task = asyncio.create_task(gate.acquire_write())
            await step()
            gate._release_read()
            assert gate.write_held  # grant already landed
            writer_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await writer_task
            await assert_gate_clean(gate)

        run(scenario())

    def test_timed_out_reader_behaves_like_a_cancelled_one(self):
        async def scenario():
            gate = ReadWriteGate()
            release = asyncio.Event()

            async def writer():
                async with gate.write_locked():
                    await release.wait()

            writer_task = asyncio.create_task(writer())
            await step()
            with pytest.raises(asyncio.TimeoutError):
                await gate.acquire_read(timeout=0.01)
            assert gate.readers_waiting == 0
            release.set()
            await writer_task
            await assert_gate_clean(gate)

        run(scenario())

    def test_timed_out_writer_unblocks_queued_readers(self):
        async def scenario():
            gate = ReadWriteGate()
            release = asyncio.Event()

            async def reader():
                async with gate.read_locked():
                    await release.wait()

            reader_task = asyncio.create_task(reader())
            await step()
            timed_writer = asyncio.create_task(gate.acquire_write(timeout=0.01))
            await step()
            late_reader = asyncio.create_task(gate.acquire_read())
            await step()
            with pytest.raises(asyncio.TimeoutError):
                await timed_writer
            await asyncio.wait_for(late_reader, 1.0)
            gate._release_read()
            release.set()
            await reader_task
            await assert_gate_clean(gate)

        run(scenario())

    def test_writer_not_starved_by_steady_reader_stream(self):
        """Writer-priority regression: a queued writer must be granted ahead
        of every reader that arrives after it, no matter how many — a steady
        read stream can otherwise keep ``readers_active`` nonzero forever
        and the write never lands."""

        async def scenario():
            gate = ReadWriteGate()
            release = asyncio.Event()
            order = []

            async def holding_reader():
                async with gate.read_locked():
                    await release.wait()

            async def writer():
                async with gate.write_locked():
                    order.append("writer")

            async def churn_reader(index):
                async with gate.read_locked():
                    order.append(("reader", index))

            holders = [asyncio.create_task(holding_reader()) for _ in range(3)]
            await step()
            assert gate.readers_active == 3
            writer_task = asyncio.create_task(writer())
            await step()
            assert gate.writers_waiting == 1
            churn = [asyncio.create_task(churn_reader(i)) for i in range(20)]
            await step()
            # Every late reader queues behind the waiting writer instead of
            # piling onto the active-reader count.
            assert gate.readers_waiting == 20
            assert gate.readers_active == 3
            release.set()
            await asyncio.wait_for(
                asyncio.gather(writer_task, *churn, *holders), 5.0
            )
            assert order[0] == "writer"
            assert len(order) == 21
            await assert_gate_clean(gate)

        run(scenario())

    @pytest.mark.parametrize("victim", [0, 1, 2, 3])
    def test_cancel_at_every_await_point(self, victim):
        """Brute force: cancel one participant after k loop steps, for every
        k — the cancellation lands on every await point of the scenario."""

        async def attempt(steps):
            gate = ReadWriteGate()

            async def reader(hold):
                async with gate.read_locked():
                    await asyncio.sleep(hold)

            async def writer(hold):
                async with gate.write_locked():
                    await asyncio.sleep(hold)

            tasks = [
                asyncio.create_task(reader(0.002)),
                asyncio.create_task(writer(0.002)),
                asyncio.create_task(reader(0.0)),
                asyncio.create_task(writer(0.0)),
            ]
            await step(steps)
            tasks[victim].cancel()
            results = await asyncio.wait_for(
                asyncio.gather(*tasks, return_exceptions=True), 2.0
            )
            # Only the victim may have died, and only by cancellation.
            for index, outcome in enumerate(results):
                if isinstance(outcome, BaseException):
                    assert index == victim
                    assert isinstance(outcome, asyncio.CancelledError)
            await assert_gate_clean(gate)

        async def scenario():
            for steps in range(12):
                await attempt(steps)

        run(scenario())


class TestBatcherCancellation:
    @pytest.fixture
    def fused(self):
        fragmentation = clientele_fragmentation()
        plan = compile_plan(parse_xpath("//name"))
        fragment_id = fragmentation.fragment_ids()[1]  # not the root fragment
        init = stage1_init_vector(fragmentation, plan, fragment_id, True)
        return fragmentation, plan, fragment_id, init

    def test_cancelled_waiter_is_skipped_by_the_flush(self, fused):
        fragmentation, plan, fragment_id, init = fused

        async def scenario():
            batcher = FragmentWaveBatcher(fragmentation, window=0.02)
            doomed = asyncio.create_task(
                batcher.combined(fragment_id, plan, init, False)
            )
            survivor = asyncio.create_task(
                batcher.combined(fragment_id, plan, init, False)
            )
            await step()  # both parked in the window
            doomed.cancel()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            output = await asyncio.wait_for(survivor, 1.0)
            assert output is not None
            return batcher

        batcher = run(scenario())
        # The cancelled waiter neither poisons the stats nor counts as served.
        assert batcher.stats.fused_scans == 1
        assert batcher.stats.batched_queries == 1

    def test_all_waiters_cancelled_runs_no_scan(self, fused):
        fragmentation, plan, fragment_id, init = fused

        async def scenario():
            batcher = FragmentWaveBatcher(fragmentation, window=0.01)
            tasks = [
                asyncio.create_task(batcher.combined(fragment_id, plan, init, False))
                for _ in range(3)
            ]
            await step()
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            await asyncio.sleep(0.03)  # let the flush fire on nobody
            return batcher

        batcher = run(scenario())
        assert batcher.stats.fused_scans == 0
        assert batcher.stats.batched_queries == 0

    def test_batcher_stays_serviceable_after_a_cancellation_wave(self, fused):
        fragmentation, plan, fragment_id, init = fused

        async def scenario():
            batcher = FragmentWaveBatcher(fragmentation, window=0.0)
            doomed = asyncio.create_task(
                batcher.combined(fragment_id, plan, init, False)
            )
            await step(0)
            doomed.cancel()
            await asyncio.gather(doomed, return_exceptions=True)
            output = await asyncio.wait_for(
                batcher.combined(fragment_id, plan, init, False), 1.0
            )
            assert output is not None
            return batcher

        batcher = run(scenario())
        assert batcher.stats.fused_scans >= 1


class TestActorSlotCancellation:
    def test_queued_slot_waiter_cancel_leaks_nothing(self):
        async def scenario():
            actor = SiteActor("S1", parallelism=1)
            occupied = asyncio.Event()
            release = asyncio.Event()

            async def holder():
                async with actor.slot():
                    occupied.set()
                    await release.wait()

            async def waiter():
                async with actor.slot():
                    pass

            holder_task = asyncio.create_task(holder())
            await occupied.wait()
            waiter_task = asyncio.create_task(waiter())
            await step()
            waiter_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter_task
            release.set()
            await holder_task
            # The slot is free again and counters are consistent.
            assert actor.in_flight == 0
            async with actor.slot():
                assert actor.in_flight == 1
            assert actor.in_flight == 0

        run(scenario())


class TestHostCancellation:
    def test_cancelled_request_leaves_the_host_serviceable(self):
        engine = ServiceEngine(
            clientele_fragmentation(),
            max_in_flight=1,
            latency=LatencyModel(base_seconds=0.02),
        )

        async def scenario():
            doomed = asyncio.create_task(engine.submit("//client/name"))
            await asyncio.sleep(0.01)  # mid-evaluation, on the wire
            doomed.cancel()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            return await asyncio.wait_for(engine.submit("//name"), 5.0)

        result = run(scenario())
        assert result.answer_ids
        assert not result.is_partial
        assert engine._pending_evaluations == 0
        gate = engine.sessions[engine.document].gate
        assert gate.readers_active == 0 and not gate.write_held

    def test_cancel_submit_at_every_await_point(self):
        engine = ServiceEngine(
            clientele_fragmentation(),
            latency=LatencyModel(base_seconds=0.001),
        )

        async def scenario():
            for steps in range(25):
                doomed = asyncio.create_task(engine.submit("//client/name"))
                await step(steps)
                doomed.cancel()
                await asyncio.gather(doomed, return_exceptions=True)
                assert engine._pending_evaluations == 0
            # After the whole sweep the host still serves, reads and writes.
            result = await asyncio.wait_for(engine.submit("//name"), 5.0)
            assert result.answer_ids
            gate = engine.sessions[engine.document].gate
            await assert_gate_clean(gate)

        run(scenario())

    def test_cancelled_writer_never_wedges_the_document(self):
        from repro.updates import EditText

        engine = ServiceEngine(
            clientele_fragmentation(),
            latency=LatencyModel(base_seconds=0.02),
        )
        fragmentation = engine.fragmentation
        target = next(
            node
            for node in fragmentation[fragmentation.fragment_ids()[0]].iter_span()
            if node.is_text
        )

        async def scenario():
            reader = asyncio.create_task(engine.submit("//client/name"))
            await asyncio.sleep(0.01)  # reader holds the gate, on the wire
            doomed = asyncio.create_task(
                engine.apply_update(EditText(target.node_id, "cancelled"))
            )
            await step()
            doomed.cancel()
            await asyncio.gather(doomed, return_exceptions=True)
            await reader
            # The cancelled writer is gone: both a new read and a new write
            # must go straight through.
            result = await asyncio.wait_for(engine.submit("//name"), 5.0)
            assert result.answer_ids
            update = await asyncio.wait_for(
                engine.apply_update(EditText(target.node_id, "landed")), 5.0
            )
            assert update.kind

        run(scenario())
