"""Unit tests for the service metrics aggregator."""

import pytest

from repro.distributed.stats import RunStats
from repro.service.metrics import ServiceMetrics, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.95) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestServiceMetrics:
    def record_n(self, metrics, latencies, **kwargs):
        for value in latencies:
            metrics.record("//a", "PaX2", value, **kwargs)

    def test_totals_by_service_path(self):
        metrics = ServiceMetrics()
        metrics.record("//a", "PaX2", 0.01)
        metrics.record("//a", "PaX2", 0.001, cache_hit=True)
        metrics.record("//a", "PaX2", 0.002, coalesced=True)
        assert metrics.total_requests == 3
        assert metrics.total_evaluated == 1
        assert metrics.total_cache_hits == 1
        assert metrics.total_coalesced == 1

    def test_percentiles_over_records(self):
        metrics = ServiceMetrics()
        self.record_n(metrics, [0.001 * step for step in range(1, 101)])
        assert metrics.p50 == pytest.approx(0.0505, rel=1e-3)
        assert metrics.p95 == pytest.approx(0.09505, rel=1e-3)
        assert metrics.p99 <= 0.1

    def test_throughput_positive_after_traffic(self):
        metrics = ServiceMetrics()
        self.record_n(metrics, [0.001, 0.001])
        assert metrics.throughput_qps > 0
        assert metrics.elapsed_seconds > 0

    def test_answer_counts_come_from_stats(self):
        metrics = ServiceMetrics()
        stats = RunStats(algorithm="PaX2", query="//a", answer_ids=[1, 2])
        record = metrics.record("//a", "PaX2", 0.001, stats=stats)
        assert record.answer_count == 2

    def test_window_bounds_records_not_totals(self):
        metrics = ServiceMetrics(window=5)
        self.record_n(metrics, [0.001] * 12)
        assert len(metrics.records) == 5
        assert metrics.total_requests == 12

    def test_summary_and_dict(self):
        metrics = ServiceMetrics()
        self.record_n(metrics, [0.002, 0.004])
        text = metrics.summary()
        assert "throughput" in text and "p95" in text
        snapshot = metrics.to_dict()
        assert snapshot["requests"] == 2
        assert snapshot["latency_seconds"]["p50"] == pytest.approx(0.003, rel=1e-3)

    def test_window_validated(self):
        with pytest.raises(ValueError):
            ServiceMetrics(window=0)
