"""Unit tests for the service metrics aggregator."""

import pytest

from repro.distributed.stats import RunStats
from repro.service.metrics import (
    DEFAULT_SAMPLE_WINDOW,
    BatchStats,
    ServiceMetrics,
    percentile,
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.95) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_fraction_validated_even_for_empty_input(self):
        # The empty-input 0.0 shortcut must not bypass validation.
        with pytest.raises(ValueError):
            percentile([], -0.1)
        with pytest.raises(ValueError):
            percentile([], 2.0)

    def test_input_need_not_be_sorted(self):
        assert percentile([9.0, 1.0, 5.0], 0.5) == 5.0

    def test_duplicate_values(self):
        assert percentile([2.0, 2.0, 2.0, 2.0], 0.95) == 2.0
        assert percentile([1.0, 2.0, 2.0, 3.0], 0.5) == 2.0

    def test_input_not_mutated(self):
        values = [3.0, 1.0, 2.0]
        percentile(values, 0.5)
        assert values == [3.0, 1.0, 2.0]

    def test_interpolates_between_adjacent_samples(self):
        assert percentile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_boundary_fractions_on_single_value(self):
        assert percentile([4.0], 0.0) == 4.0
        assert percentile([4.0], 1.0) == 4.0


class TestServiceMetrics:
    def record_n(self, metrics, latencies, **kwargs):
        for value in latencies:
            metrics.record("//a", "PaX2", value, **kwargs)

    def test_totals_by_service_path(self):
        metrics = ServiceMetrics()
        metrics.record("//a", "PaX2", 0.01)
        metrics.record("//a", "PaX2", 0.001, cache_hit=True)
        metrics.record("//a", "PaX2", 0.002, coalesced=True)
        assert metrics.total_requests == 3
        assert metrics.total_evaluated == 1
        assert metrics.total_cache_hits == 1
        assert metrics.total_coalesced == 1

    def test_percentiles_over_records(self):
        metrics = ServiceMetrics()
        self.record_n(metrics, [0.001 * step for step in range(1, 101)])
        assert metrics.p50 == pytest.approx(0.0505, rel=1e-3)
        assert metrics.p95 == pytest.approx(0.09505, rel=1e-3)
        assert metrics.p99 <= 0.1

    def test_throughput_positive_after_traffic(self):
        metrics = ServiceMetrics()
        self.record_n(metrics, [0.001, 0.001])
        assert metrics.throughput_qps > 0
        assert metrics.elapsed_seconds > 0

    def test_answer_counts_come_from_stats(self):
        metrics = ServiceMetrics()
        stats = RunStats(algorithm="PaX2", query="//a", answer_ids=[1, 2])
        record = metrics.record("//a", "PaX2", 0.001, stats=stats)
        assert record.answer_count == 2

    def test_window_bounds_records_not_totals(self):
        metrics = ServiceMetrics(window=5)
        self.record_n(metrics, [0.001] * 12)
        assert len(metrics.records) == 5
        assert metrics.total_requests == 12

    def test_summary_and_dict(self):
        metrics = ServiceMetrics()
        self.record_n(metrics, [0.002, 0.004])
        text = metrics.summary()
        assert "throughput" in text and "p95" in text
        snapshot = metrics.to_dict()
        assert snapshot["requests"] == 2
        assert snapshot["latency_seconds"]["p50"] == pytest.approx(0.003, rel=1e-3)

    def test_window_validated(self):
        with pytest.raises(ValueError):
            ServiceMetrics(window=0)


class TestRetentionCaps:
    """Every per-record sample list in the service shares one documented cap."""

    def test_default_window_is_the_shared_cap(self):
        assert ServiceMetrics().window == DEFAULT_SAMPLE_WINDOW
        assert BatchStats.WINDOW_SAMPLES == DEFAULT_SAMPLE_WINDOW

    def test_update_records_bounded_like_query_records(self):
        metrics = ServiceMetrics(window=4)
        for index in range(11):
            metrics.record_update("edit_text", f"F{index}", 0.001)
        assert len(metrics.update_records) == 4
        assert metrics.total_updates == 11
        # the retained window holds the most recent records
        assert [record.fragment_id for record in metrics.update_records] == [
            "F7", "F8", "F9", "F10",
        ]

    def test_batch_window_samples_bounded(self):
        stats = BatchStats()
        stats.WINDOW_SAMPLES = 6  # instance override of the class cap
        for _ in range(5):
            stats.record_scan(requests=2, slots=2, window_seconds=[0.001, 0.002])
        assert len(stats.window_seconds) == 6
        assert stats.fused_scans == 5
        assert stats.batched_queries == 10

    def test_tracer_retention_documented_smaller(self):
        # A retained request is a whole span tree, so the tracer's cap is
        # deliberately far below the flat-record sample window.
        from repro.obs.trace import DEFAULT_KEEP_SPANS

        assert DEFAULT_KEEP_SPANS < DEFAULT_SAMPLE_WINDOW


class TestZeroAndPartialTraffic:
    """summary()/to_dict() must render before (and between) traffic."""

    def test_zero_traffic_summary_renders(self):
        metrics = ServiceMetrics()
        text = metrics.summary()
        assert "requests         : 0" in text
        assert "0.00 ms" in text

    def test_zero_traffic_to_dict_is_all_zeros(self):
        snapshot = ServiceMetrics().to_dict()
        assert snapshot["requests"] == 0
        assert snapshot["throughput_qps"] == 0.0
        assert snapshot["elapsed_seconds"] == 0.0
        assert snapshot["latency_seconds"]["p95"] == 0.0
        assert snapshot["updates"]["applied"] == 0
        assert snapshot["documents"] == {}

    def test_updates_only_traffic(self):
        metrics = ServiceMetrics()
        metrics.record_update("edit_text", "F0", 0.002, nodes_added=1)
        text = metrics.summary()
        assert "updates          : 1 applied" in text
        snapshot = metrics.to_dict()
        assert snapshot["requests"] == 0
        assert snapshot["updates"]["applied"] == 1
        assert snapshot["updates"]["by_kind"] == {"edit_text": 1}

    def test_queries_only_traffic_has_empty_update_block(self):
        metrics = ServiceMetrics()
        metrics.record("//a", "PaX2", 0.001)
        snapshot = metrics.to_dict()
        assert snapshot["updates"]["applied"] == 0
        assert snapshot["updates"]["latency_seconds"]["p50"] == 0.0

    def test_document_breakdown_with_partial_documents(self):
        # One document has only queries, the other only updates: both render.
        metrics = ServiceMetrics()
        metrics.record("//a", "PaX2", 0.004, document="reads")
        metrics.record_update("edit_text", "F0", 0.002, document="writes")
        breakdown = metrics.document_breakdown()
        assert breakdown["reads"]["requests"] == 1
        assert breakdown["reads"]["updates"] == 0
        assert breakdown["writes"]["requests"] == 0
        assert breakdown["writes"]["updates"] == 1
        assert breakdown["writes"]["latency_seconds"]["p50"] == 0.0

    def test_multi_document_summary_lists_each(self):
        metrics = ServiceMetrics()
        metrics.record("//a", "PaX2", 0.004, document="alpha")
        metrics.record("//b", "PaX2", 0.002, document="beta", cache_hit=True)
        text = metrics.summary()
        assert "alpha: 1 requests" in text
        assert "beta: 1 requests" in text

    def test_reset_clock_restarts_throughput_window(self):
        metrics = ServiceMetrics()
        metrics.record("//a", "PaX2", 0.001)
        assert metrics.throughput_qps > 0
        metrics.reset_clock()
        assert metrics.throughput_qps == 0.0
        assert metrics.elapsed_seconds == 0.0
        assert len(metrics.records) == 1  # records survive the clock reset
