"""End-to-end tests for the concurrent ServiceEngine."""

import asyncio

import pytest

from repro.core.engine import DistributedQueryEngine
from repro.core.pax2 import run_pax2
from repro.distributed.async_transport import LatencyModel
from repro.service.server import AdmissionError, ServiceConfig, ServiceEngine
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    PAPER_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)
from repro.workloads.scenarios import build_ft2
from repro.xpath.centralized import evaluate_centralized


@pytest.fixture(scope="module")
def clientele():
    tree = clientele_example_tree()
    return tree, clientele_paper_fragmentation(tree)


@pytest.fixture(scope="module")
def ft2():
    return build_ft2(total_bytes=60_000, seed=5)


class TestCorrectness:
    @pytest.mark.parametrize("algorithm", ["pax2", "pax3", "naive"])
    def test_answers_match_centralized(self, clientele, algorithm):
        tree, fragmentation = clientele
        service = ServiceEngine(fragmentation, algorithm=algorithm)
        for query in ("client/name", CLIENTELE_QUERIES["brokers_goog"]):
            result = service.execute(query)
            assert result.answer_ids == evaluate_centralized(tree, query).answer_ids

    def test_parbox_boolean_fallback(self, clientele):
        tree, fragmentation = clientele
        service = ServiceEngine(fragmentation)
        assert service.execute(
            CLIENTELE_QUERIES["boolean_goog"], algorithm="parbox"
        ).answer_ids == [tree.root.node_id]

    def test_concurrent_batch_matches_sequential(self, ft2):
        engine = DistributedQueryEngine(ft2.fragmentation, placement=ft2.placement)
        service = engine.as_service(max_in_flight=16)
        queries = list(PAPER_QUERIES.values()) * 4
        results = service.serve_batch(queries, concurrency=16)
        for query, result in zip(queries, results):
            assert result.answer_ids == engine.execute(query).answer_ids

    def test_pax2_run_stats_match_sync_runner(self, ft2):
        query = PAPER_QUERIES["Q3"]
        service = ServiceEngine(
            ft2.fragmentation, placement=ft2.placement, cache_capacity=0
        )
        async_stats = service.run(query)
        sync_stats = run_pax2(
            ft2.fragmentation, query, placement=ft2.placement, use_annotations=True
        )
        assert async_stats.answer_ids == sync_stats.answer_ids
        assert async_stats.communication_units == sync_stats.communication_units
        assert async_stats.message_count == sync_stats.message_count
        assert async_stats.fragments_evaluated == sync_stats.fragments_evaluated
        assert async_stats.fragments_pruned == sync_stats.fragments_pruned
        assert async_stats.visits_by_site() == sync_stats.visits_by_site()

    def test_annotations_toggle_per_query(self, clientele):
        _, fragmentation = clientele
        service = ServiceEngine(fragmentation, cache_capacity=0)
        pruned = service.run(CLIENTELE_QUERIES["client_names"])
        unpruned = service.execute(
            CLIENTELE_QUERIES["client_names"], use_annotations=False
        ).stats
        assert pruned.answer_ids == unpruned.answer_ids
        assert pruned.fragments_pruned and not unpruned.fragments_pruned

    def test_simulated_latency_keeps_answers(self, clientele):
        tree, fragmentation = clientele
        service = ServiceEngine(
            fragmentation, latency=LatencyModel(base_seconds=0.0005)
        )
        query = CLIENTELE_QUERIES["brokers_goog"]
        assert service.execute(query).answer_ids == evaluate_centralized(tree, query).answer_ids

    def test_latency_charged_on_fallback_algorithms_too(self, clientele):
        import time

        _, fragmentation = clientele
        service = ServiceEngine(
            fragmentation, latency=LatencyModel(base_seconds=0.005), cache_capacity=0
        )
        started = time.perf_counter()
        service.execute("client/broker/name", algorithm="pax3")  # crosses sites
        assert time.perf_counter() - started >= 0.005


class TestCachingAndCoalescing:
    def test_repeat_query_hits_cache(self, clientele):
        _, fragmentation = clientele
        service = ServiceEngine(fragmentation)
        first = service.execute("client/name")
        second = service.execute("client/name")
        assert first.answer_ids == second.answer_ids
        assert service.cache.stats.hits == 1
        assert service.metrics.total_evaluated == 1
        assert service.metrics.total_cache_hits == 1

    def test_equivalent_query_text_hits_cache(self, clientele):
        _, fragmentation = clientele
        service = ServiceEngine(fragmentation)
        service.execute("client/./name")
        service.execute("client/name")
        assert service.cache.stats.hits == 1

    def test_identical_inflight_queries_coalesce(self, ft2):
        service = ServiceEngine(ft2.fragmentation, placement=ft2.placement)
        queries = [PAPER_QUERIES["Q1"]] * 20
        service.serve_batch(queries, concurrency=20)
        assert service.metrics.total_evaluated == 1
        assert service.metrics.total_coalesced == 19

    def test_cache_disabled(self, clientele):
        _, fragmentation = clientele
        service = ServiceEngine(fragmentation, cache_capacity=0)
        assert service.cache is None
        service.execute("client/name")
        service.execute("client/name")
        assert service.metrics.total_evaluated == 2
        assert service.invalidate_cache() == 0

    def test_invalidate_forces_reevaluation(self, clientele):
        _, fragmentation = clientele
        service = ServiceEngine(fragmentation)
        service.execute("client/name")
        assert service.invalidate_cache() == 1
        service.execute("client/name")
        assert service.metrics.total_evaluated == 2

    def test_refresh_version_retires_old_entries(self, clientele):
        _, fragmentation = clientele
        service = ServiceEngine(fragmentation)
        service.execute("client/name")
        old_version = service.version
        # Simulate an in-place document update the fingerprint cannot see.
        for node in fragmentation.tree.root.iter_subtree():
            if not node.is_element:
                node.value = node.value + "!"
                break
        assert service.refresh_version() != old_version
        # The old-version entry is dropped, not just unreachable in the LRU.
        assert len(service.cache) == 0
        service.execute("client/name")
        assert service.metrics.total_evaluated == 2

    def test_algorithms_cached_separately(self, clientele):
        _, fragmentation = clientele
        service = ServiceEngine(fragmentation)
        service.execute("client/name", algorithm="pax2")
        service.execute("client/name", algorithm="pax3")
        assert service.metrics.total_evaluated == 2


class TestAdmissionAndScheduling:
    def test_max_pending_rejects_overload(self, ft2):
        service = ServiceEngine(
            ft2.fragmentation,
            placement=ft2.placement,
            max_in_flight=1,
            max_pending=0,
            cache_capacity=0,
            coalesce=False,
        )
        queries = list(PAPER_QUERIES.values())

        async def flood():
            results = await asyncio.gather(
                *(service.submit(query) for query in queries), return_exceptions=True
            )
            return results

        results = asyncio.run(flood())
        rejected = [r for r in results if isinstance(r, AdmissionError)]
        served = [r for r in results if not isinstance(r, BaseException)]
        assert rejected, "flooding past max_pending must reject some queries"
        assert served, "admitted queries must still be answered"

    def test_site_parallelism_respected(self, ft2):
        service = ServiceEngine(
            ft2.fragmentation,
            placement=ft2.placement,
            site_parallelism=2,
            cache_capacity=0,
            coalesce=False,
        )
        queries = list(PAPER_QUERIES.values()) * 4
        service.serve_batch(queries, concurrency=len(queries))
        assert service.actors.peak_in_flight() <= 2
        assert service.actors.total_requests() > 0

    def test_blocking_api_rejected_inside_loop(self, clientele):
        _, fragmentation = clientele
        service = ServiceEngine(fragmentation)

        async def misuse():
            service.execute("client/name")

        with pytest.raises(RuntimeError, match="blocking"):
            asyncio.run(misuse())

    def test_async_api_usable_inside_loop(self, clientele):
        tree, fragmentation = clientele
        service = ServiceEngine(fragmentation)

        async def main():
            return await service.submit("client/name")

        result = asyncio.run(main())
        assert result.answer_ids == evaluate_centralized(tree, "client/name").answer_ids


class TestConfiguration:
    def test_config_overrides(self, clientele):
        _, fragmentation = clientele
        service = ServiceEngine(
            fragmentation, config=ServiceConfig(max_in_flight=3), site_parallelism=7
        )
        assert service.config.max_in_flight == 3
        assert service.config.site_parallelism == 7

    def test_invalid_algorithm_rejected(self, clientele):
        _, fragmentation = clientele
        with pytest.raises(ValueError):
            ServiceEngine(fragmentation, algorithm="magic")
        service = ServiceEngine(fragmentation)
        with pytest.raises(ValueError):
            service.execute("client/name", algorithm="magic")

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_in_flight=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_pending=-1)

    def test_as_service_inherits_engine_defaults(self, clientele):
        _, fragmentation = clientele
        engine = DistributedQueryEngine(
            fragmentation, algorithm="pax3", use_annotations=False
        )
        service = engine.as_service()
        assert service.config.algorithm == "pax3"
        assert service.config.use_annotations is False
        assert service.placement == engine.placement

    def test_as_service_explicit_config_wins_over_engine_defaults(self, clientele):
        _, fragmentation = clientele
        engine = DistributedQueryEngine(fragmentation, algorithm="pax2")
        service = engine.as_service(
            config=ServiceConfig(algorithm="pax3", use_annotations=False)
        )
        assert service.config.algorithm == "pax3"
        assert service.config.use_annotations is False

    def test_summary_renders(self, clientele):
        _, fragmentation = clientele
        service = ServiceEngine(fragmentation)
        service.execute("client/name")
        text = service.summary()
        assert "throughput" in text and "cache" in text and "actor pool" in text
        assert "ServiceEngine" in repr(service)
