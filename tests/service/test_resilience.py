"""Deadlines, retries, breakers, shedding and partial-answer degradation."""

import asyncio
import random
import time

import pytest

from repro.core.results import PartialAnswer
from repro.distributed.async_transport import LatencyModel
from repro.distributed.faults import FaultInjector, FaultPolicy, SiteFaultProfile
from repro.service.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceededError,
    ResiliencePolicy,
    ResilienceState,
    RetryPolicy,
)
from repro.service.server import AdmissionError, ServiceEngine
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation


QUERY = "//client/name"


def clientele_fragmentation():
    return clientele_paper_fragmentation(clientele_example_tree())


def fast_policy(**overrides):
    """A resilience policy whose waits are test-friendly (no real backoff)."""
    defaults = dict(
        retry=RetryPolicy(backoff_seconds=0.0, jitter=0.0),
        breaker_reset_seconds=0.02,
    )
    defaults.update(overrides)
    return ResiliencePolicy(**defaults)


class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)

    def test_remaining_counts_down_and_expires(self):
        deadline = Deadline.after(0.05)
        assert 0.0 < deadline.remaining() <= 0.05
        assert not deadline.expired()
        time.sleep(0.06)
        assert deadline.expired()
        assert deadline.remaining() <= 0.0


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_seconds": -1.0},
            {"backoff_multiplier": 0.5},
            {"jitter": 1.5},
            {"hedge_after_seconds": -0.1},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_seconds=0.01,
            backoff_multiplier=2.0,
            backoff_max_seconds=0.05,
            jitter=0.0,
        )
        rng = random.Random(0)
        waits = [policy.backoff_for(attempt, rng) for attempt in (1, 2, 3, 10)]
        assert waits[0] == pytest.approx(0.01)
        assert waits[1] == pytest.approx(0.02)
        assert waits[2] == pytest.approx(0.04)
        assert waits[3] == pytest.approx(0.05)  # capped

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(backoff_seconds=0.01, jitter=0.5)
        rng = random.Random(42)
        for _ in range(100):
            wait = policy.backoff_for(1, rng)
            assert 0.005 <= wait <= 0.015


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_seconds=60.0)
        assert breaker.allow()
        assert not breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.record_failure()  # this one trips it
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.rejections == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_seconds=60.0)
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()  # streak restarted
        assert breaker.state == "closed"

    def test_half_open_probe_recloses_on_success(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=0.02)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.03)
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=0.02)
        breaker.record_failure()
        time.sleep(0.03)
        assert breaker.allow()
        assert breaker.record_failure()  # the probe failed: re-open
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_state_board_autocreates_per_site(self):
        state = ResilienceState(fast_policy())
        breaker = state.breaker("S1")
        assert state.breaker("S1") is breaker
        assert set(state.breakers()) == {"S1"}
        context = state.for_request(Deadline.after(1.0))
        assert context.breaker("S1") is breaker
        assert context.deadline_remaining() is not None


class TestParity:
    """With no faults injected, the resilience layer must be invisible."""

    def test_resilience_layer_changes_nothing_without_faults(self):
        plain = ServiceEngine(clientele_fragmentation())
        armored = ServiceEngine(
            clientele_fragmentation(), resilience=fast_policy()
        )
        baseline = plain.execute(QUERY)
        result = armored.execute(QUERY)
        assert result.answer_ids == baseline.answer_ids
        assert not result.is_partial
        assert result.stats.communication_units == baseline.stats.communication_units
        assert result.stats.message_count == baseline.stats.message_count
        assert result.stats.local_units == baseline.stats.local_units
        assert armored.resilience.stats.retries == 0
        assert armored.resilience.stats.degraded_answers == 0

    def test_disabled_injector_is_bit_identical(self):
        plain = ServiceEngine(clientele_fragmentation())
        injector = FaultInjector(
            FaultPolicy(default=SiteFaultProfile(drop_probability=1.0)),
            enabled=False,
        )
        chaos = ServiceEngine(
            clientele_fragmentation(),
            resilience=fast_policy(),
            fault_injector=injector,
        )
        baseline = plain.execute(QUERY)
        result = chaos.execute(QUERY)
        assert result.answer_ids == baseline.answer_ids
        assert result.stats.communication_units == baseline.stats.communication_units
        assert result.stats.message_count == baseline.stats.message_count
        assert injector.stats.decisions == 0


class TestRetryAccounting:
    """The satellite: a retried round must not double-count traffic."""

    def test_retried_round_commits_exactly_once(self):
        baseline = ServiceEngine(clientele_fragmentation()).execute(QUERY)
        # S1 goes dark for its first two messages only: the first stage-1
        # round attempt fails, the retry sails through.
        injector = FaultInjector(
            FaultPolicy(
                sites={"S1": SiteFaultProfile(blackout_period=10_000, blackout_length=2)}
            )
        )
        engine = ServiceEngine(
            clientele_fragmentation(),
            resilience=fast_policy(),
            fault_injector=injector,
        )
        result = engine.execute(QUERY)
        assert not result.is_partial
        assert result.answer_ids == baseline.answer_ids
        assert engine.resilience.stats.retries >= 1
        assert engine.resilience.stats.retries_by_site.get("S1", 0) >= 1
        assert injector.stats.blackout_drops >= 1
        # Exactly-once accounting: the failed attempt's staged messages and
        # site counters rolled back, so the differential is zero.
        assert result.stats.communication_units == baseline.stats.communication_units
        assert result.stats.message_count == baseline.stats.message_count
        assert result.stats.local_units == baseline.stats.local_units

    def test_site_visit_counters_roll_back_with_the_attempt(self):
        baseline = ServiceEngine(clientele_fragmentation()).execute(QUERY)
        injector = FaultInjector(
            FaultPolicy(
                sites={"S2": SiteFaultProfile(blackout_period=10_000, blackout_length=1)}
            )
        )
        engine = ServiceEngine(
            clientele_fragmentation(),
            resilience=fast_policy(),
            fault_injector=injector,
        )
        result = engine.execute(QUERY)
        assert not result.is_partial
        baseline_visits = {
            site_id: site.visits for site_id, site in baseline.stats.sites.items()
        }
        visits = {site_id: site.visits for site_id, site in result.stats.sites.items()}
        assert visits == baseline_visits


class TestDegradation:
    def downed_engine(self, **overrides):
        injector = FaultInjector(
            FaultPolicy(sites={"S1": SiteFaultProfile(drop_probability=1.0)})
        )
        policy = fast_policy(
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.0, jitter=0.0),
            breaker_failure_threshold=2,
        )
        engine = ServiceEngine(
            clientele_fragmentation(),
            resilience=policy,
            fault_injector=injector,
            **overrides,
        )
        return engine, injector

    def test_dead_site_degrades_to_a_flagged_subset(self):
        # //name has answers on every site, S1's fragment included — the
        # degraded answer must lose exactly the unreachable ones.
        baseline = ServiceEngine(clientele_fragmentation()).execute("//name")
        engine, _ = self.downed_engine()
        result = engine.execute("//name")
        assert isinstance(result, PartialAnswer)
        assert result.is_partial and result.stats.incomplete
        assert result.stats.missing_sites == ["S1"]
        assert result.stats.missing_fragments  # the site's fragments listed
        # Soundness: every returned answer is in the complete answer.
        assert set(result.answer_ids) <= set(baseline.answer_ids)
        assert len(result.answer_ids) < len(baseline.answer_ids)
        assert engine.resilience.stats.degraded_answers == 1
        assert engine.metrics.total_degraded == 1

    def test_partial_answers_are_never_cached(self):
        engine, injector = self.downed_engine()
        first = engine.execute("//name")
        assert first.is_partial
        assert len(engine.cache) == 0
        # The fault clears; the same query must re-evaluate and come back
        # complete — a cached partial would have been served as truth.
        injector.enabled = False
        time.sleep(0.03)  # past breaker_reset_seconds so S1's probe is let in
        second = engine.execute("//name")
        assert not second.is_partial
        assert set(first.answer_ids) < set(second.answer_ids)
        assert engine.metrics.total_evaluated == 2

    def test_breaker_trips_and_recovers(self):
        engine, injector = self.downed_engine()
        engine.execute(QUERY)
        breaker = engine.resilience.breaker("S1")
        assert engine.resilience.stats.breaker_trips >= 1
        assert breaker.state == "open"
        injector.enabled = False
        time.sleep(0.03)  # past breaker_reset_seconds: probe allowed
        result = engine.execute(QUERY)
        assert not result.is_partial
        assert breaker.state == "closed"
        assert engine.resilience.stats.breaker_probes >= 1

    def test_summary_surfaces_resilience_and_fault_lines(self):
        engine, _ = self.downed_engine()
        engine.execute(QUERY)
        text = engine.host.summary()
        assert "resilience:" in text
        assert "faults:" in text
        assert "degradation" in text


class TestShedding:
    """Deadline expiry while queued: shed, release the slot, no latency sample."""

    def run(self, coroutine):
        return asyncio.run(coroutine)

    def test_deadline_expired_in_admission_queue_sheds(self):
        engine = ServiceEngine(
            clientele_fragmentation(),
            max_in_flight=1,
            latency=LatencyModel(base_seconds=0.08),
            coalesce=False,
        )

        async def scenario():
            slow = asyncio.create_task(engine.submit(QUERY))
            await asyncio.sleep(0.02)  # the slow query now holds the permit
            with pytest.raises(DeadlineExceededError) as excinfo:
                await engine.submit("//client/account", deadline=0.02)
            assert excinfo.value.stage == "queued"
            return await slow

        result = self.run(scenario())
        assert not result.is_partial  # the victim of the queue, not the shed
        assert engine.metrics.total_shed == 1
        assert engine.metrics.shed_by_stage == {"admission": 1}
        assert engine.resilience.stats.shed_requests == 1
        # A shed is never a latency sample: only the slow query was recorded.
        assert engine.metrics.total_requests == 1
        # The pending slot was released with the shed.
        assert engine._pending_evaluations == 0

    def test_shed_request_releases_its_pending_slot(self):
        engine = ServiceEngine(
            clientele_fragmentation(),
            max_in_flight=1,
            max_pending=1,
            latency=LatencyModel(base_seconds=0.08),
            coalesce=False,
        )

        async def scenario():
            slow = asyncio.create_task(engine.submit(QUERY))
            await asyncio.sleep(0.02)
            with pytest.raises(DeadlineExceededError):
                await engine.submit("//client/account", deadline=0.02)
            # The shed's pending slot is free again: a new request queues
            # without tripping AdmissionError, and completes once the slow
            # query drains.
            result = await engine.submit("//client/email")
            return await slow, result

        self.run(scenario())
        assert engine.metrics.total_shed == 1
        assert engine.metrics.total_requests == 2

    def test_deadline_expired_awaiting_coalesced_leader_sheds(self):
        engine = ServiceEngine(
            clientele_fragmentation(),
            latency=LatencyModel(base_seconds=0.08),
        )

        async def scenario():
            leader = asyncio.create_task(engine.submit(QUERY))
            await asyncio.sleep(0.02)  # leader in flight; next joins it
            with pytest.raises(DeadlineExceededError):
                await engine.submit(QUERY, deadline=0.02)
            return await leader

        result = self.run(scenario())
        assert not result.is_partial  # the leader is unaffected by the shed
        assert engine.metrics.shed_by_stage == {"coalesced": 1}
        assert engine.metrics.total_requests == 1

    def test_generous_deadline_serves_normally(self):
        engine = ServiceEngine(clientele_fragmentation())
        baseline = engine.execute(QUERY)
        result = engine.execute("//client/account", deadline=5.0)
        assert not result.is_partial
        assert engine.metrics.total_shed == 0
        assert baseline.answer_ids  # both served

    def test_default_deadline_from_policy(self):
        engine = ServiceEngine(
            clientele_fragmentation(),
            resilience=fast_policy(default_deadline_seconds=5.0),
        )
        result = engine.execute(QUERY)
        assert not result.is_partial
        assert engine.metrics.total_shed == 0


class TestAdmissionPressure:
    def test_overflow_still_raises_admission_error_with_deadlines(self):
        engine = ServiceEngine(
            clientele_fragmentation(),
            max_in_flight=1,
            max_pending=0,
            latency=LatencyModel(base_seconds=0.08),
            coalesce=False,
        )

        async def scenario():
            slow = asyncio.create_task(engine.submit(QUERY))
            await asyncio.sleep(0.02)
            with pytest.raises(AdmissionError):
                await engine.submit("//client/account", deadline=1.0)
            return await slow

        asyncio.run(scenario())
        # An AdmissionError is an explicit rejection, not a shed.
        assert engine.metrics.total_shed == 0
