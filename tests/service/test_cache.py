"""Unit tests for the normalized-query result cache."""

import pytest

from repro.distributed.placement import one_site_per_fragment
from repro.distributed.stats import RunStats
from repro.service.cache import QueryResultCache, normalized_query, version_tag
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation
from repro.xpath.parser import parse_xpath


def stats_for(query: str) -> RunStats:
    return RunStats(algorithm="PaX2", query=query, answer_ids=[1, 2, 3])


class TestNormalizedQuery:
    @pytest.mark.parametrize(
        "variant, canonical",
        [
            ("//a/./b", "//a/b"),
            ("a//.//b", "a//b"),
            ("a/././b", "a/b"),
            ("/a[b][c]/d", "/a[b][c]/d"),
        ],
    )
    def test_equivalent_forms_share_a_key(self, variant, canonical):
        assert normalized_query(variant) == normalized_query(canonical)

    def test_distinct_queries_get_distinct_keys(self):
        assert normalized_query("//a/b") != normalized_query("//a/c")
        assert normalized_query("/a/b") != normalized_query("a/b")

    def test_accepts_parsed_paths(self):
        assert normalized_query(parse_xpath("//a/./b")) == normalized_query("//a/b")

    def test_merged_qualifiers_normalize_alike(self):
        # Consecutive qualifiers merge into one (the paper's last rule).
        assert normalized_query("a[b][c]") == normalized_query("a[b][c]")
        assert normalized_query("a[b][c]") != normalized_query("a[b]")


class TestVersionTag:
    def test_stable_for_identical_inputs(self):
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        placement = one_site_per_fragment(fragmentation)
        assert version_tag(fragmentation, placement) == version_tag(fragmentation, placement)

    def test_changes_with_placement(self):
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        placement = one_site_per_fragment(fragmentation)
        moved = dict(placement)
        any_fragment = next(iter(moved))
        moved[any_fragment] = "elsewhere"
        assert version_tag(fragmentation, placement) != version_tag(fragmentation, moved)

    def test_changes_with_document_content(self):
        first = clientele_paper_fragmentation(clientele_example_tree())
        second = clientele_paper_fragmentation(clientele_example_tree())
        placement = one_site_per_fragment(first)
        # Edit a text node in place: the fingerprint must move.
        for node in second.tree.root.iter_subtree():
            if not node.is_element:
                node.value = "edited"
                break
        assert version_tag(first, placement) != version_tag(second, placement)


class TestQueryResultCache:
    def key(self, cache, query, version="v0"):
        return cache.make_key(query, "pax2", True, version)

    def test_miss_then_hit(self):
        cache = QueryResultCache(capacity=4)
        key = self.key(cache, "//a/b")
        assert cache.get(key) is None
        cache.put(key, stats_for("//a/b"))
        assert cache.get(key).answer_ids == [1, 2, 3]
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_equivalent_query_text_hits(self):
        cache = QueryResultCache(capacity=4)
        cache.put(self.key(cache, "//a/./b"), stats_for("//a/b"))
        assert cache.get(self.key(cache, "//a/b")) is not None

    def test_lru_eviction_order(self):
        cache = QueryResultCache(capacity=2)
        first, second, third = (
            self.key(cache, q) for q in ("//a", "//b", "//c")
        )
        cache.put(first, stats_for("//a"))
        cache.put(second, stats_for("//b"))
        cache.get(first)  # refresh -> //b is now least recently used
        cache.put(third, stats_for("//c"))
        assert cache.get(first) is not None
        assert cache.get(second) is None
        assert cache.stats.evictions == 1

    def test_version_tag_separates_entries(self):
        cache = QueryResultCache(capacity=4)
        cache.put(self.key(cache, "//a", version="v0"), stats_for("//a"))
        assert cache.get(self.key(cache, "//a", version="v1")) is None

    def test_invalidate_all_and_by_version(self):
        cache = QueryResultCache(capacity=8)
        cache.put(self.key(cache, "//a", version="v0"), stats_for("//a"))
        cache.put(self.key(cache, "//b", version="v1"), stats_for("//b"))
        assert cache.invalidate(version="v0") == 1
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.stats.invalidations == 2

    def test_algorithm_and_annotations_in_key(self):
        cache = QueryResultCache(capacity=8)
        cache.put(cache.make_key("//a", "pax2", True, "v0"), stats_for("//a"))
        assert cache.get(cache.make_key("//a", "pax3", True, "v0")) is None
        assert cache.get(cache.make_key("//a", "pax2", False, "v0")) is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            QueryResultCache(capacity=0)

    def test_stats_summary_renders(self):
        cache = QueryResultCache(capacity=2)
        cache.get(self.key(cache, "//a"))
        assert "hits" in cache.stats.summary()
        assert cache.stats.to_dict()["misses"] == 1
