"""Unit tests for the normalized-query result cache."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.distributed.placement import one_site_per_fragment
from repro.distributed.stats import RunStats
from repro.service.cache import QueryResultCache, normalized_query, version_tag
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation
from repro.xpath.parser import parse_xpath


def stats_for(query: str) -> RunStats:
    return RunStats(algorithm="PaX2", query=query, answer_ids=[1, 2, 3])


class TestNormalizedQuery:
    @pytest.mark.parametrize(
        "variant, canonical",
        [
            ("//a/./b", "//a/b"),
            ("a//.//b", "a//b"),
            ("a/././b", "a/b"),
            ("/a[b][c]/d", "/a[b][c]/d"),
        ],
    )
    def test_equivalent_forms_share_a_key(self, variant, canonical):
        assert normalized_query(variant) == normalized_query(canonical)

    def test_distinct_queries_get_distinct_keys(self):
        assert normalized_query("//a/b") != normalized_query("//a/c")
        assert normalized_query("/a/b") != normalized_query("a/b")

    def test_accepts_parsed_paths(self):
        assert normalized_query(parse_xpath("//a/./b")) == normalized_query("//a/b")

    def test_merged_qualifiers_normalize_alike(self):
        # Consecutive qualifiers merge into one (the paper's last rule).
        assert normalized_query("a[b][c]") == normalized_query("a[b][c]")
        assert normalized_query("a[b][c]") != normalized_query("a[b]")


class TestVersionTag:
    def test_stable_for_identical_inputs(self):
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        placement = one_site_per_fragment(fragmentation)
        assert version_tag(fragmentation, placement) == version_tag(fragmentation, placement)

    def test_changes_with_placement(self):
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        placement = one_site_per_fragment(fragmentation)
        moved = dict(placement)
        any_fragment = next(iter(moved))
        moved[any_fragment] = "elsewhere"
        assert version_tag(fragmentation, placement) != version_tag(fragmentation, moved)

    def test_changes_with_document_content(self):
        first = clientele_paper_fragmentation(clientele_example_tree())
        second = clientele_paper_fragmentation(clientele_example_tree())
        placement = one_site_per_fragment(first)
        # Edit a text node in place: the fingerprint must move.
        for node in second.tree.root.iter_subtree():
            if not node.is_element:
                node.value = "edited"
                break
        assert version_tag(first, placement) != version_tag(second, placement)

    def test_changes_with_a_mutation_epoch(self):
        from repro.updates import EditText, apply_mutation

        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        placement = one_site_per_fragment(fragmentation)
        before = version_tag(fragmentation, placement)
        target = next(
            node for node in fragmentation.tree.root.iter_subtree() if node.is_text
        )
        apply_mutation(fragmentation, EditText(target.node_id, "epoch-moved"))
        assert version_tag(fragmentation, placement) != before

    def test_stable_across_processes_under_hash_randomization(self, tmp_path):
        # Regression: the tag used to fold builtin hash() of placement sites,
        # which PYTHONHASHSEED randomization salts differently per process —
        # two replicas of the same service then disagreed on every tag.
        script = tmp_path / "emit_tag.py"
        script.write_text(
            "from repro.distributed.placement import one_site_per_fragment\n"
            "from repro.service.cache import version_tag\n"
            "from repro.workloads.queries import (\n"
            "    clientele_example_tree, clientele_paper_fragmentation)\n"
            "fragmentation = clientele_paper_fragmentation(clientele_example_tree())\n"
            "print(version_tag(fragmentation, one_site_per_fragment(fragmentation)))\n",
            encoding="utf-8",
        )
        src = Path(__file__).resolve().parents[2] / "src"

        def tag_under(seed: str) -> str:
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
            return subprocess.run(
                [sys.executable, str(script)],
                capture_output=True, text=True, check=True, env=env,
            ).stdout.strip()

        tags = {tag_under(seed) for seed in ("0", "1", "424242")}
        assert len(tags) == 1, f"version tags diverged across processes: {tags}"

    def test_lookup_path_never_rewalks_the_document(self):
        # Regression: version_tag used to call content_version(refresh=True),
        # a full-document walk, on every cache lookup.  The request path must
        # serve from the cached/epoch-based version: O(#fragments), 0 walks.
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        placement = one_site_per_fragment(fragmentation)
        version_tag(fragmentation, placement)  # settles the content base
        walks_before = fragmentation.full_walks
        for _ in range(50):
            version_tag(fragmentation, placement)
        assert fragmentation.full_walks == walks_before


class TestQueryResultCache:
    def key(self, cache, query, version="v0"):
        return cache.make_key(query, "pax2", True, version)

    def test_miss_then_hit(self):
        cache = QueryResultCache(capacity=4)
        key = self.key(cache, "//a/b")
        assert cache.get(key) is None
        cache.put(key, stats_for("//a/b"))
        assert cache.get(key).answer_ids == [1, 2, 3]
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_equivalent_query_text_hits(self):
        cache = QueryResultCache(capacity=4)
        cache.put(self.key(cache, "//a/./b"), stats_for("//a/b"))
        assert cache.get(self.key(cache, "//a/b")) is not None

    def test_lru_eviction_order(self):
        cache = QueryResultCache(capacity=2)
        first, second, third = (
            self.key(cache, q) for q in ("//a", "//b", "//c")
        )
        cache.put(first, stats_for("//a"))
        cache.put(second, stats_for("//b"))
        cache.get(first)  # refresh -> //b is now least recently used
        cache.put(third, stats_for("//c"))
        assert cache.get(first) is not None
        assert cache.get(second) is None
        assert cache.stats.evictions == 1

    def test_version_tag_separates_entries(self):
        cache = QueryResultCache(capacity=4)
        cache.put(self.key(cache, "//a", version="v0"), stats_for("//a"))
        assert cache.get(self.key(cache, "//a", version="v1")) is None

    def test_invalidate_all_and_by_version(self):
        cache = QueryResultCache(capacity=8)
        cache.put(self.key(cache, "//a", version="v0"), stats_for("//a"))
        cache.put(self.key(cache, "//b", version="v1"), stats_for("//b"))
        assert cache.invalidate(version="v0") == 1
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.stats.invalidations == 2

    def test_invalidate_by_version_counts_each_entry(self):
        cache = QueryResultCache(capacity=8)
        for query in ("//a", "//b", "//c"):
            cache.put(self.key(cache, query, version="v0"), stats_for(query))
        cache.put(self.key(cache, "//d", version="v1"), stats_for("//d"))
        assert cache.invalidate(version="v0") == 3
        assert cache.stats.invalidations == 3
        assert cache.stats.evictions == 0  # invalidation is not eviction
        assert len(cache) == 1
        assert cache.invalidate(version="no-such-version") == 0
        assert cache.stats.invalidations == 3

    def test_reput_of_existing_key_does_not_grow_the_cache(self):
        cache = QueryResultCache(capacity=2)
        key = self.key(cache, "//a")
        other = self.key(cache, "//b")
        cache.put(key, stats_for("//a"))
        cache.put(other, stats_for("//b"))
        replacement = stats_for("//a-replacement")
        cache.put(key, replacement)
        assert len(cache) == 2
        assert cache.stats.evictions == 0  # re-put must not evict //b
        assert cache.get(key) is replacement
        assert cache.get(other) is not None
        # the re-put refreshed the key's LRU position: //b is evicted first
        cache.put(key, stats_for("//a"))  # touch //a again (most recent)
        cache.get(other)
        cache.put(self.key(cache, "//c"), stats_for("//c"))
        assert cache.get(key) is None  # //a was LRU after //b's get
        assert cache.get(other) is not None

    def test_retire_version_rekeys_untouched_dependencies(self):
        cache = QueryResultCache(capacity=8)
        key_a = self.key(cache, "//a", version="v0")
        key_b = self.key(cache, "//b", version="v0")
        key_c = self.key(cache, "//c", version="v0")
        cache.put(key_a, stats_for("//a"), dependencies=frozenset({"F1", "F2"}))
        cache.put(key_b, stats_for("//b"), dependencies=frozenset({"F3"}))
        cache.put(key_c, stats_for("//c"))  # no dependencies recorded

        rekeyed, dropped = cache.retire_version("v0", "v1", touched_fragment="F3")
        assert (rekeyed, dropped) == (1, 2)
        assert cache.stats.rekeyed == 1
        assert cache.stats.invalidations == 2
        # the //a entry survived under the new version…
        assert cache.get(self.key(cache, "//a", version="v1")) is not None
        # …and can survive further writes (dependencies carried over)
        assert cache.retire_version("v1", "v2", touched_fragment="F9") == (1, 0)
        assert cache.get(self.key(cache, "//a", version="v2")) is not None
        # the touched and dependency-less entries are gone under any version
        for version in ("v0", "v1", "v2"):
            assert cache.get(self.key(cache, "//b", version=version)) is None
            assert cache.get(self.key(cache, "//c", version=version)) is None

    def test_algorithm_and_annotations_in_key(self):
        cache = QueryResultCache(capacity=8)
        cache.put(cache.make_key("//a", "pax2", True, "v0"), stats_for("//a"))
        assert cache.get(cache.make_key("//a", "pax3", True, "v0")) is None
        assert cache.get(cache.make_key("//a", "pax2", False, "v0")) is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            QueryResultCache(capacity=0)

    def test_stats_summary_renders(self):
        cache = QueryResultCache(capacity=2)
        cache.get(self.key(cache, "//a"))
        assert "hits" in cache.stats.summary()
        assert cache.stats.to_dict()["misses"] == 1


class TestTenantIsolation:
    """One shared LRU, many document namespaces (the ServiceHost contract)."""

    def key(self, cache, query, document, version="v0"):
        return cache.make_key(query, "pax2", True, version, document=document)

    def test_same_query_and_version_separate_per_document(self):
        cache = QueryResultCache(capacity=8)
        cache.put(self.key(cache, "//a", "alpha"), stats_for("//a"))
        assert cache.get(self.key(cache, "//a", "beta")) is None
        assert cache.get(self.key(cache, "//a", "alpha")) is not None
        assert cache.stats.document("alpha").hits == 1
        assert cache.stats.document("beta").misses == 1

    def test_hot_tenant_evictions_are_charged_to_the_victim(self):
        # A hot tenant pushing a cold tenant's entries out of the shared LRU
        # must show up in the cold tenant's per-document eviction counter.
        cache = QueryResultCache(capacity=4)
        cold_key = self.key(cache, "//cold", "cold")
        cache.put(cold_key, stats_for("//cold"))
        for index in range(4):
            cache.put(self.key(cache, f"//hot{index}", "hot"), stats_for("//hot"))
        assert cold_key not in cache
        assert cache.stats.evictions == 1
        assert cache.stats.document("cold").evictions == 1
        assert cache.stats.document("hot").evictions == 0
        assert cache.stats.document("hot").stores == 4
        # continued pressure now evicts the hot tenant's own oldest entries
        cache.put(self.key(cache, "//hot4", "hot"), stats_for("//hot"))
        assert cache.stats.document("hot").evictions == 1

    def test_purge_document_leaves_other_tenants_untouched(self):
        cache = QueryResultCache(capacity=8)
        for document in ("alpha", "beta"):
            for query in ("//a", "//b"):
                cache.put(self.key(cache, query, document), stats_for(query))
        assert cache.purge_document("alpha") == 2
        assert cache.document_entry_count("alpha") == 0
        assert cache.document_entry_count("beta") == 2
        assert cache.stats.document("alpha").invalidations == 2
        assert cache.stats.document("beta").invalidations == 0
        assert cache.get(self.key(cache, "//a", "beta")) is not None
        assert cache.purge_document("alpha") == 0  # idempotent

    def test_retire_version_is_document_scoped(self):
        # Two tenants share the same version tag *text* (identical content);
        # retiring one tenant's tag must not touch the other's entries.
        cache = QueryResultCache(capacity=8)
        cache.put(
            self.key(cache, "//a", "alpha"),
            stats_for("//a"),
            dependencies=frozenset({"F1"}),
        )
        cache.put(
            self.key(cache, "//a", "beta"),
            stats_for("//a"),
            dependencies=frozenset({"F1"}),
        )
        rekeyed, dropped = cache.retire_version(
            "v0", "v1", touched_fragment="F1", document="alpha"
        )
        assert (rekeyed, dropped) == (0, 1)
        assert cache.get(self.key(cache, "//a", "beta", version="v0")) is not None
        rekeyed, dropped = cache.retire_version(
            "v0", "v1", touched_fragment="F9", document="beta"
        )
        assert (rekeyed, dropped) == (1, 0)
        assert cache.get(self.key(cache, "//a", "beta", version="v1")) is not None

    def test_invalidate_by_document_and_version(self):
        cache = QueryResultCache(capacity=8)
        cache.put(self.key(cache, "//a", "alpha", version="v0"), stats_for("//a"))
        cache.put(self.key(cache, "//a", "alpha", version="v1"), stats_for("//a"))
        cache.put(self.key(cache, "//a", "beta", version="v0"), stats_for("//a"))
        assert cache.invalidate(version="v0", document="alpha") == 1
        assert cache.document_entry_count("alpha") == 1
        assert cache.document_entry_count("beta") == 1

    def test_per_document_stats_render(self):
        cache = QueryResultCache(capacity=4)
        cache.put(self.key(cache, "//a", "alpha"), stats_for("//a"))
        cache.get(self.key(cache, "//a", "alpha"))
        cache.get(self.key(cache, "//a", "beta"))
        summary = cache.stats.summary()
        assert "alpha" in summary and "beta" in summary
        payload = cache.stats.to_dict()
        assert payload["documents"]["alpha"]["hits"] == 1
        assert payload["documents"]["beta"]["misses"] == 1
