"""ServiceEngine.apply_update: exclusive writes, incremental cache retirement."""

import asyncio

import pytest

from repro.core.engine import DistributedQueryEngine
from repro.updates import EditText, InsertSubtree, MixedWorkload
from repro.service.server import ServiceEngine
from repro.workloads.queries import (
    PAPER_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)
from repro.workloads.scenarios import build_ft2
from repro.xmltree.builder import element


@pytest.fixture()
def clientele_service():
    fragmentation = clientele_paper_fragmentation(clientele_example_tree())
    return ServiceEngine(fragmentation, max_in_flight=4)


def first_text_in(fragmentation, fragment_id):
    return next(
        node for node in fragmentation[fragment_id].iter_span() if node.is_text
    )


class TestApplyUpdate:
    def test_update_rolls_the_version_forward(self, clientele_service):
        service = clientele_service
        old_version = service.version
        target = first_text_in(service.fragmentation, service.fragmentation.fragment_ids()[0])
        result = service.update(EditText(target.node_id, "rolled"))
        assert result.kind == "edit"
        assert service.version != old_version

    def test_answers_reflect_updates_immediately(self, clientele_service):
        service = clientele_service
        query = 'client[country/text() = "us"]/name'
        assert service.execute(query).answer_ids
        for node in list(service.fragmentation.tree.iter_elements()):
            if node.tag == "country" and node.text().strip().lower() == "us":
                text_child = next(c for c in node.children if c.is_text)
                service.update(EditText(text_child.node_id, "uk"))
        assert service.execute(query).answer_ids == []

    def test_update_retires_only_dependent_entries(self):
        # FT2: writes into a regions fragment (pruned by every paper query)
        # must keep all cached answers serving hits across the version roll.
        scenario = build_ft2(total_bytes=25_000, seed=5)
        service = ServiceEngine(
            scenario.fragmentation, placement=scenario.placement, max_in_flight=4
        )
        fragmentation = scenario.fragmentation
        queries = [PAPER_QUERIES["Q1"], PAPER_QUERIES["Q2"], PAPER_QUERIES["Q3"]]
        for query in queries:
            service.execute(query)
        assert len(service.cache) == len(queries)

        # a fragment no paper query depends on: rooted at a regions subtree
        regions_fragment = next(
            fid
            for fid in fragmentation.fragment_ids()
            if fragmentation[fid].root.tag in ("regions", "namerica")
        )
        target = first_text_in(fragmentation, regions_fragment)
        service.update(EditText(target.node_id, "untouched-dependencies"))

        hits_before = service.cache.stats.hits
        for query in queries:
            service.execute(query)
        assert service.cache.stats.hits == hits_before + len(queries)
        assert service.cache.stats.rekeyed == len(queries)

        # …and a write into a fragment the queries DO depend on drops them.
        people_fragment = service.execute(queries[0]).stats.fragments_evaluated[-1]
        target = first_text_in(fragmentation, people_fragment)
        service.update(EditText(target.node_id, "dependent"))
        evaluated_before = service.metrics.total_evaluated
        service.execute(queries[0])
        assert service.metrics.total_evaluated == evaluated_before + 1

    def test_pax3_entries_never_survive_a_write(self):
        # PaX3's qualifier stage reads every fragment even when the selection
        # stages prune, so its cached accounting depends on the whole
        # document — update_dependencies must be conservative for it.
        from repro.core.pax3 import run_pax3
        from repro.service.cache import update_dependencies

        scenario = build_ft2(total_bytes=25_000, seed=5)
        fragmentation = scenario.fragmentation
        stats = run_pax3(
            fragmentation,
            PAPER_QUERIES["Q3"],
            placement=scenario.placement,
            use_annotations=True,
        )
        assert set(stats.fragments_evaluated) < set(fragmentation.fragment_ids())
        assert update_dependencies(fragmentation, stats) == frozenset(
            fragmentation.fragment_ids()
        )

        # end to end: a write into a selection-pruned fragment still forces
        # a PaX3 re-evaluation, and the served accounting matches fresh.
        service = ServiceEngine(
            fragmentation, placement=scenario.placement, max_in_flight=4
        )
        service.execute(PAPER_QUERIES["Q3"], algorithm="pax3")
        pruned_fragment = next(
            fid
            for fid in fragmentation.fragment_ids()
            if fid not in stats.fragments_evaluated
        )
        target = first_text_in(fragmentation, pruned_fragment)
        service.update(EditText(target.node_id, "qualifier-visible"))
        served = service.execute(PAPER_QUERIES["Q3"], algorithm="pax3").stats
        fresh = run_pax3(
            fragmentation,
            PAPER_QUERIES["Q3"],
            placement=scenario.placement,
            use_annotations=True,
        )
        assert served.answer_ids == fresh.answer_ids
        assert served.communication_units == fresh.communication_units
        assert served.message_count == fresh.message_count

    def test_rekeyed_entries_stay_exact(self):
        # Cached-after-rekey answers must equal a fresh evaluation.
        scenario = build_ft2(total_bytes=25_000, seed=7)
        service = ServiceEngine(
            scenario.fragmentation, placement=scenario.placement, max_in_flight=4
        )
        workload = MixedWorkload(
            scenario.fragmentation,
            list(PAPER_QUERIES.values()),
            write_ratio=0.3,
            seed=11,
        )
        fresh = DistributedQueryEngine(
            scenario.fragmentation, placement=scenario.placement
        )
        for _ in range(80):
            op = workload.next_op()
            if op.is_write:
                service.update(op.mutation)
            else:
                served = service.execute(op.query).answer_ids
                assert served == fresh.execute(op.query).answer_ids, op.query

    def test_concurrent_writers_do_not_deadlock(self):
        # Regression: two writers each draining admission permits one-by-one
        # could end up holding partial sets forever; a writer lock now
        # serializes the drain.
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        service = ServiceEngine(fragmentation, max_in_flight=4)
        texts = [
            node for node in fragmentation.tree.root.iter_subtree() if node.is_text
        ][:4]

        async def storm():
            operations = [service.submit("client/name") for _ in range(6)]
            operations += [
                service.apply_update(EditText(node.node_id, f"w{index}"))
                for index, node in enumerate(texts)
            ]
            return await asyncio.gather(*operations)

        results = asyncio.run(asyncio.wait_for(storm(), timeout=10.0))
        assert len(results) == 10
        assert service.metrics.total_updates == len(texts)

    def test_query_admitted_after_a_write_caches_under_the_new_version(self):
        # Regression: a query that computed its cache key, then waited for
        # admission while a write rolled the version, used to store its
        # (post-mutation) result under the pre-mutation tag — a dead entry.
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        service = ServiceEngine(fragmentation, max_in_flight=1)
        target = next(
            node for node in fragmentation.tree.root.iter_subtree() if node.is_text
        )

        async def interleave():
            # q1 takes the only permit; the writer queues for it; q2 queues
            # behind the writer (FIFO), so q2 evaluates *after* the write.
            q1 = asyncio.ensure_future(service.submit("client/name"))
            await asyncio.sleep(0)
            write = asyncio.ensure_future(
                service.apply_update(EditText(target.node_id, "interleaved"))
            )
            await asyncio.sleep(0)
            q2 = asyncio.ensure_future(service.submit('client[country/text() = "us"]/name'))
            await asyncio.gather(q1, write, q2)

        asyncio.run(asyncio.wait_for(interleave(), timeout=10.0))
        # q2's answer must be a *servable* entry: same query again is a hit.
        evaluated_before = service.metrics.total_evaluated
        service.execute('client[country/text() = "us"]/name')
        assert service.metrics.total_evaluated == evaluated_before
        # and nothing is stranded under a superseded tag
        for key in service.cache._entries:
            assert key[-1] == service.version

    def test_updates_are_admission_exclusive(self, clientele_service):
        service = clientele_service
        target = first_text_in(service.fragmentation, service.fragmentation.fragment_ids()[0])

        async def mixed():
            reads = [service.submit("client/name") for _ in range(6)]
            write = service.apply_update(EditText(target.node_id, "exclusive"))
            results = await asyncio.gather(*reads, write)
            return results[-1]

        result = asyncio.run(mixed())
        assert result.epoch >= 1
        # all permits were released: the service still serves
        assert service.execute("client/name") is not None

    def test_insert_served_through_the_service(self, clientele_service):
        service = clientele_service
        before = len(service.execute("client/name").answer_ids)
        root = service.fragmentation.tree.root
        service.update(
            InsertSubtree(root.node_id, element("client", element("name", "Zoe")))
        )
        assert len(service.execute("client/name").answer_ids) == before + 1

    def test_update_metrics_recorded(self, clientele_service):
        service = clientele_service
        target = first_text_in(service.fragmentation, service.fragmentation.fragment_ids()[0])
        service.update(EditText(target.node_id, "metered"))
        metrics = service.metrics
        assert metrics.total_updates == 1
        assert metrics.updates_by_kind == {"edit": 1}
        assert metrics.update_records[0].fragment_id in service.fragmentation.fragments
        assert "updates" in metrics.summary()
        assert metrics.to_dict()["updates"]["applied"] == 1

    def test_no_full_walks_while_serving(self):
        scenario = build_ft2(total_bytes=25_000, seed=5)
        service = ServiceEngine(
            scenario.fragmentation, placement=scenario.placement, max_in_flight=4
        )
        workload = MixedWorkload(
            scenario.fragmentation,
            list(PAPER_QUERIES.values()),
            write_ratio=0.25,
            seed=23,
        )
        walks_before = scenario.fragmentation.full_walks
        for _ in range(40):
            op = workload.next_op()
            if op.is_write:
                service.update(op.mutation)
            else:
                service.execute(op.query)
        assert scenario.fragmentation.full_walks == walks_before
