"""The multi-document ServiceHost: catalog, routing, isolation, parallelism."""

import asyncio

import pytest

from repro.core.engine import DistributedQueryEngine
from repro.fragments.snapshots import SnapshotPolicy
from repro.service.server import AdmissionError, ServiceEngine, ServiceHost
from repro.service.store import (
    DEFAULT_DOCUMENT,
    DocumentStore,
    DuplicateDocumentError,
    UnknownDocumentError,
)
from repro.updates import EditText
from repro.workloads.multidoc import MultiDocumentWorkload, build_tenants
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)


def clientele_fragmentation():
    return clientele_paper_fragmentation(clientele_example_tree())


def first_text_in(fragmentation, fragment_id=None):
    fragment_id = fragment_id or fragmentation.fragment_ids()[0]
    return next(
        node for node in fragmentation[fragment_id].iter_span() if node.is_text
    )


@pytest.fixture()
def twin_host():
    """A host serving two *identical* clientele documents — the worst case
    for cross-tenant cache bleed (same content, same version tag text)."""
    host = ServiceHost(max_in_flight=8)
    host.register("alpha", clientele_fragmentation())
    host.register("beta", clientele_fragmentation())
    return host


@pytest.fixture()
def gated_twin_host():
    """Twin host with MVCC snapshots off: reads hold the per-session gate.

    The gate-exclusivity tests below verify the *gate-mode* contract that
    remains behind ``SnapshotPolicy(enabled=False)`` (and that non-kernel
    engines always use); with snapshots on, eligible readers never park at
    a writer's gate in the first place.
    """
    host = ServiceHost(max_in_flight=8, snapshots=SnapshotPolicy(enabled=False))
    host.register("alpha", clientele_fragmentation())
    host.register("beta", clientele_fragmentation())
    return host


class TestDocumentStore:
    def test_register_open_drop_roundtrip(self):
        store = DocumentStore()
        fragmentation = clientele_fragmentation()
        entry = store.register("tenant", fragmentation)
        assert store.open("tenant") is entry
        assert "tenant" in store and len(store) == 1
        assert entry.placement  # defaulted to one site per fragment
        dropped = store.drop("tenant")
        assert dropped is entry
        assert "tenant" not in store and len(store) == 0

    def test_duplicate_registration_rejected(self):
        store = DocumentStore()
        store.register("tenant", clientele_fragmentation())
        with pytest.raises(DuplicateDocumentError):
            store.register("tenant", clientele_fragmentation())

    def test_unknown_document_raises_with_catalog(self):
        store = DocumentStore()
        store.register("known", clientele_fragmentation())
        with pytest.raises(UnknownDocumentError) as excinfo:
            store.open("missing")
        assert "known" in str(excinfo.value)

    @pytest.mark.parametrize("bad", ["", "has space", "a=b", "a::b"])
    def test_reserved_names_rejected(self, bad):
        store = DocumentStore()
        with pytest.raises(ValueError):
            store.register(bad, clientele_fragmentation())

    def test_host_serves_a_prebuilt_store(self):
        store = DocumentStore()
        store.register("pre", clientele_fragmentation())
        host = ServiceHost(store=store)
        assert host.documents() == ["pre"]
        assert host.execute("pre", "client/name").answer_ids


class TestRouting:
    def test_answers_match_solo_engines_per_document(self):
        tenants = build_tenants(3, total_bytes=12_000, seed=5)
        host = ServiceHost(max_in_flight=8)
        for tenant in tenants:
            host.register(tenant.name, tenant.fragmentation, tenant.placement)
        for tenant in tenants:
            solo = DistributedQueryEngine(
                tenant.fragmentation, placement=tenant.placement
            )
            for query in tenant.queries:
                assert (
                    host.execute(tenant.name, query).answer_ids
                    == solo.execute(query).answer_ids
                ), (tenant.name, query)

    def test_submit_to_unknown_document_raises(self, twin_host):
        with pytest.raises(UnknownDocumentError):
            twin_host.execute("gamma", "client/name")

    def test_updates_route_to_the_named_document(self, twin_host):
        alpha = twin_host.session("alpha")
        beta = twin_host.session("beta")
        target = first_text_in(alpha.fragmentation)
        beta_version = beta.version
        twin_host.update("alpha", EditText(target.node_id, "only-alpha"))
        assert alpha.version != beta_version
        assert beta.version == beta_version  # untouched tenant keeps its tag


class TestCacheIsolation:
    def test_identical_documents_never_share_entries(self, twin_host):
        host = twin_host
        host.execute("alpha", "client/name")
        evaluated = host.metrics.total_evaluated
        # beta's first request must evaluate, not hit alpha's entry —
        # even though both documents have identical content and version text.
        host.execute("beta", "client/name")
        assert host.metrics.total_evaluated == evaluated + 1
        assert host.cache.stats.document("beta").hits == 0
        # and beta's second request hits beta's own entry
        host.execute("beta", "client/name")
        assert host.cache.stats.document("beta").hits == 1
        assert host.cache.stats.document("alpha").hits == 0

    def test_write_to_one_tenant_keeps_the_others_entries_hot(self, twin_host):
        host = twin_host
        query = CLIENTELE_QUERIES["brokers_goog"]
        host.execute("alpha", query)
        host.execute("beta", query)
        target = first_text_in(host.session("alpha").fragmentation)
        host.update("alpha", EditText(target.node_id, "rolled"))
        hits_before = host.cache.stats.document("beta").hits
        host.execute("beta", query)
        assert host.cache.stats.document("beta").hits == hits_before + 1

    def test_coalescing_never_crosses_documents(self, twin_host):
        host = twin_host

        async def fire():
            return await asyncio.gather(
                *(host.submit("alpha", "client/name") for _ in range(3)),
                *(host.submit("beta", "client/name") for _ in range(3)),
            )

        results = asyncio.run(fire())
        assert len(results) == 6
        # one evaluation per document, the rest coalesced within it
        assert host.metrics.document("alpha").evaluated == 1
        assert host.metrics.document("beta").evaluated == 1
        assert host.metrics.document("alpha").coalesced == 2
        assert host.metrics.document("beta").coalesced == 2


class TestDropDocument:
    def test_drop_purges_only_that_tenant(self, twin_host):
        host = twin_host
        for name in ("alpha", "beta"):
            host.execute(name, "client/name")
            host.execute(name, CLIENTELE_QUERIES["brokers_goog"])
        beta_entries = host.cache.document_entry_count("beta")
        beta_version = host.session("beta").version
        purged = host.drop_document("alpha")
        assert purged == 2
        assert host.cache.document_entry_count("alpha") == 0
        assert host.cache.document_entry_count("beta") == beta_entries
        assert host.documents() == ["beta"]
        with pytest.raises(UnknownDocumentError):
            host.execute("alpha", "client/name")
        # the survivor's version tag and cached answers are untouched
        assert host.session("beta").version == beta_version
        hits_before = host.cache.stats.document("beta").hits
        host.execute("beta", "client/name")
        assert host.cache.stats.document("beta").hits == hits_before + 1

    def test_dropped_name_can_be_reregistered(self, twin_host):
        twin_host.drop_document("alpha")
        session = twin_host.register("alpha", clientele_fragmentation())
        assert twin_host.execute("alpha", "client/name").answer_ids
        assert session.version

    def test_drop_during_inflight_evaluation_leaves_no_residue(self, twin_host):
        # Regression: an evaluation in flight when its document is dropped
        # must not re-insert its answer into the shared LRU after the purge.
        host = twin_host

        async def scenario():
            task = asyncio.ensure_future(host.submit("alpha", "client/name"))
            await asyncio.sleep(0)  # leader registered, evaluation under way
            host.drop_document("alpha")
            result = await task  # the in-flight query still completes
            assert result.answer_ids

        asyncio.run(scenario())
        assert host.cache.document_entry_count("alpha") == 0
        assert "alpha" not in host.documents()

    def test_drop_releases_unshared_site_actors_and_stat_slices(self):
        # Tenants with namespaced placements: dropping one must free its
        # sites from the shared pool and its per-document stat slices —
        # a churning host must not accumulate residue forever.
        tenants = build_tenants(2, total_bytes=10_000, seed=5)
        host = ServiceHost(max_in_flight=4)
        for tenant in tenants:
            host.register(tenant.name, tenant.fragmentation, tenant.placement)
        for tenant in tenants:
            host.execute(tenant.name, tenant.queries[0])
        doomed_sites = set(tenants[0].placement.values())
        assert doomed_sites <= set(host.actors.site_ids())
        host.drop_document(tenants[0].name)
        assert not doomed_sites & set(host.actors.site_ids())
        assert tenants[0].name not in host.cache.stats.documents
        assert tenants[0].name not in host.metrics.documents
        # the survivor's actors and stats are untouched
        assert set(tenants[1].placement.values()) <= set(host.actors.site_ids())
        assert tenants[1].name in host.metrics.documents


class TestPerDocumentWriteExclusivity:
    def test_writers_on_different_documents_do_not_serialize(self, gated_twin_host):
        # Regression for the PR 4 design: one writer used to drain the
        # host-global admission semaphore, so ANY write froze every tenant.
        host = gated_twin_host
        target_beta = first_text_in(host.session("beta").fragmentation)

        async def scenario():
            alpha_gate = host.session("alpha").gate
            async with alpha_gate.write_locked():
                # alpha's writer gate is held: beta's write and read both
                # complete — they only contend on beta's own gate.
                await asyncio.wait_for(
                    host.apply_update("beta", EditText(target_beta.node_id, "w")),
                    timeout=5.0,
                )
                await asyncio.wait_for(host.submit("beta", "client/name"), timeout=5.0)
                # ...while a reader of alpha is parked behind alpha's writer.
                reader = asyncio.ensure_future(host.submit("alpha", "client/name"))
                done, _ = await asyncio.wait({reader}, timeout=0.05)
                assert not done
            # gate released: the parked reader now completes
            result = await asyncio.wait_for(reader, timeout=5.0)
            assert result.answer_ids

        asyncio.run(scenario())

    def test_concurrent_cross_document_write_storm(self, twin_host):
        host = twin_host
        texts = {
            name: [
                node
                for node in host.session(name).fragmentation.tree.root.iter_subtree()
                if node.is_text
            ][:4]
            for name in ("alpha", "beta")
        }

        async def storm():
            operations = []
            for name in ("alpha", "beta"):
                operations += [host.submit(name, "client/name") for _ in range(4)]
                operations += [
                    host.apply_update(name, EditText(node.node_id, f"{name}{i}"))
                    for i, node in enumerate(texts[name])
                ]
            return await asyncio.gather(*operations)

        results = asyncio.run(asyncio.wait_for(storm(), timeout=10.0))
        assert len(results) == 16
        assert host.metrics.document("alpha").updates == 4
        assert host.metrics.document("beta").updates == 4

    def test_write_still_excludes_readers_of_its_own_document(self, gated_twin_host):
        # The per-session gate must not have weakened single-document
        # exclusivity: while alpha's write gate is held, alpha's reads wait.
        host = gated_twin_host

        async def scenario():
            gate = host.session("alpha").gate
            async with gate.write_locked():
                reader = asyncio.ensure_future(host.submit("alpha", "client/name"))
                done, _ = await asyncio.wait({reader}, timeout=0.05)
                assert not done
            assert (await asyncio.wait_for(reader, timeout=5.0)).answer_ids

        asyncio.run(scenario())


class TestSharedScheduler:
    def test_write_parked_readers_do_not_eat_the_pending_budget(self):
        # Regression: readers parked behind one tenant's writer used to
        # count toward the shared max_pending budget, tripping
        # AdmissionError for healthy tenants with idle capacity.
        host = ServiceHost(
            max_in_flight=2,
            max_pending=0,
            coalesce=False,
            snapshots=SnapshotPolicy(enabled=False),  # gate-mode accounting
        )
        host.register("alpha", clientele_fragmentation())
        host.register("beta", clientele_fragmentation())

        async def scenario():
            gate = host.session("alpha").gate
            async with gate.write_locked():
                parked = [
                    asyncio.ensure_future(host.submit("alpha", "client/name"))
                    for _ in range(4)
                ]
                await asyncio.sleep(0)
                # beta has the whole host to itself and must be admitted
                result = await asyncio.wait_for(
                    host.submit("beta", "client/name"), timeout=5.0
                )
                assert result.answer_ids
            # Once alpha's writer releases, its readers un-park together and
            # the overload policy applies to THEM (max_pending=0 admits two,
            # rejects the rest) — but never to the other tenant above.
            outcomes = await asyncio.gather(*parked, return_exceptions=True)
            served = [r for r in outcomes if not isinstance(r, BaseException)]
            rejected = [r for r in outcomes if isinstance(r, AdmissionError)]
            assert len(served) + len(rejected) == len(parked)
            assert served  # the write never strands alpha's readers entirely

        asyncio.run(asyncio.wait_for(scenario(), timeout=10.0))

    def test_admission_is_shared_across_documents(self, twin_host):
        host = ServiceHost(max_in_flight=1, max_pending=0, coalesce=False)
        host.register("alpha", clientele_fragmentation())
        host.register("beta", clientele_fragmentation())

        async def scenario():
            first = asyncio.ensure_future(host.submit("alpha", "client/name"))
            await asyncio.sleep(0)  # let it occupy the only admission slot
            with pytest.raises(AdmissionError):
                await host.submit("beta", CLIENTELE_QUERIES["brokers_goog"])
            await first

        asyncio.run(scenario())

    def test_host_metrics_carry_per_document_breakdowns(self, twin_host):
        host = twin_host
        host.execute("alpha", "client/name")
        host.execute("beta", "client/name")
        target = first_text_in(host.session("beta").fragmentation)
        host.update("beta", EditText(target.node_id, "metered"))
        payload = host.metrics.to_dict()
        assert set(payload["documents"]) == {"alpha", "beta"}
        assert payload["documents"]["beta"]["updates"] == 1
        assert payload["documents"]["alpha"]["requests"] == 1
        assert "per document" in host.metrics.summary()
        assert host.metrics.update_records[0].document == "beta"

    def test_mixed_tenant_workload_matches_solo_engines(self):
        # End to end: interleaved reads and writes across three tenants,
        # every read differentially checked against a solo engine sharing
        # the same (mutating) fragmentation.
        tenants = build_tenants(3, total_bytes=12_000, seed=9)
        host = ServiceHost(max_in_flight=8)
        solo = {}
        for tenant in tenants:
            host.register(tenant.name, tenant.fragmentation, tenant.placement)
            solo[tenant.name] = DistributedQueryEngine(
                tenant.fragmentation, placement=tenant.placement
            )
        workload = MultiDocumentWorkload(tenants, write_ratio=0.2, seed=31)
        reads = writes = 0
        for name, op in workload.ops(25):
            if op.is_write:
                host.update(name, op.mutation)
                writes += 1
            else:
                assert (
                    host.execute(name, op.query).answer_ids
                    == solo[name].execute(op.query).answer_ids
                ), (name, op.query)
                reads += 1
        assert reads and writes
        # per-document accounting adds up to the host totals
        assert (
            sum(totals.requests for totals in host.metrics.documents.values())
            == host.metrics.total_requests
        )
        assert (
            sum(slice_.hits for slice_ in host.cache.stats.documents.values())
            == host.cache.stats.hits
        )


class TestSingleDocumentFacade:
    def test_service_engine_is_a_one_document_host(self):
        service = ServiceEngine(clientele_fragmentation(), max_in_flight=4)
        assert service.documents() == [DEFAULT_DOCUMENT]
        assert service.document == DEFAULT_DOCUMENT
        assert service.host is service
        # both call shapes reach the same session
        facade = service.execute("client/name").answer_ids
        routed = service.host.session(DEFAULT_DOCUMENT)
        assert routed.version == service.version
        assert facade

    def test_engine_register_with_joins_a_host(self):
        engine = DistributedQueryEngine(clientele_fragmentation())
        host = ServiceHost(max_in_flight=4)
        session = engine.register_with(host, "joined")
        assert host.documents() == ["joined"]
        assert session.fragmentation is engine.fragmentation
        assert (
            host.execute("joined", "client/name").answer_ids
            == engine.execute("client/name").answer_ids
        )
