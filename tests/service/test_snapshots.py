"""MVCC snapshot reads: pinning, reclamation, the watermark, and the host.

Manager-level tests drive :class:`SnapshotManager` directly; host-level
tests check the PR's headline contract — a write never waits for reader
drain (a pinned long-running reader stalls nothing), a read pinned before
a write stays exact at its pinned version, and retained history is bounded
by the watermark with writer back-pressure, not unbounded growth.
"""

import asyncio

import pytest

from repro.core.kernel.dispatch import KERNEL, fragment_engine
from repro.fragments.snapshots import SnapshotManager, SnapshotPolicy
from repro.service.server import ServiceHost
from repro.updates import EditText
from repro.workloads.queries import (
    clientele_example_tree,
    clientele_paper_fragmentation,
)

kernel_only = pytest.mark.skipif(
    fragment_engine() != KERNEL,
    reason="snapshot reads only run on the columnar kernel engine",
)


def clientele_fragmentation():
    return clientele_paper_fragmentation(clientele_example_tree())


def first_text_in(fragmentation):
    fragment_id = fragmentation.fragment_ids()[0]
    return next(
        node for node in fragmentation[fragment_id].iter_span() if node.is_text
    )


def run(coroutine):
    return asyncio.run(coroutine)


async def step(count=1):
    for _ in range(count):
        await asyncio.sleep(0)


class TestSnapshotPolicy:
    def test_watermark_must_be_positive(self):
        with pytest.raises(ValueError):
            SnapshotPolicy(max_retained_versions=0)


class TestSnapshotManager:
    def test_pin_release_reclaims_refcounted(self):
        async def scenario():
            manager = SnapshotManager(clientele_fragmentation(), SnapshotPolicy())
            first = manager.pin("v1")
            second = manager.pin("v1")
            assert first is second  # readers of one version share a snapshot
            assert first.pins == 2 and manager.retained == 1
            manager.release(first)
            assert manager.retained == 1  # still pinned once
            manager.release(second)
            assert manager.retained == 0
            stats = manager.stats
            assert stats.pins == 2
            assert stats.snapshots_created == 1
            assert stats.snapshots_reclaimed == 1
            assert stats.peak_retained == 1

        run(scenario())

    def test_pinned_flats_survive_epoch_bump(self):
        async def scenario():
            fragmentation = clientele_fragmentation()
            manager = SnapshotManager(fragmentation, SnapshotPolicy())
            snapshot = manager.pin("v1")
            fragment_id = fragmentation.fragment_ids()[0]
            old_flat = snapshot.flat(fragment_id)
            fragmentation.bump_epoch(fragment_id)
            # The live side rebuilds a fresh encoding; the pinned snapshot
            # keeps the superseded one alive untouched.
            assert fragmentation.flat(fragment_id) is not old_flat
            assert snapshot.flat(fragment_id) is old_flat

        run(scenario())

    def test_prewarm_rebuilds_invalidated_encodings(self):
        async def scenario():
            fragmentation = clientele_fragmentation()
            manager = SnapshotManager(fragmentation, SnapshotPolicy())
            for fragment_id in fragmentation.fragment_ids():
                fragmentation.flat(fragment_id)
            victim = fragmentation.fragment_ids()[0]
            fragmentation.bump_epoch(victim)
            assert not fragmentation.flat_cached(victim)
            await manager.prewarm()
            assert all(
                fragmentation.flat_cached(fragment_id)
                for fragment_id in fragmentation.fragment_ids()
            )

        run(scenario())

    def test_watermark_blocks_writer_until_reclaim(self):
        async def scenario():
            manager = SnapshotManager(
                clientele_fragmentation(), SnapshotPolicy(max_retained_versions=1)
            )
            snapshot = manager.pin("v1")
            writer = asyncio.create_task(manager.wait_for_capacity())
            await step(2)
            assert not writer.done()
            assert manager.stats.writer_stalls == 1
            manager.release(snapshot)
            await asyncio.wait_for(writer, 1.0)

        run(scenario())

    def test_writer_passes_when_under_watermark(self):
        async def scenario():
            manager = SnapshotManager(
                clientele_fragmentation(), SnapshotPolicy(max_retained_versions=2)
            )
            snapshot = manager.pin("v1")
            await asyncio.wait_for(manager.wait_for_capacity(), 1.0)
            assert manager.stats.writer_stalls == 0
            manager.release(snapshot)

        run(scenario())


@kernel_only
class TestHostSnapshotReads:
    def host(self, **overrides):
        host = ServiceHost(
            max_in_flight=4, cache_capacity=0, coalesce=False, **overrides
        )
        host.register("alpha", clientele_fragmentation())
        return host

    def test_write_never_waits_for_a_pinned_reader(self):
        # The PR 5 gate made every write drain its document's readers.
        # With MVCC snapshots a long-running reader (simulated by a held
        # pin) stalls nothing: the write completes immediately, rolls the
        # version, and the pin keeps the superseded encodings alive.
        host = self.host()

        async def scenario():
            session = host.session("alpha")
            pre = session.version
            pinned = session.snapshots.pin(pre)
            target = first_text_in(session.fragmentation)
            await asyncio.wait_for(
                host.apply_update("alpha", EditText(target.node_id, "rolled")),
                timeout=2.0,
            )
            assert session.version != pre
            assert pinned.version == pre  # history retained for the reader
            assert session.snapshots.retained == 1
            # New readers see the new version, not the pinned history.
            result = await host.submit("alpha", "client/name")
            assert result.stats.evaluated_version == session.version
            session.snapshots.release(pinned)
            assert session.snapshots.retained == 0

        run(scenario())

    def test_read_pinned_before_write_stays_at_its_version(self):
        host = self.host()

        async def scenario():
            session = host.session("alpha")
            pre = session.version
            read = asyncio.create_task(host.submit("alpha", "client/name"))
            for _ in range(200):
                if session.snapshots.stats.pins >= 1:
                    break
                await step()
            assert session.snapshots.stats.pins >= 1
            target = first_text_in(session.fragmentation)
            await host.apply_update("alpha", EditText(target.node_id, "mid-read"))
            result = await asyncio.wait_for(read, 5.0)
            # The overlapped read is exact at the version it pinned.
            assert result.stats.evaluated_version == pre
            assert session.version != pre
            assert result.answer_ids

        run(scenario())

    def test_watermark_backpressure_reaches_the_write_path(self):
        host = self.host(snapshots=SnapshotPolicy(max_retained_versions=1))

        async def scenario():
            session = host.session("alpha")
            pinned = session.snapshots.pin(session.version)
            target = first_text_in(session.fragmentation)
            write = asyncio.create_task(
                host.apply_update("alpha", EditText(target.node_id, "held"))
            )
            await step(4)
            assert not write.done()  # watermark reached: writer waits
            assert session.snapshots.stats.writer_stalls >= 1
            session.snapshots.release(pinned)
            await asyncio.wait_for(write, 2.0)

        run(scenario())

    def test_snapshot_counters_reach_the_host_reader_path(self):
        host = self.host()

        async def scenario():
            await host.submit("alpha", "client/name")
            await host.submit("alpha", "client/name")

        run(scenario())
        stats = host.session("alpha").snapshots.stats
        assert stats.pins == 2
        assert stats.snapshots_reclaimed >= 1
        assert host.session("alpha").snapshots.retained == 0

    def test_gated_mode_never_pins(self):
        host = self.host(snapshots=SnapshotPolicy(enabled=False))

        async def scenario():
            result = await host.submit("alpha", "client/name")
            assert result.answer_ids

        run(scenario())
        assert host.session("alpha").snapshots.stats.pins == 0
