"""Weighted-fair admission, overload shedding, and deadline shed boundaries.

The unit tests drive :class:`WeightedFairAdmission` directly with hand-built
waiter tasks so grant order is fully deterministic (one event-loop step per
release); the host tests check the end-to-end contracts — a shed burst on
one tenant leaves the neighbour's counters untouched, and a deadline that
dies at either admission boundary is a typed shed, never a latency sample.
"""

import asyncio

import pytest

from repro.obs.prometheus import render_prometheus
from repro.service.fairness import FairnessPolicy, WeightedFairAdmission
from repro.service.resilience import (
    DeadlineExceededError,
    ResiliencePolicy,
    ResilienceState,
)
from repro.service.server import OverloadShedError, ServiceHost
from repro.workloads.queries import (
    clientele_example_tree,
    clientele_paper_fragmentation,
)


def clientele_fragmentation():
    return clientele_paper_fragmentation(clientele_example_tree())


def run(coroutine):
    return asyncio.run(coroutine)


async def step(count=1):
    for _ in range(count):
        await asyncio.sleep(0)


async def drain(admission, documents, order):
    """One worker per (document, tag): acquire, record the grant, release.

    Releases happen one per loop turn, so each grant's dispatch sees the
    previous release applied — grant order is exactly the scheduler's.
    """

    async def worker(document, tag):
        await admission.acquire(document)
        order.append(tag)
        admission.release(document)

    return [
        asyncio.create_task(worker(document, tag)) for document, tag in documents
    ]


class TestFairnessPolicy:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            FairnessPolicy(default_weight=0)
        with pytest.raises(ValueError):
            FairnessPolicy(weights={"a": -1.0})
        with pytest.raises(ValueError):
            FairnessPolicy(slices={"a": 0})
        with pytest.raises(ValueError):
            FairnessPolicy(default_slice=0)
        with pytest.raises(ValueError):
            FairnessPolicy(max_queue_depth=-1)
        with pytest.raises(ValueError):
            FairnessPolicy(queue_time_budget_seconds=0)

    def test_lookup_defaults(self):
        policy = FairnessPolicy(weights={"a": 3.0}, slices={"a": 2})
        assert policy.weight("a") == 3.0
        assert policy.weight("b") == 1.0
        assert policy.slice_limit("a") == 2
        assert policy.slice_limit("b") is None


class TestWeightedFairAdmission:
    def test_fast_path_grants_without_queueing(self):
        async def scenario():
            admission = WeightedFairAdmission(2)
            await admission.acquire("a")
            await admission.acquire("b")
            assert admission.total_in_flight == 2
            assert admission.grants == 2 and admission.queued_grants == 0
            admission.release("a")
            admission.release("b")
            assert admission.total_in_flight == 0

        run(scenario())

    def test_disabled_policy_is_flat_fifo_across_documents(self):
        async def scenario():
            admission = WeightedFairAdmission(1, FairnessPolicy(enabled=False))
            await admission.acquire("z")  # hold the only slot
            order = []
            tasks = await drain(
                admission,
                [("b", "b0"), ("a", "a0"), ("c", "c0"), ("a", "a1")],
                order,
            )
            await step()
            admission.release("z")
            await asyncio.gather(*tasks)
            # Legacy flat-semaphore order: strictly submission order, the
            # baseline mode bench-fairness measures against.
            assert order == ["b0", "a0", "c0", "a1"]

        run(scenario())

    def test_equal_weights_round_robin_at_full_occupancy(self):
        # Regression: dispatch used to restart every round from the sorted
        # queue list, so with one slot freeing at a time the alphabetically
        # first backlogged document won every grant and starved the rest.
        async def scenario():
            admission = WeightedFairAdmission(1)
            await admission.acquire("a")
            order = []
            waiters = [("a", "a")] * 4 + [("b", "b")] * 4
            tasks = await drain(admission, waiters, order)
            await step()
            admission.release("a")
            await asyncio.gather(*tasks)
            assert order == ["a", "b"] * 4

        run(scenario())

    def test_weights_set_grant_shares_under_contention(self):
        async def scenario():
            policy = FairnessPolicy(weights={"a": 2.0, "b": 1.0})
            admission = WeightedFairAdmission(1, policy)
            await admission.acquire("a")
            order = []
            waiters = [("a", "a")] * 8 + [("b", "b")] * 4
            tasks = await drain(admission, waiters, order)
            await step()
            admission.release("a")
            await asyncio.gather(*tasks)
            # Deficit round robin at weight 2:1 — "a" spends a two-grant
            # quantum per round, "b" one.
            assert order == ["a", "a", "b"] * 4

        run(scenario())

    def test_sub_unit_weight_still_accrues_to_grants(self):
        async def scenario():
            policy = FairnessPolicy(weights={"slow": 0.5})
            admission = WeightedFairAdmission(1, policy)
            await admission.acquire("slow")
            order = []
            tasks = await drain(admission, [("slow", "s0"), ("slow", "s1")], order)
            await step()
            admission.release("slow")
            await asyncio.wait_for(asyncio.gather(*tasks), 1.0)
            assert order == ["s0", "s1"]

        run(scenario())

    def test_slice_caps_simultaneous_slots(self):
        async def scenario():
            policy = FairnessPolicy(slices={"capped": 1})
            admission = WeightedFairAdmission(4, policy)
            await admission.acquire("capped")
            # The second request of the capped document queues even though
            # three host slots are free...
            blocked = asyncio.create_task(admission.acquire("capped"))
            await step()
            assert not blocked.done()
            assert admission.in_flight("capped") == 1
            # ...while another document takes a free slot immediately.
            await asyncio.wait_for(admission.acquire("other"), 1.0)
            admission.release("capped")
            await asyncio.wait_for(blocked, 1.0)
            assert admission.in_flight("capped") == 1
            admission.release("capped")
            admission.release("other")

        run(scenario())

    def test_cancelled_waiter_leaves_no_residue(self):
        async def scenario():
            admission = WeightedFairAdmission(1)
            await admission.acquire("a")
            waiter = asyncio.create_task(admission.acquire("a"))
            await step()
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            assert admission.queue_depth("a") == 0
            admission.release("a")
            assert admission.total_in_flight == 0
            await asyncio.wait_for(admission.acquire("a"), 1.0)

        run(scenario())

    def test_grant_racing_cancellation_hands_slot_back(self):
        async def scenario():
            admission = WeightedFairAdmission(1)
            await admission.acquire("a")
            waiter = asyncio.create_task(admission.acquire("a"))
            await step()
            # release() grants the parked waiter synchronously; cancelling
            # before it resumes exercises the granted-but-dead handback.
            admission.release("a")
            assert admission.total_in_flight == 1
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            assert admission.total_in_flight == 0

        run(scenario())

    def test_overload_reasons(self):
        async def scenario():
            policy = FairnessPolicy(
                max_queue_depth=1,
                queue_time_budget_seconds=0.01,
                shed_min_queue_depth=1,
            )
            admission = WeightedFairAdmission(1, policy)
            assert admission.overload_reason("a") is None
            await admission.acquire("a")
            waiter = asyncio.create_task(admission.acquire("a"))
            await step()
            reason = admission.overload_reason("a")
            assert reason is not None and "queue depth" in reason
            # An idle neighbour is never shed by a's backlog.
            assert admission.overload_reason("b") is None
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            admission.release("a")

        run(scenario())

    def test_queue_time_budget_needs_real_backlog(self):
        async def scenario():
            policy = FairnessPolicy(
                queue_time_budget_seconds=0.01, shed_min_queue_depth=1
            )
            admission = WeightedFairAdmission(1, policy)
            admission._bind_loop()
            # Seed a rolling window far over budget: with no queued request
            # the stale history must NOT shed anybody...
            from collections import deque

            admission._recent_waits["a"] = deque([0.5] * 8)
            assert admission.overload_reason("a") is None
            # ...but with a live backlog it does.
            await admission.acquire("a")
            waiter = asyncio.create_task(admission.acquire("a"))
            await step()
            reason = admission.overload_reason("a")
            assert reason is not None and "queue-time p95" in reason
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            admission.release("a")

        run(scenario())


class TestOverloadShedding:
    def host(self, **overrides):
        host = ServiceHost(
            max_in_flight=1,
            cache_capacity=0,
            coalesce=False,
            **overrides,
        )
        host.register("alpha", clientele_fragmentation())
        host.register("beta", clientele_fragmentation())
        return host

    def test_shed_burst_on_one_document_leaves_neighbour_untouched(self):
        # Satellite: per-document shed accounting.  A burst over alpha's
        # queue-depth budget sheds alpha's excess with a typed error and
        # counters on alpha only; beta's submissions all complete and its
        # totals show zero sheds.
        host = self.host(fairness=FairnessPolicy(max_queue_depth=2))

        async def scenario():
            admission = host._bound_admission()
            await admission.acquire("alpha")  # hold the only slot
            queued = [
                asyncio.create_task(host.submit("alpha", "client/name"))
                for _ in range(2)
            ]
            await step(4)  # both now parked in alpha's admission queue
            shed = []
            for _ in range(5):
                with pytest.raises(OverloadShedError) as excinfo:
                    await host.submit("alpha", "client/name")
                shed.append(excinfo.value)
            assert all("alpha" in str(error) for error in shed)
            # beta queues behind the held slot but is never shed.
            beta = asyncio.create_task(host.submit("beta", "client/name"))
            await step(4)
            admission.release("alpha")
            results = await asyncio.wait_for(
                asyncio.gather(beta, *queued), 10.0
            )
            assert all(result.answer_ids for result in results)

        run(scenario())
        alpha = host.metrics.document("alpha")
        beta = host.metrics.document("beta")
        assert alpha.shed == 5
        assert alpha.shed_by_stage == {"overload": 5}
        assert beta.shed == 0 and beta.shed_by_stage == {}
        assert beta.requests == 1
        text = render_prometheus(host)
        assert 'repro_document_shed_total{document="alpha"} 5' in text
        assert 'repro_document_shed_total{document="beta"} 0' in text
        assert (
            'repro_document_shed_by_stage_total{document="alpha",stage="overload"} 5'
            in text
        )
        assert 'shed_by_stage_total{document="beta"' not in text

    def test_default_policy_never_sheds(self):
        host = self.host()

        async def scenario():
            results = await asyncio.gather(
                *[host.submit("alpha", "client/name") for _ in range(6)]
            )
            assert all(result.answer_ids for result in results)

        run(scenario())
        assert host.metrics.total_shed == 0


class FlipDeadline:
    """Deadline stub: alive at the submit-time check, dead right after the
    admission grant — the exact boundary the satellite test pins."""

    def __init__(self):
        self.checks = 0

    def remaining(self):
        return 1.0

    def expired(self):
        self.checks += 1
        return self.checks > 1


class TestDeadlineShedBoundaries:
    def host(self):
        host = ServiceHost(max_in_flight=1, cache_capacity=0, coalesce=False)
        host.register("alpha", clientele_fragmentation())
        return host

    def test_expired_at_submit_sheds_before_gate_and_admission(self):
        host = self.host()

        async def scenario():
            # 1ns budget: dead by the time the submit-time check runs, so
            # the request must be shed before touching the gate or queue.
            with pytest.raises(DeadlineExceededError) as excinfo:
                await host.submit("alpha", "client/name", deadline=1e-9)
            assert excinfo.value.stage == "queued"
            admission = host._bound_admission()
            assert admission.grants == 0 and admission.total_in_flight == 0
            gate = host.session("alpha").gate
            assert gate.readers_active == 0 and gate.readers_waiting == 0

        run(scenario())
        assert host._pending_evaluations == 0
        alpha = host.metrics.document("alpha")
        assert alpha.shed == 1
        assert alpha.shed_by_stage == {"submit": 1}
        assert alpha.requests == 0  # a shed is never a latency sample

    def test_expiry_between_admission_grant_and_evaluation(self):
        host = self.host()

        async def scenario():
            session = host.session("alpha")
            _, plan = session.key_and_plan("client/name")
            resilience = ResilienceState(ResiliencePolicy()).for_request(
                FlipDeadline()
            )
            with pytest.raises(DeadlineExceededError) as excinfo:
                await host._admit_and_evaluate(
                    session, plan, "pax2", False, resilience
                )
            assert excinfo.value.stage == "queued"
            assert "between admission grant and evaluation" in str(excinfo.value)
            # The granted slot was handed back, nothing evaluated.
            admission = host._bound_admission()
            assert admission.total_in_flight == 0

        run(scenario())
        assert host._pending_evaluations == 0
        alpha = host.metrics.document("alpha")
        assert alpha.shed == 1
        assert alpha.shed_by_stage == {"admission": 1}
        assert host.metrics.total_evaluated == 0
