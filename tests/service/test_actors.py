"""Unit tests for the async site actors and the transport latency model."""

import asyncio

import pytest

from repro.distributed.async_transport import AsyncTransport, LatencyModel
from repro.distributed.network import Network
from repro.distributed.placement import one_site_per_fragment
from repro.service.actors import ActorPool, SiteActor
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation


class TestSiteActor:
    def test_parallelism_validated(self):
        with pytest.raises(ValueError):
            SiteActor("S0", parallelism=0)

    def test_parallelism_bounds_concurrency(self):
        actor = SiteActor("S0", parallelism=2)

        async def request():
            async with actor.slot("stage"):
                await asyncio.sleep(0.002)

        async def main():
            await asyncio.gather(*(request() for _ in range(10)))

        asyncio.run(main())
        assert actor.requests == 10
        assert 1 <= actor.peak_in_flight <= 2
        assert actor.busy_seconds > 0.0

    def test_unbounded_enough_parallelism_overlaps(self):
        actor = SiteActor("S0", parallelism=10)

        async def main():
            async def request():
                async with actor.slot():
                    await asyncio.sleep(0.002)

            await asyncio.gather(*(request() for _ in range(10)))

        asyncio.run(main())
        assert actor.peak_in_flight > 1

    def test_survives_event_loop_changes(self):
        # The blocking facade runs one asyncio.run() per call; the semaphore
        # must rebind instead of erroring on the second loop.
        actor = SiteActor("S0", parallelism=1)

        async def main():
            async def request():
                async with actor.slot():
                    await asyncio.sleep(0)

            await asyncio.gather(request(), request())

        asyncio.run(main())
        asyncio.run(main())
        assert actor.requests == 4

    def test_counters_reset(self):
        actor = SiteActor("S0")

        async def request():
            async with actor.slot():
                pass

        asyncio.run(request())
        actor.reset_counters()
        assert actor.requests == 0 and actor.busy_seconds == 0.0


class TestActorPool:
    def test_one_actor_per_site(self):
        pool = ActorPool(["S1", "S0", "S1"], parallelism=3)
        assert pool.site_ids() == ["S0", "S1"]
        assert pool["S0"].parallelism == 3

    def test_unknown_site_grows_pool(self):
        pool = ActorPool(["S0"])
        actor = pool["S7"]
        assert actor.site_id == "S7"
        assert "S7" in pool.site_ids()

    def test_summary_lists_sites(self):
        pool = ActorPool(["S0", "S1"])
        assert "S0" in pool.summary() and "S1" in pool.summary()


class TestAsyncTransport:
    @pytest.fixture
    def network(self):
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        return Network(fragmentation, one_site_per_fragment(fragmentation))

    def test_records_on_underlying_network(self, network):
        transport = AsyncTransport(network)

        async def main():
            await transport.send("S0", "S1", "exec_request", units=5)
            await transport.send("S1", "S1", "exec_request", units=9)  # local

        asyncio.run(main())
        assert network.communication_units() == 5
        assert network.local_units() == 9
        assert transport.sent_messages == 1

    def test_latency_charged_per_message_and_unit(self, network):
        latency = LatencyModel(base_seconds=0.001, per_unit_seconds=0.0001)
        assert latency.delay(units=10) == pytest.approx(0.002)
        transport = AsyncTransport(network, latency)

        async def main():
            await transport.send("S0", "S1", "answers", units=10)

        asyncio.run(main())
        assert transport.simulated_seconds == pytest.approx(0.002)

    def test_local_messages_are_free_and_instant(self, network):
        transport = AsyncTransport(network, LatencyModel(base_seconds=0.5))

        async def main():
            await transport.send("S0", "S0", "answers", units=100)

        asyncio.run(main())
        assert transport.simulated_seconds == 0.0

    def test_free_model_flag(self):
        assert LatencyModel().is_free
        assert not LatencyModel(base_seconds=0.1).is_free
