"""The service's fused-scan batching window.

Concurrent in-flight queries that reach the same fragment round must share
one fused scan — with duplicate plans deduplicated to a single kernel slot —
while every request still receives exactly the answers and accounting its
un-batched evaluation would produce, including waves that mix algorithms
(PaX2 through the batcher, the rest through the sync fallback).
"""

import asyncio

import pytest

from repro.core.engine import DistributedQueryEngine
from repro.core.kernel.dispatch import KERNEL, REFERENCE
from repro.service.actors import FragmentWaveBatcher
from repro.service.server import ServiceConfig, ServiceEngine
from repro.workloads.queries import (
    PAPER_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)
from repro.workloads.scenarios import build_ft2


@pytest.fixture(scope="module")
def ft2():
    return build_ft2(total_bytes=25_000, seed=5)


@pytest.fixture(scope="module")
def expected(ft2):
    engine = DistributedQueryEngine(ft2.fragmentation, placement=ft2.placement)
    return {query: engine.run(query).answer_ids for query in PAPER_QUERIES.values()}


def make_service(ft2, **overrides):
    overrides.setdefault("cache_capacity", 0)
    overrides.setdefault("coalesce", False)
    overrides.setdefault("max_in_flight", 32)
    return ServiceEngine(ft2.fragmentation, placement=ft2.placement, **overrides)


class TestBatchedAnswers:
    def test_batched_wave_matches_unbatched_answers(self, ft2, expected):
        service = make_service(ft2, batch_window=0.002)
        queries = [query for query in PAPER_QUERIES.values() for _ in range(6)]
        results = service.serve_batch(queries, concurrency=24)
        for query, result in zip(queries, results):
            assert result.stats.answer_ids == expected[query]
        stats = service.batcher.stats
        assert stats.fused_scans > 0
        assert stats.batched_queries > stats.fused_scans  # real coalescing
        assert stats.queries_per_scan > 1.0
        assert stats.dedup_hits > 0  # duplicate plans shared kernel slots

    def test_accounting_is_identical_to_unbatched(self, ft2):
        queries = list(PAPER_QUERIES.values()) * 3

        def fingerprints(service):
            results = service.serve_batch(queries, concurrency=len(queries))
            return [
                (
                    r.stats.answer_ids,
                    r.stats.communication_units,
                    r.stats.message_count,
                    r.stats.total_operations,
                    r.stats.visits_by_site(),
                )
                for r in results
            ]

        batched = fingerprints(make_service(ft2, batch_window=0.002))
        unbatched = fingerprints(make_service(ft2, batching=False))
        assert batched == unbatched

    def test_reference_engine_waves_still_coalesce(self, ft2, expected):
        service = make_service(ft2, engine=REFERENCE, batch_window=0.002)
        queries = [query for query in PAPER_QUERIES.values() for _ in range(3)]
        results = service.serve_batch(queries, concurrency=12)
        for query, result in zip(queries, results):
            assert result.stats.answer_ids == expected[query]
        assert service.batcher.stats.queries_per_scan > 1.0

    def test_mixed_algorithm_wave(self, ft2, expected):
        """PaX2 rides the batcher while PaX3/naive take the sync fallback."""
        service = make_service(ft2, batch_window=0.002)
        queries = list(PAPER_QUERIES.values())

        async def mixed():
            jobs = []
            for index in range(12):
                query = queries[index % len(queries)]
                algorithm = ("pax2", "pax3", "naive")[index % 3]
                jobs.append(service.submit(query, algorithm=algorithm))
            return await asyncio.gather(*jobs)

        results = asyncio.run(mixed())
        for index, result in enumerate(results):
            query = queries[index % len(queries)]
            assert result.stats.answer_ids == expected[query], (index, query)
        # Only the PaX2 third of the wave went through fused scans.
        assert service.batcher.stats.batched_queries > 0


class TestConfiguration:
    def test_batching_disabled_leaves_no_batcher(self, ft2, expected):
        service = make_service(ft2, batching=False)
        assert service.batcher is None
        result = service.execute(PAPER_QUERIES["Q1"])
        assert result.stats.answer_ids == expected[PAPER_QUERIES["Q1"]]
        assert "batching" not in service.summary()

    def test_summary_surfaces_batch_efficiency(self, ft2):
        service = make_service(ft2, batch_window=0.002)
        service.serve_batch(list(PAPER_QUERIES.values()) * 2, concurrency=8)
        summary = service.summary()
        assert "fused scans" in summary
        assert "dedup" in summary
        payload = service.batcher.stats.to_dict()
        assert payload["fused_scans"] > 0
        assert "queries_per_scan" in payload
        assert "window_seconds" in payload

    def test_negative_window_rejected(self, ft2):
        with pytest.raises(ValueError):
            ServiceConfig(batch_window=-0.1)
        with pytest.raises(ValueError):
            FragmentWaveBatcher(ft2.fragmentation, window=-1.0)

    def test_batcher_survives_fresh_event_loops(self, ft2, expected):
        # The blocking facade runs each call in its own asyncio.run loop;
        # futures parked in a dead loop must not leak into the next call.
        service = make_service(ft2, batch_window=0.001)
        for _ in range(3):
            result = service.execute(PAPER_QUERIES["Q2"])
            assert result.stats.answer_ids == expected[PAPER_QUERIES["Q2"]]


class TestBatcherUnit:
    def test_duplicate_requests_share_one_output(self, ft2):
        fragmentation = ft2.fragmentation
        batcher = FragmentWaveBatcher(fragmentation, engine=KERNEL)
        from repro.core.common import ensure_plan
        from repro.core.selection import concrete_root_init_vector

        plan_a = ensure_plan(PAPER_QUERIES["Q1"])
        plan_b = ensure_plan(PAPER_QUERIES["Q1"])  # same form, fresh object
        root_id = fragmentation.root_fragment_id

        async def run():
            return await asyncio.gather(
                batcher.combined(root_id, plan_a, concrete_root_init_vector(plan_a), True),
                batcher.combined(root_id, plan_b, concrete_root_init_vector(plan_b), True),
            )

        out_a, out_b = asyncio.run(run())
        assert out_a is out_b  # one kernel slot, one shared output
        assert batcher.stats.fused_scans == 1
        assert batcher.stats.batched_queries == 2
        assert batcher.stats.dedup_hits == 1

    def test_kernel_failure_propagates_to_waiters(self, ft2):
        batcher = FragmentWaveBatcher(ft2.fragmentation, engine=KERNEL)
        from repro.core.common import ensure_plan

        plan = ensure_plan(PAPER_QUERIES["Q1"])

        async def run():
            # A fragment id the fragmentation does not know -> the scan
            # raises, and the waiter must see that exception, not hang.
            return await batcher.combined("no-such-fragment", plan, (True,), False)

        with pytest.raises(Exception):
            asyncio.run(run())


def test_clientele_service_batching_end_to_end():
    fragmentation = clientele_paper_fragmentation(clientele_example_tree())
    engine = DistributedQueryEngine(fragmentation)
    query = 'client[country/text() = "us"]/name'
    expected = engine.run(query).answer_ids
    service = engine.as_service(cache_capacity=0, coalesce=False, batch_window=0.001)
    results = service.serve_batch([query] * 8, concurrency=8)
    for result in results:
        assert result.stats.answer_ids == expected
    assert service.batcher.stats.dedup_hits > 0
