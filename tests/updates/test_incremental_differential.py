"""Differential suite: incremental maintenance is exact.

After random mutation sequences (insert/delete/edit on random fragments),
the incrementally maintained fragmentation must return answers and traffic
accounting identical to a from-scratch re-fragmentation of the mutated
tree — for every algorithm x engine x annotation mode — and the sync
engines must see every mutation immediately, with no ``refresh()`` call
(the columnar cache is invalidated eagerly, per touched fragment).
"""

import random

import pytest

from repro.bench.update_bench import rebuild_from_scratch, verify_against_rebuild
from repro.core.engine import DistributedQueryEngine
from repro.core.kernel.dispatch import KERNEL, REFERENCE
from repro.core.parbox import run_parbox
from repro.updates import EditText, MixedWorkload, apply_mutation
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    PAPER_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)
from repro.workloads.scenarios import build_ft2
from repro.xpath.centralized import evaluate_centralized

from tests.conftest import make_random_fragmentation, make_random_tree

RANDOM_TREE_QUERIES = ["//a", "a/b", "//b[c]", '//a[b/text() = "alpha"]/b', "//b//c"]


class TestRandomSequencesMatchRebuild:
    """The acceptance criterion, on three workload families."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_trees(self, seed):
        tree = make_random_tree(seed, max_nodes=70)
        fragmentation = make_random_fragmentation(tree, seed)
        workload = MixedWorkload(
            fragmentation, RANDOM_TREE_QUERIES, write_ratio=1.0, seed=seed
        )
        for _ in range(random.Random(seed).randint(5, 20)):
            apply_mutation(fragmentation, workload.next_mutation())
        fragmentation.validate()
        checked = verify_against_rebuild(fragmentation, None, RANDOM_TREE_QUERIES)
        assert checked == 3 * 2 * 2 * len(RANDOM_TREE_QUERIES)

    def test_clientele(self):
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        queries = [q for q in CLIENTELE_QUERIES.values() if not q.startswith(".")]
        workload = MixedWorkload(fragmentation, queries, write_ratio=1.0, seed=13)
        for _ in range(25):
            apply_mutation(fragmentation, workload.next_mutation())
        fragmentation.validate()
        verify_against_rebuild(fragmentation, None, queries)

    def test_xmark_ft2(self):
        scenario = build_ft2(total_bytes=25_000, seed=5)
        workload = MixedWorkload(
            scenario.fragmentation,
            list(PAPER_QUERIES.values()),
            write_ratio=1.0,
            seed=29,
        )
        for _ in range(40):
            apply_mutation(scenario.fragmentation, workload.next_mutation())
        scenario.fragmentation.validate()
        verify_against_rebuild(
            scenario.fragmentation, scenario.placement, list(PAPER_QUERIES.values())
        )

    def test_parbox_boolean_queries_match_rebuild(self):
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        workload = MixedWorkload(
            fragmentation, ["client/name"], write_ratio=1.0, seed=7
        )
        for _ in range(20):
            apply_mutation(fragmentation, workload.next_mutation())
        rebuilt = rebuild_from_scratch(fragmentation)
        boolean_queries = [
            CLIENTELE_QUERIES["boolean_goog"],
            '.[//stock/code/text() = "yhoo"]',
            '.[not(//nonexistent)]',
        ]
        for engine in (KERNEL, REFERENCE):
            for query in boolean_queries:
                maintained = run_parbox(fragmentation, query, engine=engine)
                scratch = run_parbox(rebuilt, query, engine=engine)
                assert maintained.answer_ids == scratch.answer_ids, (engine, query)
                assert (
                    maintained.communication_units == scratch.communication_units
                ), (engine, query)


class TestEagerInvalidation:
    """Satellite: mutations reach the sync engines with no refresh call."""

    def test_edit_changes_kernel_answers_immediately(self):
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        query = 'client[country/text() = "us"]/name'
        engines = {
            engine: DistributedQueryEngine(fragmentation, engine=engine)
            for engine in (KERNEL, REFERENCE)
        }
        before = engines[KERNEL].execute(query).answer_ids
        assert before == engines[REFERENCE].execute(query).answer_ids
        assert before

        # Flip every US client to UK through the mutation API — NO refresh.
        for node in list(fragmentation.tree.iter_elements()):
            if node.tag == "country" and node.text().strip().lower() == "us":
                text_child = next(c for c in node.children if c.is_text)
                apply_mutation(fragmentation, EditText(text_child.node_id, "uk"))

        for engine in (KERNEL, REFERENCE):
            assert engines[engine].execute(query).answer_ids == []

    @pytest.mark.parametrize("seed", range(4))
    def test_mutated_kernel_agrees_with_centralized(self, seed):
        tree = make_random_tree(200 + seed, max_nodes=60)
        fragmentation = make_random_fragmentation(tree, seed)
        workload = MixedWorkload(
            fragmentation, RANDOM_TREE_QUERIES, write_ratio=1.0, seed=seed
        )
        engine = DistributedQueryEngine(fragmentation, engine=KERNEL)
        for _ in range(12):
            apply_mutation(fragmentation, workload.next_mutation())
            for query in RANDOM_TREE_QUERIES:
                distributed = engine.execute(query).answer_ids
                centralized = sorted(evaluate_centralized(tree, query).answer_ids)
                assert distributed == centralized, (seed, query)

    def test_no_full_walk_during_incremental_queries(self):
        # The differential loop above must stay epoch-driven: mutations plus
        # kernel queries perform zero full-document fingerprint walks once
        # the content base exists.
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        engine = DistributedQueryEngine(fragmentation, engine=KERNEL)
        engine.execute("client/name")
        fragmentation.version_token()  # settle the content base
        walks_before = fragmentation.full_walks
        workload = MixedWorkload(fragmentation, ["client/name"], write_ratio=1.0, seed=3)
        for _ in range(15):
            apply_mutation(fragmentation, workload.next_mutation())
            engine.execute("client/name")
            fragmentation.version_token()
        assert fragmentation.full_walks == walks_before
