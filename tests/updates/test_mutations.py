"""Unit tests for the typed mutation API and its fragment attribution."""

import pytest

from repro.updates import (
    DeleteSubtree,
    EditText,
    InsertSubtree,
    UpdateError,
    apply_mutation,
    apply_mutations,
    owning_fragment_id,
)
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation
from repro.xmltree.builder import element, text
from repro.xmltree.errors import XMLTreeError


@pytest.fixture()
def fragmentation():
    return clientele_paper_fragmentation(clientele_example_tree())


def first_text_node(fragmentation, fragment_id):
    return next(
        node for node in fragmentation[fragment_id].iter_span() if node.is_text
    )


class TestOwningFragment:
    def test_fragment_root_owns_itself(self, fragmentation):
        for fragment_id in fragmentation.fragment_ids():
            root = fragmentation[fragment_id].root
            assert owning_fragment_id(fragmentation, root) == fragment_id

    def test_span_nodes_resolve_to_their_fragment(self, fragmentation):
        for fragment_id in fragmentation.fragment_ids():
            for node in fragmentation[fragment_id].iter_span():
                assert owning_fragment_id(fragmentation, node) == fragment_id


class TestEditText:
    def test_edit_bumps_only_the_touched_fragment(self, fragmentation):
        target_fragment = fragmentation.fragment_ids()[1]
        target = first_text_node(fragmentation, target_fragment)
        epochs_before = {
            fid: fragmentation.fragment_epoch(fid) for fid in fragmentation.fragment_ids()
        }
        flats_before = {
            fid: fragmentation.flat(fid) for fid in fragmentation.fragment_ids()
        }

        result = apply_mutation(fragmentation, EditText(target.node_id, "edited"))

        assert result.kind == "edit"
        assert result.fragment_id == target_fragment
        assert target.value == "edited"
        for fid in fragmentation.fragment_ids():
            expected = epochs_before[fid] + (1 if fid == target_fragment else 0)
            assert fragmentation.fragment_epoch(fid) == expected
            if fid == target_fragment:
                # only the touched fragment's columns were rebuilt
                assert fragmentation.flat(fid) is not flats_before[fid]
            else:
                assert fragmentation.flat(fid) is flats_before[fid]

    def test_edit_is_visible_without_any_refresh(self, fragmentation):
        # the flat columns precompute text()/val(); an edit must show up
        target_fragment = fragmentation.fragment_ids()[0]
        target = first_text_node(fragmentation, target_fragment)
        apply_mutation(fragmentation, EditText(target.node_id, "refreshed-value"))
        flat = fragmentation.flat(target_fragment)
        index = flat.node_ids.index(target.parent.node_id)
        assert flat.text_norm[index] == "refreshed-value"

    def test_edit_rejects_element_targets(self, fragmentation):
        with pytest.raises(UpdateError, match="not a text node"):
            apply_mutation(
                fragmentation, EditText(fragmentation.tree.root.node_id, "x")
            )

    def test_edit_rejects_unknown_ids(self, fragmentation):
        with pytest.raises(XMLTreeError):
            apply_mutation(fragmentation, EditText(10_000, "x"))


class TestInsertSubtree:
    def test_insert_assigns_fresh_ids_and_indexes_them(self, fragmentation):
        tree = fragmentation.tree
        size_before = tree.size()
        parent = fragmentation.root_fragment.root
        subtree = element("client", element("name", "Noah"), element("country", "US"))

        result = apply_mutation(
            fragmentation, InsertSubtree(parent.node_id, subtree)
        )

        assert result.kind == "insert"
        assert result.nodes_added == 5  # client, name + text, country + text
        assert tree.size() == size_before + result.nodes_added
        for node in subtree.iter_subtree():
            assert node.node_id >= size_before  # fresh, beyond pre-order range
            assert tree.node(node.node_id) is node

    def test_insert_at_position(self, fragmentation):
        parent = fragmentation.root_fragment.root
        labels_before = [child.label for child in parent.children]
        apply_mutation(
            fragmentation, InsertSubtree(parent.node_id, element("client"), position=1)
        )
        labels_after = [child.label for child in parent.children]
        assert labels_after == labels_before[:1] + ["client"] + labels_before[1:]

    def test_insert_touches_the_parents_fragment(self, fragmentation):
        # Inserting between a fragment root's children is attributed to the
        # fragment owning the parent, even with virtual children around.
        child_fragment = next(
            fid
            for fid in fragmentation.fragment_ids()
            if fragmentation[fid].parent_id is not None
        )
        parent_of_root = fragmentation[child_fragment].root.parent
        owner = owning_fragment_id(fragmentation, parent_of_root)
        result = apply_mutation(
            fragmentation, InsertSubtree(parent_of_root.node_id, element("note"))
        )
        assert result.fragment_id == owner

    def test_insert_rejects_attached_subtrees(self, fragmentation):
        attached = fragmentation.tree.root.children[0]
        with pytest.raises(UpdateError, match="already attached"):
            apply_mutation(
                fragmentation,
                InsertSubtree(fragmentation.tree.root.node_id, attached),
            )

    def test_insert_rejects_indexed_subtrees(self, fragmentation):
        subtree = element("client")
        subtree.node_id = 3  # pretend it was indexed somewhere
        with pytest.raises(UpdateError, match="fresh"):
            apply_mutation(
                fragmentation,
                InsertSubtree(fragmentation.tree.root.node_id, subtree),
            )

    def test_insert_rejects_bad_positions(self, fragmentation):
        root = fragmentation.tree.root
        with pytest.raises(UpdateError, match="out of range"):
            apply_mutation(
                fragmentation,
                InsertSubtree(root.node_id, element("client"), position=99),
            )

    def test_insert_rejects_text_parents(self, fragmentation):
        target = first_text_node(fragmentation, fragmentation.fragment_ids()[0])
        with pytest.raises(UpdateError, match="not an element"):
            apply_mutation(
                fragmentation, InsertSubtree(target.node_id, element("x"))
            )


class TestDeleteSubtree:
    def test_delete_retires_the_ids(self, fragmentation):
        tree = fragmentation.tree
        fragment_id = fragmentation.fragment_ids()[0]
        # a leaf-ish span subtree without virtual children under it
        victim = next(
            node
            for node in fragmentation[fragment_id].iter_span_elements()
            if node is not fragmentation[fragment_id].root
            and all(
                inner.node_id not in fragmentation.fragment_root_ids
                for inner in node.iter_subtree()
            )
        )
        removed_ids = [node.node_id for node in victim.iter_subtree()]
        result = apply_mutation(fragmentation, DeleteSubtree(victim.node_id))
        assert result.kind == "delete"
        assert result.nodes_removed == len(removed_ids)
        for node_id in removed_ids:
            assert node_id not in tree
        fragmentation.validate()

    def test_delete_rejects_the_document_root(self, fragmentation):
        with pytest.raises(UpdateError, match="document root"):
            apply_mutation(
                fragmentation, DeleteSubtree(fragmentation.tree.root.node_id)
            )

    def test_delete_rejects_fragment_roots(self, fragmentation):
        child_fragment = next(
            fid
            for fid in fragmentation.fragment_ids()
            if fragmentation[fid].parent_id is not None
        )
        root_id = fragmentation[child_fragment].root.node_id
        with pytest.raises(UpdateError, match="re-fragmentation"):
            apply_mutation(fragmentation, DeleteSubtree(root_id))

    def test_delete_rejects_subtrees_swallowing_sub_fragments(self, fragmentation):
        # Any ancestor of a non-root fragment's root is out of bounds.
        child_fragment = next(
            fid
            for fid in fragmentation.fragment_ids()
            if fragmentation[fid].parent_id is not None
        )
        ancestor = fragmentation[child_fragment].root.parent
        assert ancestor is not fragmentation.tree.root
        with pytest.raises(UpdateError, match="contains the root"):
            apply_mutation(fragmentation, DeleteSubtree(ancestor.node_id))


class TestBatchesAndCounts:
    def test_apply_mutations_runs_in_order(self, fragmentation):
        parent = fragmentation.root_fragment.root
        results = apply_mutations(
            fragmentation,
            [
                InsertSubtree(parent.node_id, element("client", element("name", "Tmp"))),
                EditText(
                    first_text_node(fragmentation, fragmentation.fragment_ids()[0]).node_id,
                    "twice",
                ),
            ],
        )
        assert [result.kind for result in results] == ["insert", "edit"]

    def test_span_counts_track_mutations(self, fragmentation):
        fragment_id = fragmentation.root_fragment_id
        fragment = fragmentation[fragment_id]
        nodes_before = fragment.node_count()
        elements_before = fragment.element_count()
        apply_mutation(
            fragmentation,
            InsertSubtree(fragment.root.node_id, element("client", "payload")),
        )
        assert fragment.node_count() == nodes_before + 2
        assert fragment.element_count() == elements_before + 1

    def test_structure_survives_random_hammering(self, fragmentation):
        from repro.updates import MixedWorkload

        workload = MixedWorkload(fragmentation, ["client/name"], write_ratio=1.0, seed=5)
        for _ in range(60):
            apply_mutation(fragmentation, workload.next_mutation())
        fragmentation.validate()
        assert fragmentation.total_nodes() == fragmentation.tree.size()
