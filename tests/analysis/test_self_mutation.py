"""Mutation self-test: re-introduce each fixed bug, prove its rule catches it.

Each case takes a real source file from ``src/repro/service/``, applies a
textual mutation that recreates a bug class this repo actually fixed
(permit leaks across awaits, skipped counter restores, silent sheds, stage
typos, dead loop-rebinding, blocking sleeps), and asserts the matching rule
fires on the mutant while staying quiet on the pristine file.  If a rule
rots to the point of missing its own motivating bug, this fails before the
CI gate goes blind.
"""

import pathlib

import pytest

from repro.analysis import analyze_source, run

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"

UNGUARDED_READ_LOCK = """\
        await self.acquire_read(timeout)
        yield
        self._release_read()
"""

GUARDED_READ_LOCK = """\
        await self.acquire_read(timeout)
        try:
            yield
        finally:
            # Synchronous: a cancellation arriving here cannot interrupt it.
            self._release_read()
"""

MUTATIONS = [
    pytest.param(
        "repro/service/actors.py",
        GUARDED_READ_LOCK,
        UNGUARDED_READ_LOCK,
        "permit-leak",
        id="permit-leak:read_locked-loses-its-finally",
    ),
    pytest.param(
        "repro/service/server.py",
        "admission.release(session.name)",
        "pass",
        "permit-leak",
        id="permit-leak:fairness-admission-handback-deleted",
    ),
    pytest.param(
        "repro/service/evaluator.py",
        "site.restore_counters(snapshot)",
        "pass",
        "staging-pairing",
        id="staging-pairing:handler-skips-the-restore",
    ),
    pytest.param(
        "repro/service/server.py",
        'self._record_shed(session.name, "overload", resilience)',
        "pass",
        "shed-discipline",
        id="shed-discipline:overload-shed-goes-unrecorded",
    ),
    pytest.param(
        "repro/service/server.py",
        'stage="cache"',
        'stage="cash"',
        "span-discipline",
        id="span-discipline:stage-typo",
    ),
    pytest.param(
        "repro/service/actors.py",
        "loop_id = id(asyncio.get_running_loop())",
        "loop_id = 0",
        "loop-affinity",
        id="loop-affinity:rebinding-helper-stops-consulting-the-loop",
    ),
    pytest.param(
        "repro/service/evaluator.py",
        "await asyncio.sleep(delay)",
        "time.sleep(delay)",
        "blocking-in-async",
        id="blocking-in-async:wire-replay-blocks-the-loop",
    ),
]


@pytest.mark.parametrize("relpath, original, replacement, rule_id", MUTATIONS)
def test_mutation_is_caught(relpath, original, replacement, rule_id):
    source = (SRC / relpath).read_text(encoding="utf-8")
    assert original in source, f"mutation target vanished from {relpath}"

    pristine = [f for f in analyze_source(source, relpath) if f.counts_against_gate]
    assert not pristine, f"pristine {relpath} is not clean: {pristine}"

    mutant = source.replace(original, replacement, 1)
    assert mutant != source
    fired = [
        f
        for f in analyze_source(mutant, relpath)
        if f.rule == rule_id and f.counts_against_gate
    ]
    assert fired, f"{rule_id} missed its own motivating bug in {relpath}"


def test_real_tree_is_clean():
    """The CI gate's contract: `repro lint src` exits 0 on this tree."""
    report = run([str(SRC)])
    offending = [f for f in report.findings if f.counts_against_gate]
    assert report.exit_code == 0, "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in offending
    )
    assert report.files_analyzed > 100
