"""The analyzer machinery: suppression, ordering, reports, exit codes, baseline."""

import json

import pytest

from repro.analysis import (
    PARSE_ERROR_RULE,
    analyze_source,
    load_baseline,
    render_json,
    run,
    save_baseline,
)
from repro.analysis.report import JSON_VERSION, Report
from repro.cli import main as cli_main

LEAKY = """\
async def leaky(gate, peer):
    await gate.acquire("doc")
    await peer.ping()
    gate.release("doc")
"""


# -- suppression ------------------------------------------------------------


def test_suppression_on_the_flagged_line():
    source = LEAKY.replace(
        'await gate.acquire("doc")',
        'await gate.acquire("doc")  # repro: allow[permit-leak] test holds the permit',
    )
    findings = analyze_source(source, "x.py")
    assert [f.rule for f in findings] == ["permit-leak"]
    assert findings[0].suppressed and not findings[0].counts_against_gate


def test_suppression_on_preceding_comment_line():
    source = LEAKY.replace(
        '    await gate.acquire("doc")',
        '    # repro: allow[permit-leak] exercised under cancellation below\n'
        '    await gate.acquire("doc")',
    )
    findings = analyze_source(source, "x.py")
    assert findings and all(f.suppressed for f in findings)


def test_preceding_code_line_comment_does_not_leak_downward():
    # The allow-comment must be standalone to cover the next line.
    source = LEAKY.replace(
        "async def leaky(gate, peer):",
        "async def leaky(gate, peer):  # repro: allow[permit-leak]",
    )
    findings = analyze_source(source, "x.py")
    assert findings and not findings[0].suppressed


def test_one_comment_suppresses_several_rules():
    source = (
        "import time\n"
        "async def f(gate, peer):\n"
        "    await gate.acquire('d')\n"
        "    # repro: allow[permit-leak, blocking-in-async] simulated stall\n"
        "    time.sleep(0.1)\n"
        "    await peer.ping()\n"
        "    gate.release('d')\n"
    )
    findings = analyze_source(source, "x.py")
    blocking = [f for f in findings if f.rule == "blocking-in-async"]
    assert blocking and blocking[0].suppressed
    # permit-leak anchors at the acquire line, which the comment does not cover
    leak = [f for f in findings if f.rule == "permit-leak"]
    assert leak and not leak[0].suppressed


def test_suppressing_the_wrong_rule_does_nothing():
    source = LEAKY.replace(
        'await gate.acquire("doc")',
        'await gate.acquire("doc")  # repro: allow[span-discipline]',
    )
    findings = analyze_source(source, "x.py")
    assert findings and not findings[0].suppressed


# -- ordering and the JSON schema -------------------------------------------


def test_findings_sort_by_location_then_rule():
    source = (
        "import time\n"
        "async def f(gate, peer):\n"
        "    await gate.acquire('d')\n"
        "    time.sleep(0.1)\n"
        "    await peer.ping()\n"
        "    gate.release('d')\n"
    )
    findings = analyze_source(source, "x.py")
    keys = [(f.path, f.line, f.col, f.rule) for f in findings]
    assert keys == sorted(keys)
    assert len({f.rule for f in findings}) >= 2


def test_json_schema_keys(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(LEAKY, encoding="utf-8")
    report = run([str(tmp_path)])
    payload = json.loads(render_json(report))
    assert payload["version"] == JSON_VERSION
    assert payload["analyzer"] == "repro-lint"
    assert payload["files_analyzed"] == 1
    assert {r["id"] for r in payload["rules"]} >= {"permit-leak", "span-discipline"}
    assert payload["counts"]["total"] == len(payload["findings"])
    assert payload["counts"]["unsuppressed"] == 1
    entry = payload["findings"][0]
    assert set(entry) == {
        "rule", "path", "line", "col", "message", "hint", "snippet",
        "suppressed", "baselined", "fingerprint",
    }


# -- exit codes: 0 clean, 1 findings, 2 analyzer crash ----------------------


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    assert cli_main(["lint", str(tmp_path)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_exit_one_on_findings(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(LEAKY, encoding="utf-8")
    assert cli_main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "permit-leak" in out and "fix:" in out


def test_exit_two_on_analyzer_crash(tmp_path, monkeypatch, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    from repro.analysis import runner

    def boom(path):
        raise RuntimeError("checker exploded")

    monkeypatch.setattr(runner, "analyze_file", boom)
    assert cli_main(["lint", str(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "analyzer crashed" in err and "checker exploded" in err


def test_parse_error_is_a_finding_not_a_crash(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def broken(:\n", encoding="utf-8")
    assert cli_main(["lint", str(tmp_path)]) == 1
    assert PARSE_ERROR_RULE in capsys.readouterr().out


def test_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("permit-leak", "blocking-in-async", "loop-affinity",
                    "staging-pairing", "shed-discipline", "span-discipline"):
        assert f"{rule_id}:" in out


# -- baseline ---------------------------------------------------------------


def test_baseline_roundtrip(tmp_path, capsys):
    vendored = tmp_path / "vendored"
    vendored.mkdir()
    (vendored / "legacy.py").write_text(LEAKY, encoding="utf-8")
    baseline_path = tmp_path / "lint_baseline.json"

    assert cli_main(["lint", str(vendored)]) == 1
    assert cli_main([
        "lint", str(vendored), "--update-baseline", str(baseline_path),
    ]) == 0
    capsys.readouterr()

    # Adopted findings pass the gate...
    assert cli_main(["lint", str(vendored), "--baseline", str(baseline_path)]) == 0
    # ...but a new finding still fails it.
    (vendored / "fresh.py").write_text(LEAKY.replace("leaky", "fresh"), encoding="utf-8")
    assert cli_main(["lint", str(vendored), "--baseline", str(baseline_path)]) == 1


def test_baseline_survives_line_moves(tmp_path):
    target = tmp_path / "legacy.py"
    target.write_text(LEAKY, encoding="utf-8")
    baseline_path = str(tmp_path / "base.json")
    save_baseline(baseline_path, run([str(tmp_path)]).findings)

    # Unrelated edits above the finding shift every line number.
    target.write_text("import os\n\n\n" + LEAKY, encoding="utf-8")
    report = run([str(tmp_path)], baseline=load_baseline(baseline_path))
    assert report.exit_code == 0
    assert all(f.baselined for f in report.findings)


def test_report_counts_are_consistent():
    source = LEAKY.replace(
        'await gate.acquire("doc")',
        'await gate.acquire("doc")  # repro: allow[permit-leak]',
    )
    findings = analyze_source(LEAKY, "a.py") + analyze_source(source, "b.py")
    report = Report(findings=findings, files_analyzed=2)
    counts = report.counts()
    assert counts["total"] == counts["unsuppressed"] + counts["suppressed"]
    assert report.exit_code == 1
