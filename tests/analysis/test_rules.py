"""Each rule fires on its true-positive fixture, stays quiet on its false-positive one.

The fixture corpus under ``fixtures/`` is the rule contract: ``tp_<rule>.py``
holds the bug shapes the rule exists to catch, ``fp_<rule>.py`` holds the
accepted idioms from the real tree (guarded acquires, the rebinding helper,
the staging protocol, recorded sheds, context-managed spans) that must not
be flagged.  A rule change that breaks either side fails here before it can
reach the CI gate.
"""

import pathlib

import pytest

from repro.analysis import all_rules, analyze_source

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

RULES = [
    "blocking-in-async",
    "loop-affinity",
    "permit-leak",
    "shed-discipline",
    "span-discipline",
    "staging-pairing",
]


def _fixture(kind: str, rule_id: str) -> str:
    name = f"{kind}_{rule_id.replace('-', '_')}.py"
    return (FIXTURES / name).read_text(encoding="utf-8")


def test_fixture_corpus_is_complete():
    registered = {rule.id for rule in all_rules()}
    assert registered == set(RULES)
    for rule_id in RULES:
        for kind in ("tp", "fp"):
            name = f"{kind}_{rule_id.replace('-', '_')}.py"
            assert (FIXTURES / name).is_file(), f"missing fixture {name}"


@pytest.mark.parametrize("rule_id", RULES)
def test_rule_fires_on_true_positive(rule_id):
    findings = analyze_source(_fixture("tp", rule_id), f"tp_{rule_id}.py")
    fired = [f for f in findings if f.rule == rule_id and f.counts_against_gate]
    assert fired, f"{rule_id} did not fire on its true-positive fixture"


@pytest.mark.parametrize("rule_id", RULES)
def test_rule_quiet_on_false_positive(rule_id):
    findings = analyze_source(_fixture("fp", rule_id), f"fp_{rule_id}.py")
    noisy = [f for f in findings if f.counts_against_gate]
    assert not noisy, (
        f"false-positive fixture for {rule_id} raised findings:\n"
        + "\n".join(f"  {f.rule}@{f.line}: {f.message}" for f in noisy)
    )


@pytest.mark.parametrize("rule_id", RULES)
def test_rule_metadata(rule_id):
    from repro.analysis import get_rule

    rule = get_rule(rule_id)
    assert rule.summary, f"{rule_id} has no summary"
    assert rule.hint, f"{rule_id} has no hint"
    doc = type(rule).doc()
    assert "::" in doc, f"{rule_id} docstring carries no in-repo example"


def test_vector_modules_are_clean_sync_helpers():
    """The vector tier's scans are sync helpers: zero gate findings.

    The executor-offload idiom the service layer uses for whole-column
    scans must not read as blocking-in-async (or anything else) — a rule
    change that starts flagging ``repro.core.vector`` fails here first.
    """
    vector_dir = pathlib.Path(__file__).parents[2] / "src" / "repro" / "core" / "vector"
    modules = sorted(vector_dir.glob("*.py"))
    assert modules, f"no vector modules found under {vector_dir}"
    for module in modules:
        findings = analyze_source(
            module.read_text(encoding="utf-8"), str(module)
        )
        noisy = [f for f in findings if f.counts_against_gate]
        assert not noisy, (
            f"{module.name} raised findings:\n"
            + "\n".join(f"  {f.rule}@{f.line}: {f.message}" for f in noisy)
        )


def test_findings_carry_location_and_snippet():
    findings = analyze_source(_fixture("tp", "permit-leak"), "tp_permit_leak.py")
    finding = next(f for f in findings if f.rule == "permit-leak")
    assert finding.line > 0
    assert "acquire" in finding.snippet
    assert finding.hint
