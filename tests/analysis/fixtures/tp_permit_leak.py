"""True positive: permit crosses an await with no try/finally release."""


async def leaky(gate, peer):
    permit = await gate.acquire("doc")
    await peer.ping()  # cancellation landing here leaks the permit
    gate.release("doc")
    return permit
