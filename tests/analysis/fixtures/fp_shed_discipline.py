"""False positives: recorded sheds, re-raises, and shed counters."""


async def refuse(metrics, session):
    metrics.record_shed(session.name, "overload")
    raise OverloadShedError("overloaded")


async def deadline(metrics, session, budget):
    if budget <= 0.0:
        metrics.record_shed(session.name, "queue")
        raise DeadlineExceededError("deadline dead on arrival", stage="queue")


async def reraise_is_already_accounted(work):
    try:
        return await work()
    except DeadlineExceededError as error:
        raise error


async def shed_counter_is_not_a_latency_sample(metrics, work):
    try:
        return await work()
    except OverloadShedError:
        metrics.record_shed("doc", "downstream")
        raise
