"""True positive: asyncio primitives built before any loop is running."""

import asyncio

GATE = asyncio.Semaphore(4)  # bound at import time — to no loop at all


class Pool:
    lock = asyncio.Lock()  # bound at class-definition time

    def __init__(self):
        self.queue = asyncio.Queue()  # bound to whatever loop exists now
