"""True positives: unlabeled sheds and latency samples on shed paths."""


async def refuse(session):
    raise OverloadShedError("overloaded")  # invisible to per-stage shed metrics


async def deadline(budget):
    if budget <= 0.0:
        raise DeadlineExceededError("deadline dead on arrival", stage="queue")


async def sampled_shed(metrics, work, clock):
    started = clock()
    try:
        return await work()
    except OverloadShedError:
        metrics.record(clock() - started)  # a shed is not a latency sample
        raise
