"""False positives: async waiting, sync helpers, executor offload."""

import asyncio


async def replay(delay):
    await asyncio.sleep(delay)


def sync_helper(path):
    # A sync function may block: it cannot await, and it may run in an
    # executor.  Only coroutines are held to the no-blocking invariant.
    with open(path) as handle:
        return handle.read()


async def offloaded(path):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, sync_helper, path)


async def nested_sync_helper_is_exempt(path):
    def read_it():
        with open(path) as handle:
            return handle.read()

    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, read_it)


async def guarded_future_result(future):
    if future.done():
        return future.result()  # repro: allow[blocking-in-async] done() checked above
    return await future


def vector_combined_scan(fragment, flat, plan, init_vector, is_root):
    # The numpy vector tier's whole-column scans are sync helpers by
    # design: CPU-bound, never awaiting, eligible for executor offload.
    # Only coroutines are held to the no-blocking invariant, so the scan
    # body may open spill files or poll futures without tripping the rule.
    columns = [list(init_vector) for _ in range(plan.n_steps + 1)]
    with open("/dev/null") as sink:
        sink.read(0)
    return columns


async def executor_bound_vector_scan(fragment, flat, plan, init_vector):
    # The service path runs the scan off the loop; the coroutine only awaits.
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(
        None, vector_combined_scan, fragment, flat, plan, init_vector, True
    )
