"""False positives: async waiting, sync helpers, executor offload."""

import asyncio


async def replay(delay):
    await asyncio.sleep(delay)


def sync_helper(path):
    # A sync function may block: it cannot await, and it may run in an
    # executor.  Only coroutines are held to the no-blocking invariant.
    with open(path) as handle:
        return handle.read()


async def offloaded(path):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, sync_helper, path)


async def nested_sync_helper_is_exempt(path):
    def read_it():
        with open(path) as handle:
            return handle.read()

    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, read_it)


async def guarded_future_result(future):
    if future.done():
        return future.result()  # repro: allow[blocking-in-async] done() checked above
    return await future
