"""True positives: counter staging without a restore on every path."""


async def unguarded(site, attempt):
    snapshot = site.snapshot_counters()
    result = await attempt()  # a failure here commits the partial counters
    site.maybe_restore(snapshot)
    return result


async def handler_skips_restore(site, attempt):
    snapshot = site.snapshot_counters()
    try:
        return await attempt()
    except TransportError:
        return None  # keeps the failed attempt's counters
    except BaseException:
        site.restore_counters(snapshot)
        raise


async def discarded(site, attempt):
    site.snapshot_counters()
    return await attempt()
