"""False positives: context-managed spans, taxonomy stages, events."""


def well_staged(tracer, started, ended, pick_stage):
    with tracer.request("req-1"):
        with trace_span("cache:lookup", stage="cache"):
            pass
        with span("kernel:fused", stage="kernel"):
            pass
    add_span("retry:backoff", "retry", started, ended)
    # event() passes stage as a span *attribute*, not a latency stage.
    event("degrade:site", site="s1", stage="combined")
    # Dynamic stages are the exporter's problem, not the linter's.
    add_span("kernel:fused", pick_stage(), started, ended)


async def async_request(tracer, body):
    with tracer.request("req-2"):
        return await body()
