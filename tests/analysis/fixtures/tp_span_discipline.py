"""True positives: leaked spans and off-taxonomy stages."""


def leaked_request(tracer):
    probe = tracer.request("warmup")  # never closed on an exception path
    return probe


def off_taxonomy():
    with trace_span("respond", stage="respond"):
        pass


def reserved_fill_stage(started, ended):
    add_span("fill", "dispatch", started, ended)
