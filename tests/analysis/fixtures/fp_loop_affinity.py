"""False positives: the rebinding helper and in-coroutine construction."""

import asyncio
from typing import Optional


class Pool:
    def __init__(self, parallelism: int) -> None:
        self.parallelism = parallelism
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._loop_id: Optional[int] = None

    def _bound_semaphore(self) -> asyncio.Semaphore:
        # The codebase's rebinding pattern: lazily built, keyed on the
        # running loop, rebuilt whenever the loop changes.
        loop_id = id(asyncio.get_running_loop())
        if self._semaphore is None or self._loop_id != loop_id:
            self._semaphore = asyncio.Semaphore(self.parallelism)
            self._loop_id = loop_id
        return self._semaphore


async def fan_out(jobs, width):
    gate = asyncio.Semaphore(width)  # built under the loop that awaits it

    async def one(job):
        async with gate:
            return await job()

    return [await one(job) for job in jobs]
