"""False positive: the exactly-once staging protocol, done right."""


async def resilient_round(site, attempt, buffer):
    snapshot = site.snapshot_counters()
    try:
        result = await attempt(buffer)
    except TransportError:
        site.restore_counters(snapshot)
        raise
    except BaseException:
        # Cancellation or an unexpected error: this attempt's accounting
        # must not outlive it.
        site.restore_counters(snapshot)
        raise
    return result


async def finally_restore_then_commit(site, attempt, ledger):
    snapshot = site.snapshot_counters()
    committed = False
    try:
        result = await attempt()
        ledger.commit(site)
        committed = True
    finally:
        if not committed:
            site.restore_counters(snapshot)
    return result
