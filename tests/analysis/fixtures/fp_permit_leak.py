"""False positives: every accepted shape of the acquire→release protocol."""


async def guarded(gate, peer):
    await gate.acquire("doc")
    try:
        return await peer.ping()
    finally:
        gate.release("doc")


async def guarded_after_sync_statements(session, peer):
    snapshot = session.snapshots.pin(session.version)
    fragments = snapshot.fragments
    count = len(fragments)
    try:
        return await peer.evaluate(fragments, count)
    finally:
        session.snapshots.release(snapshot)


async def ownership_transfer(gate):
    permit = await gate.acquire("doc")
    return permit


async def caller_owns_the_permit(gate, timeout):
    await gate.acquire_read(timeout)


async def shed_on_timeout(admission, metrics, session, peer):
    try:
        await admission.acquire(session.name)
    except TimeoutError:
        metrics.record_shed(session.name, "queue")
        raise OverloadShedError("queue wait exceeded")
    try:
        return await peer.ping()
    finally:
        admission.release(session.name)


async def handback_in_finally(scheduler, peer):
    grant = await scheduler.acquire("doc")
    try:
        return await peer.ping()
    finally:
        scheduler.handback(grant)
