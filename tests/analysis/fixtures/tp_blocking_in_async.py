"""True positive: synchronous blocking calls inside ``async def``."""

import time


async def replay(delay):
    time.sleep(delay)  # the whole event loop sleeps, not this request


async def read_config(path):
    with open(path) as handle:
        return handle.read()


async def wait_for(future):
    return future.result()
