"""End-to-end tracing over the real service host: span taxonomy, attribution
accounting and guarantee coverage on live traffic."""

import pytest

from repro.obs.trace import Tracer
from repro.service.server import ServiceEngine
from repro.workloads.queries import PAPER_QUERIES
from repro.workloads.scenarios import build_ft2
from repro.xpath.centralized import evaluate_centralized


@pytest.fixture(scope="module")
def ft2():
    return build_ft2(total_bytes=40_000, seed=7)


@pytest.fixture(scope="module")
def traced(ft2):
    tracer = Tracer(check_guarantees=True)
    service = ServiceEngine(
        ft2.fragmentation,
        placement=ft2.placement,
        tracer=tracer,
        cache_capacity=8,
    )
    queries = list(PAPER_QUERIES.values()) * 2
    results = service.serve_batch(queries, concurrency=4)
    return tracer, service, queries, results


class TestRequestSpans:
    def test_one_root_per_request(self, traced):
        tracer, _, queries, _ = traced
        assert tracer.requests_traced == len(queries)
        assert all(root.kind == "query" for root in tracer.finished)

    def test_expected_span_taxonomy(self, traced):
        tracer, _, _, _ = traced
        names = {node.name for root in tracer.finished for node in root.walk()}
        for expected in (
            "query",
            "plan:compile",
            "evaluate",
            "site:stage1",
            "batch:window",
            "kernel:fused",
            "unify",
            "reassembly",
            "respond",
        ):
            assert expected in names, f"missing span {expected!r} in {sorted(names)}"

    def test_evaluated_roots_carry_stats_and_visits(self, traced):
        tracer, _, _, _ = traced
        evaluated = [root for root in tracer.finished if root.stats is not None]
        assert evaluated
        for root in evaluated:
            assert root.attributes["max_site_visits"] <= 2  # PaX2 bound
            assert root.attributes["answer_count"] == len(root.stats.answer_ids)

    def test_zero_guarantee_violations_on_live_traffic(self, traced):
        tracer, _, _, _ = traced
        assert tracer.violation_count == 0
        assert tracer.guarantees.checked > 0

    def test_answers_unchanged_by_tracing(self, traced, ft2):
        _, _, queries, results = traced
        for query, result in zip(queries, results):
            expected = evaluate_centralized(ft2.tree, query).answer_ids
            assert result.answer_ids == expected


class TestAttributionAccounting:
    def test_breakdown_within_request_wall_clock(self, traced):
        tracer, _, _, _ = traced
        for root in tracer.finished:
            attributed = root.attributed_seconds()
            assert attributed > 0.0
            # Every instant is charged to exactly one stage, so the stage
            # seconds can never exceed the request's own duration.
            assert attributed <= root.duration + 1e-9

    def test_breakdown_attribute_matches_recompute(self, traced):
        tracer, _, _, _ = traced
        for root in tracer.finished:
            recorded = root.attributes["breakdown_seconds"]
            recomputed = root.breakdown()
            assert set(recorded) == set(recomputed)
            for stage, seconds in recorded.items():
                assert seconds == pytest.approx(recomputed[stage], abs=1e-8)

    def test_stage_histograms_cover_core_stages(self, traced):
        tracer, _, _, _ = traced
        assert tracer.histograms["query"].count == tracer.requests_traced
        for stage in ("kernel", "compile"):
            assert tracer.histograms[f"stage:{stage}"].count > 0


class TestWritePathSpans:
    def test_update_root_covers_apply_and_retirement(self, ft2):
        from repro.updates import MixedWorkload
        from repro.workloads.queries import PAPER_QUERIES as QUERIES

        tracer = Tracer(check_guarantees=True)
        service = ServiceEngine(
            ft2.fragmentation, placement=ft2.placement, tracer=tracer
        )
        workload = MixedWorkload(
            ft2.fragmentation, list(QUERIES.values()), write_ratio=1.0, seed=3
        )
        service.execute(QUERIES["Q1"])  # populate the cache so a write retires
        for _ in range(3):
            service.update(workload.next_op().mutation)
        updates = [root for root in tracer.finished if root.kind == "update"]
        assert len(updates) == 3
        names = {node.name for root in updates for node in root.walk()}
        assert {"update", "update:apply", "version:roll"} <= names

    def test_sequential_breakdown_reconciles(self, ft2):
        # The dispatch fill makes a root's breakdown sum to its wall clock
        # by construction; the framework share it absorbs must stay small
        # next to the staged sections on a real evaluated query.
        tracer = Tracer(check_guarantees=False)
        service = ServiceEngine(
            ft2.fragmentation, placement=ft2.placement, tracer=tracer,
            cache_capacity=0,
        )
        service.execute(PAPER_QUERIES["Q2"])
        (root,) = tracer.finished
        breakdown = root.breakdown()
        assert root.attributed_seconds() == pytest.approx(root.duration, rel=1e-6)
        # generous bound: even on a loaded CI box, real stages dominate
        assert breakdown.get("dispatch", 0.0) <= root.duration * 0.5


class TestTracerSwap:
    def test_tracer_attaches_to_running_host(self, ft2):
        service = ServiceEngine(
            ft2.fragmentation, placement=ft2.placement, cache_capacity=0
        )
        service.execute(PAPER_QUERIES["Q1"])  # untraced warm-up
        tracer = Tracer(check_guarantees=True)
        service.tracer = tracer
        service.execute(PAPER_QUERIES["Q1"])
        assert tracer.requests_traced == 1
