"""Prometheus rendering and the /metrics HTTP endpoint over a live host."""

import asyncio
import json
import urllib.request

import pytest

from repro.obs import MetricsServer, Tracer, render_prometheus, stats_payload
from repro.service.server import ServiceEngine
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)


@pytest.fixture(scope="module")
def traced_service():
    tree = clientele_example_tree()
    fragmentation = clientele_paper_fragmentation(tree)
    service = ServiceEngine(fragmentation, tracer=Tracer(check_guarantees=True))
    service.serve_batch(
        ["client/name", CLIENTELE_QUERIES["brokers_goog"], "client/name"],
        concurrency=2,
    )
    return service


class TestRenderPrometheus:
    def test_counters_present(self, traced_service):
        text = render_prometheus(traced_service)
        assert "repro_requests_total 3" in text
        assert "repro_requests_evaluated_total 2" in text
        assert "repro_requests_cache_hits_total 1" in text
        assert "# TYPE repro_requests_total counter" in text

    def test_tracing_metrics_present(self, traced_service):
        text = render_prometheus(traced_service)
        assert "repro_traced_requests_total 3" in text
        assert "repro_guarantee_violations_total 0" in text
        assert 'repro_stage_latency_seconds_bucket{le="+Inf",stage="kernel"}' in text
        assert "repro_request_latency_seconds_count" in text

    def test_site_and_cache_metrics_present(self, traced_service):
        text = render_prometheus(traced_service)
        assert "repro_cache_hits_total 1" in text
        assert 'repro_site_requests_total{site="S' in text

    def test_help_and_type_emitted_once(self, traced_service):
        text = render_prometheus(traced_service)
        assert text.count("# TYPE repro_requests_total counter") == 1

    def test_untraced_host_renders_without_tracer_block(self):
        tree = clientele_example_tree()
        service = ServiceEngine(clientele_paper_fragmentation(tree))
        text = render_prometheus(service)
        assert "repro_requests_total 0" in text
        assert "repro_traced_requests_total" not in text


class TestStatsPayload:
    def test_every_surface_included(self, traced_service):
        payload = stats_payload(traced_service)
        assert payload["metrics"]["requests"] == 3
        assert payload["cache"]["hits"] == 1
        assert payload["tracing"]["requests_traced"] == 3
        json.dumps(payload)  # must be JSON-ready as-is


async def _http_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.0\r\nHost: test\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.decode("utf-8").partition("\r\n\r\n")
    return head.splitlines()[0], body


class TestMetricsServer:
    def test_routes_served(self, traced_service):
        async def scenario():
            server = await MetricsServer(traced_service, port=0).start()
            try:
                status, metrics = await _http_get(server.port, "/metrics")
                assert status.endswith("200 OK")
                assert "repro_requests_total 3" in metrics
                status, stats = await _http_get(server.port, "/stats.json")
                assert json.loads(stats)["metrics"]["requests"] == 3
                status, health = await _http_get(server.port, "/healthz")
                assert health.startswith("ok")
                status, _ = await _http_get(server.port, "/nope")
                assert status.endswith("404 Not Found")
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_scrapeable_with_urllib(self, traced_service):
        # The exact client `repro stats` uses, against a live loop in a thread.
        async def scenario():
            server = await MetricsServer(traced_service, port=0).start()
            try:
                url = f"{server.url}/metrics"
                body = await asyncio.to_thread(
                    lambda: urllib.request.urlopen(url, timeout=10.0).read()
                )
                assert b"repro_requests_total" in body
            finally:
                await server.stop()

        asyncio.run(scenario())
