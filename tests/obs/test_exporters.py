"""Unit tests for the span exporters (repro.obs.export)."""

import io
import json

import pytest

from repro.distributed.stats import RunStats
from repro.obs.export import ChromeTraceExporter, JsonLinesExporter, SlowQueryLog
from repro.obs.trace import Span


def finished_root(name="query", start=0.0, end=1.0, stage_spans=()):
    root = Span(name, kind="query", start=start)
    for child_name, stage, child_start, child_end in stage_spans:
        child = root.child(child_name, stage=stage, start=child_start)
        child.end = child_end
    root.end = end
    return root


class TestJsonLines:
    def test_one_line_per_root(self):
        sink = io.StringIO()
        exporter = JsonLinesExporter(sink)
        exporter.export(finished_root("q1"))
        exporter.export(finished_root("q2", stage_spans=[("scan", "kernel", 0.2, 0.8)]))
        exporter.close()
        lines = sink.getvalue().strip().splitlines()
        assert exporter.exported == 2
        first, second = (json.loads(line) for line in lines)
        assert first["name"] == "q1"
        assert second["children"][0]["stage"] == "kernel"

    def test_path_sink_appends(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        for name in ("a", "b"):
            exporter = JsonLinesExporter(path)
            exporter.export(finished_root(name))
            exporter.close()
        names = [json.loads(line)["name"] for line in path.read_text().splitlines()]
        assert names == ["a", "b"]


class TestChromeTrace:
    def test_trace_parses_with_expected_events(self, tmp_path):
        path = tmp_path / "trace.json"
        exporter = ChromeTraceExporter(path, lanes=2)
        exporter.export(
            finished_root(stage_spans=[("scan", "kernel", 0.25, 0.75)])
        )
        exporter.close()
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"  # process-name metadata
        slices = [event for event in events if event["ph"] == "X"]
        assert [event["name"] for event in slices] == ["query", "scan"]
        scan = slices[1]
        assert scan["cat"] == "kernel"
        assert scan["ts"] == pytest.approx(250_000)
        assert scan["dur"] == pytest.approx(500_000)
        assert scan["args"]["stage"] == "kernel"

    def test_lanes_cycle_per_request(self, tmp_path):
        exporter = ChromeTraceExporter(tmp_path / "trace.json", lanes=2)
        for _ in range(4):
            exporter.export(finished_root())
        tids = [
            event["tid"] for event in exporter.events if event["ph"] == "X"
        ]
        assert tids == [1, 2, 1, 2]  # tid 0 is the metadata row

    def test_max_events_bounds_buffer(self, tmp_path):
        exporter = ChromeTraceExporter(tmp_path / "trace.json", max_events=2)
        exporter.export(finished_root(stage_spans=[("scan", "kernel", 0.2, 0.8)]))
        assert len(exporter.events) == 2  # metadata + first slice
        assert exporter.dropped == 1

    def test_arguments_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ChromeTraceExporter(tmp_path / "t.json", lanes=0)
        with pytest.raises(ValueError):
            ChromeTraceExporter(tmp_path / "t.json", max_events=0)


class TestSlowQueryLog:
    def test_threshold_filters(self):
        sink = io.StringIO()
        log = SlowQueryLog(sink, threshold_seconds=0.5)
        log.export(finished_root(end=0.4))
        log.export(finished_root(end=0.9))
        log.close()
        records = [json.loads(line) for line in sink.getvalue().strip().splitlines()]
        assert log.logged == 1
        (record,) = records
        assert record["slow_query"] is True
        assert record["duration_seconds"] == pytest.approx(0.9)

    def test_run_stats_included_when_present(self):
        sink = io.StringIO()
        log = SlowQueryLog(sink, threshold_seconds=0.0)
        root = finished_root()
        root.stats = RunStats(algorithm="PaX2", query="//a", answer_ids=[1])
        log.export(root)
        log.close()
        record = json.loads(sink.getvalue())
        assert record["run_stats"]["algorithm"] == "PaX2"

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            SlowQueryLog(io.StringIO(), threshold_seconds=-1.0)
