"""Unit tests for the span/tracer substrate (repro.obs.trace)."""

import asyncio

import pytest

from repro.distributed.stats import RunStats, SiteStats
from repro.obs.trace import (
    DEFAULT_KEEP_SPANS,
    NULL_TRACER,
    Span,
    Tracer,
    add_span,
    current_span,
    event,
    set_attributes,
    set_stats,
    span,
)


def run_stats(algorithm="PaX2", visits=(1, 2)):
    stats = RunStats(algorithm=algorithm, query="//a")
    for index, count in enumerate(visits):
        site_id = f"S{index}"
        stats.sites[site_id] = SiteStats(site_id=site_id, visits=count)
    return stats


class TestUntracedPath:
    def test_span_returns_shared_noop(self):
        assert current_span() is None
        first = span("anything", stage="kernel")
        second = span("anything-else")
        assert first is second  # one shared, pre-allocated context manager
        with first:
            assert current_span() is None

    def test_helpers_are_noops(self):
        add_span("x", "kernel", 0.0, 1.0)
        event("x")
        set_attributes(key="value")
        set_stats(run_stats())
        assert current_span() is None

    def test_null_tracer_request_is_noop(self):
        with NULL_TRACER.request("query", kind="query"):
            assert current_span() is None
        assert NULL_TRACER.to_dict() == {"enabled": False}


class TestSpanTree:
    def test_nesting_and_propagation(self):
        tracer = Tracer(check_guarantees=False)
        with tracer.request("query", kind="query") as root:
            assert current_span() is root
            with span("outer", stage="compile") as outer:
                assert current_span() is outer
                with span("inner", stage="kernel", site="S0") as inner:
                    assert current_span() is inner
                assert current_span() is outer
            assert current_span() is root
        assert current_span() is None
        assert [node.name for node in root.walk()] == ["query", "outer", "inner"]
        assert root.span_count() == 3
        assert inner.attributes["site"] == "S0"

    def test_leaf_span_containers_are_lazy(self):
        leaf = Span("leaf")
        assert leaf._attributes is None and leaf._children is None
        assert leaf.attributes == {}  # allocated on first touch
        assert leaf._attributes == {}

    def test_children_sum_within_parent(self):
        parent = Span("parent", start=0.0)
        for offset in range(4):
            child = parent.child("child", stage="kernel", start=float(offset))
            child.end = offset + 1.0
        parent.end = 10.0
        child_total = sum(child.duration for child in parent.children)
        assert child_total == pytest.approx(4.0)
        assert child_total <= parent.duration

    def test_exception_recorded_and_span_closed(self):
        tracer = Tracer(check_guarantees=False)
        with pytest.raises(RuntimeError):
            with tracer.request("query", kind="query") as root:
                with span("broken", stage="kernel"):
                    raise RuntimeError("boom")
        broken = root.children[0]
        assert broken.end is not None
        assert "boom" in broken.attributes["error"]
        assert "boom" in root.attributes["error"]

    def test_add_span_and_event(self):
        tracer = Tracer(check_guarantees=False)
        with tracer.request("query", kind="query") as root:
            add_span("measured", "wire", 1.0, 2.5, units=7)
            event("marker", kind_of="message")
        measured, marker = root.children
        assert measured.duration == pytest.approx(1.5)
        assert measured.attributes["units"] == 7
        assert marker.duration == 0.0

    def test_set_attributes_merges_into_active(self):
        tracer = Tracer(check_guarantees=False)
        with tracer.request("query", kind="query") as root:
            set_attributes(cache="hit")
            set_attributes(answers=3)
        assert root.attributes["cache"] == "hit"
        assert root.attributes["answers"] == 3

    def test_open_span_duration_is_zero(self):
        node = Span("open", start=1.0)
        assert node.duration == 0.0
        node.finish(end=3.0)
        node.finish(end=99.0)  # idempotent
        assert node.duration == pytest.approx(2.0)

    def test_to_dict_roundtrips_structure(self):
        root = Span("query", kind="query", start=0.0)
        child = root.child("scan", stage="kernel", start=0.5)
        child.end = 1.0
        root.end = 2.0
        payload = root.to_dict()
        assert payload["name"] == "query"
        assert "wall_start" in payload
        (child_payload,) = payload["children"]
        assert child_payload["stage"] == "kernel"
        assert "wall_start" not in child_payload  # internal spans skip the epoch


class TestAsyncPropagation:
    def test_gather_children_attribute_to_their_request(self):
        tracer = Tracer(check_guarantees=False)

        async def site_round(site_id):
            with span("site:round", stage="kernel", site=site_id):
                await asyncio.sleep(0)

        async def request(name):
            with tracer.request(name, kind="query") as root:
                await asyncio.gather(*(site_round(f"S{i}") for i in range(3)))
            return root

        async def main():
            return await asyncio.gather(request("q1"), request("q2"))

        roots = asyncio.run(main())
        for root in roots:
            sites = [node.attributes["site"] for node in root.children]
            assert sites == ["S0", "S1", "S2"]


class TestBreakdown:
    def close(self, parent, name, stage, start, end):
        child = parent.child(name, stage=stage, start=start)
        child.end = end
        return child

    def test_disjoint_stages_sum(self):
        root = Span("query", kind="query", start=0.0)
        self.close(root, "a", "compile", 0.0, 1.0)
        self.close(root, "b", "kernel", 1.0, 3.0)
        root.end = 3.0
        assert root.breakdown() == pytest.approx({"compile": 1.0, "kernel": 2.0})
        assert root.attributed_seconds() == pytest.approx(3.0)

    def test_same_stage_overlap_merges(self):
        root = Span("query", kind="query", start=0.0)
        self.close(root, "s1", "kernel", 0.0, 2.0)
        self.close(root, "s2", "kernel", 1.0, 3.0)
        root.end = 3.0
        assert root.breakdown() == pytest.approx({"kernel": 3.0})

    def test_work_beats_waiting_precedence(self):
        # A request parked in the batching window [1, 5] while its own fused
        # scan runs [2, 4]: the overlap charges to kernel, never twice.  The
        # uncovered [0, 1] is framework time, charged to dispatch.
        root = Span("query", kind="query", start=0.0)
        self.close(root, "window", "window", 1.0, 5.0)
        self.close(root, "scan", "kernel", 2.0, 4.0)
        root.end = 5.0
        assert root.breakdown() == pytest.approx(
            {"window": 2.0, "kernel": 2.0, "dispatch": 1.0}
        )

    def test_low_precedence_container_is_reclaimed(self):
        # The queue-staged evaluate wrapper acts as a filler: specific child
        # stages carve their time out of it and only the gaps stay queued.
        root = Span("query", kind="query", start=0.0)
        container = self.close(root, "evaluate", "queue", 0.0, 10.0)
        self.close(container, "compile", "compile", 1.0, 2.0)
        self.close(container, "scan", "kernel", 4.0, 7.0)
        root.end = 10.0
        assert root.breakdown() == pytest.approx(
            {"queue": 6.0, "compile": 1.0, "kernel": 3.0}
        )

    def test_unknown_stages_stay_distinct(self):
        root = Span("query", kind="query", start=0.0)
        self.close(root, "a", "custom-a", 0.0, 1.0)
        self.close(root, "b", "custom-b", 1.0, 3.0)
        self.close(root, "c", "kernel", 2.0, 4.0)
        root.end = 4.0
        # Known stages outrank unknown ones; distinct unknown stages must not
        # collapse into one bucket.
        assert root.breakdown() == pytest.approx(
            {"custom-a": 1.0, "custom-b": 1.0, "kernel": 2.0}
        )

    def test_zero_length_and_unstaged_spans_ignored(self):
        # Zero-length markers and unstaged structural spans contribute
        # nothing; with no staged coverage at all, a root's whole duration
        # is framework time.
        root = Span("query", kind="query", start=0.0)
        marker = root.child("marker", start=1.0)
        marker.end = 1.0  # zero-length
        self.close(root, "structural", None, 0.0, 5.0)  # no stage
        root.end = 5.0
        assert root.breakdown() == pytest.approx({"dispatch": 5.0})

    def test_internal_spans_get_no_dispatch_fill(self):
        # The fill is a root-span notion: an internal span's breakdown only
        # reports what its staged children cover.
        node = Span("evaluate", start=0.0)
        self.close(node, "scan", "kernel", 1.0, 2.0)
        node.end = 5.0
        assert node.breakdown() == pytest.approx({"kernel": 1.0})
        empty = Span("empty", start=0.0)
        empty.end = 5.0
        assert empty.breakdown() == {}

    def test_dispatch_fill_reconciles_root_to_wall_clock(self):
        root = Span("query", kind="query", start=0.0)
        self.close(root, "compile", "compile", 1.0, 2.0)
        self.close(root, "scan", "kernel", 3.0, 6.0)
        root.end = 10.0
        assert root.breakdown() == pytest.approx(
            {"compile": 1.0, "kernel": 3.0, "dispatch": 6.0}
        )
        assert root.attributed_seconds() == pytest.approx(root.duration)

    def test_open_children_excluded(self):
        root = Span("query", kind="query", start=0.0)
        root.child("still-open", stage="kernel", start=0.0)  # no end
        self.close(root, "done", "wire", 0.0, 1.0)
        root.end = 1.0
        assert root.breakdown() == pytest.approx({"wire": 1.0})


class TestTracer:
    def test_finish_pipeline_annotates_root(self):
        tracer = Tracer(check_guarantees=True)
        with tracer.request("query", kind="query") as root:
            add_span("scan", "kernel", 0.0, 1.0)
            set_stats(run_stats("PaX2", visits=(1, 2)))
        assert tracer.requests_traced == 1
        assert root in tracer.finished
        assert root.attributes["breakdown_seconds"] == {"kernel": 1.0}
        assert root.attributes["max_site_visits"] == 2
        assert root.attributes["site_visits"] == {"S0": 1, "S1": 2}
        assert "guarantee_violations" not in root.attributes
        assert tracer.histograms["query"].count == 1
        assert tracer.histograms["stage:kernel"].count == 1

    def test_guarantee_violation_flagged_on_span(self):
        tracer = Tracer(check_guarantees=True)
        with tracer.request("query", kind="query") as root:
            set_stats(run_stats("PaX2", visits=(3,)))  # bound is 2
        assert tracer.violation_count == 1
        (violation,) = root.attributes["guarantee_violations"]
        assert violation["visits"] == 3 and violation["bound"] == 2
        assert tracer.to_dict()["guarantee_violations"] == 1

    def test_keep_spans_bounds_retention(self):
        tracer = Tracer(check_guarantees=False, keep_spans=3)
        for index in range(7):
            with tracer.request(f"q{index}", kind="query"):
                pass
        assert tracer.requests_traced == 7
        assert [node.name for node in tracer.finished] == ["q4", "q5", "q6"]

    def test_default_retention_is_bounded(self):
        assert Tracer().keep_spans == DEFAULT_KEEP_SPANS

    def test_keep_spans_validated(self):
        with pytest.raises(ValueError):
            Tracer(keep_spans=0)

    def test_exporters_receive_roots_and_close(self):
        class Exporter:
            def __init__(self):
                self.spans, self.closed = [], False

            def export(self, node):
                self.spans.append(node)

            def close(self):
                self.closed = True

        exporter = Exporter()
        tracer = Tracer(exporters=[exporter], check_guarantees=False)
        with tracer.request("query", kind="query") as root:
            pass
        tracer.close()
        assert exporter.spans == [root] and exporter.closed
