"""Unit tests for the online visit-bound checker (repro.obs.guarantees)."""

import pytest

from repro.distributed.stats import RunStats, SiteStats
from repro.obs.guarantees import VISIT_BOUNDS, GuaranteeChecker


def run_stats(algorithm, visits):
    stats = RunStats(algorithm=algorithm, query="//a")
    for index, count in enumerate(visits):
        site_id = f"S{index}"
        stats.sites[site_id] = SiteStats(site_id=site_id, visits=count)
    return stats


class TestBounds:
    def test_paper_bounds(self):
        assert VISIT_BOUNDS == {
            "PaX2": 2,
            "PaX3": 3,
            "ParBoX": 1,
            "NaiveCentralized": 1,
        }

    @pytest.mark.parametrize("algorithm,bound", sorted(VISIT_BOUNDS.items()))
    def test_at_bound_passes(self, algorithm, bound):
        checker = GuaranteeChecker()
        assert checker.check(run_stats(algorithm, [bound, bound])) == []
        assert checker.violation_count == 0
        assert checker.checked == 1

    @pytest.mark.parametrize("algorithm,bound", sorted(VISIT_BOUNDS.items()))
    def test_over_bound_flags_each_site(self, algorithm, bound):
        checker = GuaranteeChecker()
        found = checker.check(run_stats(algorithm, [bound + 1, bound, bound + 2]))
        assert [violation.site_id for violation in found] == ["S0", "S2"]
        assert checker.violation_count == 2
        assert "visited site" in str(found[0])

    def test_unknown_algorithm_unchecked(self):
        checker = GuaranteeChecker()
        assert checker.check(run_stats("Experimental", [99])) == []
        assert checker.checked == 0


class TestRetention:
    def test_violations_bounded_by_keep(self):
        checker = GuaranteeChecker(keep=5)
        for _ in range(4):
            checker.check(run_stats("ParBoX", [2, 2]))
        assert checker.violation_count == 8
        assert len(checker.violations) == 5

    def test_keep_validated(self):
        with pytest.raises(ValueError):
            GuaranteeChecker(keep=0)

    def test_to_dict_reports_recent(self):
        checker = GuaranteeChecker()
        checker.check(run_stats("PaX2", [5]))
        payload = checker.to_dict()
        assert payload["checked"] == 1
        assert payload["violations"] == 1
        assert payload["recent"][0]["visits"] == 5

    def test_custom_bounds_override(self):
        checker = GuaranteeChecker(bounds={"PaX2": 1})
        assert checker.check(run_stats("PaX2", [2]))
        assert checker.check(run_stats("PaX3", [9])) == []  # not in override
