"""Unit tests for the fixed-bucket histogram (repro.obs.histogram)."""

import math

import pytest

from repro.obs.histogram import DEFAULT_BUCKETS, Histogram


class TestHistogram:
    def test_observations_land_in_first_covering_bucket(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]  # 50.0 only in implicit +Inf
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(55.55)

    def test_cumulative_ends_with_inf_total(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(99.0)
        pairs = histogram.cumulative()
        assert pairs == [(0.1, 1), (1.0, 1), (math.inf, 2)]

    def test_quantile_is_bucket_upper_bound(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for _ in range(99):
            histogram.observe(0.05)
        histogram.observe(5.0)
        assert histogram.quantile(0.5) == 0.1
        assert histogram.quantile(1.0) == 10.0

    def test_quantile_edge_cases(self):
        histogram = Histogram()
        assert histogram.quantile(0.5) == 0.0  # empty
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_buckets_validated(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 0.5))

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_to_dict_summary(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        histogram.observe(0.05)
        payload = histogram.to_dict()
        assert payload["count"] == 1
        assert payload["mean_seconds"] == pytest.approx(0.05)
        assert payload["p50_le_seconds"] == 0.1
