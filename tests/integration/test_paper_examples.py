"""Integration tests replaying the paper's worked examples end to end.

Each test cites the paper section it reproduces, so a reviewer can follow
the prose with the code open.
"""

import pytest

from repro.core.engine import DistributedQueryEngine
from repro.core.parbox import run_parbox
from repro.core.pax2 import run_pax2
from repro.core.pax3 import run_pax3
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)


@pytest.fixture(scope="module")
def tree():
    return clientele_example_tree()


@pytest.fixture(scope="module")
def fragmentation(tree):
    return clientele_paper_fragmentation(tree)


def names(tree, stats):
    return [tree.node(node_id).text() for node_id in stats.answer_ids]


class TestSection1Introduction:
    def test_boolean_query_q(self, fragmentation):
        """Q = [//stock/code/text() = "goog"] is true: someone trades GOOG."""
        stats = run_parbox(fragmentation, CLIENTELE_QUERIES["boolean_goog"])
        assert bool(stats.answer_ids) is True
        # ParBoX visits each site exactly once (property (a) of [5]).
        assert stats.max_site_visits == 1

    def test_data_selecting_query_q_prime(self, tree, fragmentation):
        """Q' = //broker[//stock/code/text()="goog"]/name returns all three
        brokers: every broker in Figure 1 trades GOOG somewhere."""
        for runner in (run_pax3, run_pax2):
            stats = runner(fragmentation, CLIENTELE_QUERIES["brokers_goog"])
            assert names(tree, stats) == ["E*trade", "Bache", "CIBC"]


class TestSection2Preliminaries:
    def test_query_q1_goog_but_not_yhoo(self, tree, fragmentation):
        """Section 2.2's Q1: Bache also trades YHOO, so it is excluded."""
        stats = run_pax2(fragmentation, CLIENTELE_QUERIES["brokers_goog_not_yhoo"])
        assert names(tree, stats) == ["E*trade", "CIBC"]

    def test_example_21_us_nasdaq_brokers(self, tree, fragmentation):
        """Example 2.1 / 3.3: the two US clients' brokers are answers, the
        Canadian client's broker is not."""
        stats = run_pax3(fragmentation, CLIENTELE_QUERIES["us_nasdaq_brokers"])
        assert names(tree, stats) == ["E*trade", "Bache"]


class TestSection3And4Guarantees:
    def test_pax3_visits_at_most_three_times(self, fragmentation):
        stats = run_pax3(fragmentation, CLIENTELE_QUERIES["us_nasdaq_brokers"])
        assert stats.max_site_visits <= 3

    def test_pax2_visits_at_most_twice(self, fragmentation):
        stats = run_pax2(fragmentation, CLIENTELE_QUERIES["us_nasdaq_brokers"])
        assert stats.max_site_visits <= 2

    def test_only_answers_ship_as_tree_data(self, tree, fragmentation):
        """Property: the only tree data transmitted are the answer nodes."""
        stats = run_pax2(fragmentation, CLIENTELE_QUERIES["brokers_goog"])
        assert stats.answer_nodes_shipped == sum(
            tree.node(node_id).subtree_size() for node_id in stats.answer_ids
        )


class TestSection5Annotations:
    def test_example_51_pruning(self, fragmentation):
        """Example 5.1: for client/name only the root fragment is relevant;
        all four sub-fragments are ruled out by the annotations."""
        stats = run_pax2(fragmentation, CLIENTELE_QUERIES["client_names"], use_annotations=True)
        assert stats.fragments_evaluated == ["F0"]
        assert set(stats.fragments_pruned) == {"F1", "F2", "F3", "F4"}

    def test_annotations_never_change_answers(self, tree, fragmentation):
        engine = DistributedQueryEngine(fragmentation)
        for query_name, query in CLIENTELE_QUERIES.items():
            if query_name == "boolean_goog":
                continue
            assert (
                engine.run(query, use_annotations=True).answer_ids
                == engine.run(query, use_annotations=False).answer_ids
            )
