"""End-to-end integration: parse -> fragment -> place -> query -> answers.

These tests exercise the whole public API the way the examples (and a
downstream user) would, including XML round-trips and every algorithm.
"""

import pytest

from repro import (
    DistributedQueryEngine,
    cut_by_size,
    cut_matching,
    evaluate_centralized,
    parse_xml,
    round_robin_placement,
    serialize,
)
from repro.workloads.xmark import SiteSpec, generate_sites_document


@pytest.fixture(scope="module")
def catalog_xml() -> str:
    """A small bookshop document written as raw XML text."""
    return """
    <shop>
      <department>
        <name>fiction</name>
        <book><title>Dune</title><price>9</price><stock>3</stock></book>
        <book><title>Hyperion</title><price>12</price><stock>0</stock></book>
      </department>
      <department>
        <name>science</name>
        <book><title>Cosmos</title><price>15</price><stock>7</stock></book>
        <book><title>Relativity</title><price>8</price><stock>2</stock></book>
      </department>
      <department>
        <name>history</name>
        <book><title>SPQR</title><price>14</price><stock>1</stock></book>
      </department>
    </shop>
    """


class TestBookshopWorkflow:
    def test_parse_fragment_query(self, catalog_xml):
        tree = parse_xml(catalog_xml)
        fragmentation = cut_matching(tree, "department")
        engine = DistributedQueryEngine(fragmentation)

        titles = engine.execute('//book[price < 13][stock > 0]/title')
        assert titles.texts() == ["Dune", "Relativity"]

        departments = engine.execute('department[book/price > 14]/name')
        assert departments.texts() == ["science"]

    def test_every_algorithm_gives_the_same_answer(self, catalog_xml):
        tree = parse_xml(catalog_xml)
        fragmentation = cut_by_size(tree, max_elements=8)
        engine = DistributedQueryEngine(fragmentation)
        query = "//book[stock > 0]/title"
        expected = evaluate_centralized(tree, query).answer_ids
        for algorithm in ("pax2", "pax3", "naive"):
            for use_annotations in (False, True):
                stats = engine.run(query, algorithm=algorithm, use_annotations=use_annotations)
                assert stats.answer_ids == expected

    def test_results_can_be_serialized_back_to_xml(self, catalog_xml):
        tree = parse_xml(catalog_xml)
        engine = DistributedQueryEngine(cut_matching(tree, "department"))
        snippets = engine.execute("department[name = 'fiction']/book").to_xml()
        assert len(snippets) == 2
        assert all(snippet.startswith("<book>") for snippet in snippets)

    def test_round_trip_through_text_preserves_answers(self, catalog_xml):
        tree = parse_xml(catalog_xml)
        reparsed = parse_xml(serialize(tree, pretty=True))
        query = "//book[price >= 12]/title"
        assert (
            evaluate_centralized(tree, query).answer_ids
            == evaluate_centralized(reparsed, query).answer_ids
        )


class TestXMarkWorkflow:
    def test_generated_document_through_engine(self):
        tree = generate_sites_document([SiteSpec.from_bytes(25_000)] * 2, seed=13)
        fragmentation = cut_by_size(tree, max_elements=400)
        placement = round_robin_placement(fragmentation, site_count=3)
        engine = DistributedQueryEngine(fragmentation, placement=placement)

        query = '/sites/site/people/person[address/country = "US"]/name'
        result = engine.execute(query)
        assert result.answer_ids == evaluate_centralized(tree, query).answer_ids
        assert result.stats.max_site_visits <= 2
        summary = result.summary()
        assert "PaX2" in summary

    def test_explain_before_running(self):
        tree = generate_sites_document([SiteSpec.from_bytes(15_000)], seed=3)
        fragmentation = cut_by_size(tree, max_elements=200)
        engine = DistributedQueryEngine(fragmentation)
        text = engine.explain("/sites/site/people/person")
        assert "evaluate" in text
