"""Unit tests for the FT1 / FT2 scenario builders."""

import pytest

from repro.workloads.scenarios import build_ft1, build_ft2


class TestFT1:
    def test_fragment_count_matches_request(self):
        for count in (1, 3, 7):
            scenario = build_ft1(fragment_count=count, total_bytes=40_000, seed=1)
            scenario.fragmentation.validate()
            assert len(scenario.fragmentation) == count

    def test_flat_fragment_tree(self):
        scenario = build_ft1(fragment_count=5, total_bytes=50_000, seed=1)
        for fragment_id in scenario.fragmentation.fragment_ids():
            if fragment_id != "F0":
                assert scenario.fragmentation.parent(fragment_id) == "F0"
                assert scenario.fragmentation[fragment_id].root.tag == "site"

    def test_constant_cumulative_size_across_iterations(self):
        sizes = []
        for count in (1, 2, 5, 10):
            scenario = build_ft1(fragment_count=count, total_bytes=80_000, seed=2)
            sizes.append(scenario.total_bytes)
        # Cumulative size varies by less than 40% across iterations.
        assert max(sizes) < 1.4 * min(sizes)

    def test_fragments_have_similar_sizes(self):
        scenario = build_ft1(fragment_count=4, total_bytes=80_000, seed=2)
        sizes = list(scenario.fragment_sizes().values())
        assert max(sizes) < 2.5 * min(sizes)

    def test_one_site_per_fragment(self):
        scenario = build_ft1(fragment_count=6, total_bytes=30_000, seed=0)
        assert len(set(scenario.placement.values())) == 6

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            build_ft1(fragment_count=0, total_bytes=1000)


class TestFT2:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_ft2(total_bytes=150_000, seed=4)

    def test_ten_fragments(self, scenario):
        scenario.fragmentation.validate()
        assert len(scenario.fragmentation) == 10

    def test_fragment_roots_match_paper_layout(self, scenario):
        tags = sorted(
            scenario.fragmentation[fid].root.tag
            for fid in scenario.fragmentation.fragment_ids()
            if fid != scenario.fragmentation.root_fragment_id
        )
        assert tags.count("site") == 3
        assert tags.count("open_auctions") == 2
        assert tags.count("closed_auctions") == 2
        assert "namerica" in tags and "regions" in tags

    def test_size_ratios_follow_paper_classes(self, scenario):
        sizes = scenario.fragment_sizes()
        classes = scenario.metadata["size_class"]
        regions_28 = next(fid for fid, label in classes.items() if label.startswith("C regions"))
        namerica_12 = next(fid for fid, label in classes.items() if "namerica" in label)
        site_d = next(fid for fid, label in classes.items() if "site D" in label)
        # 28 : 12 : 5 ratios within a factor-of-two tolerance.
        assert sizes[regions_28] > 1.5 * sizes[namerica_12]
        assert sizes[namerica_12] > 1.3 * sizes[site_d]

    def test_cumulative_size_tracks_request(self):
        small = build_ft2(total_bytes=80_000, seed=4)
        large = build_ft2(total_bytes=320_000, seed=4)
        assert large.total_bytes > 2.5 * small.total_bytes

    def test_metadata_and_description(self, scenario):
        assert scenario.name == "FT2"
        assert "ten fragments" in scenario.description
        assert scenario.fragment_count == 10
        assert set(scenario.metadata["size_class"]) == set(
            scenario.fragmentation.fragment_ids()
        )
