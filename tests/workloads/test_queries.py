"""Unit tests for the paper's queries and running example."""

import pytest

from repro.xpath.centralized import evaluate_centralized
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import compile_plan
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    PAPER_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
    query_q1,
    query_q2,
    query_q3,
    query_q4,
)


class TestPaperQueries:
    def test_query_accessors(self):
        assert query_q1() == PAPER_QUERIES["Q1"]
        assert query_q2() == PAPER_QUERIES["Q2"]
        assert query_q3() == PAPER_QUERIES["Q3"]
        assert query_q4() == PAPER_QUERIES["Q4"]

    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_queries_parse_and_compile(self, name):
        plan = compile_plan(parse_xpath(PAPER_QUERIES[name]), source=PAPER_QUERIES[name])
        assert plan.n_steps >= 2

    def test_qualifier_and_descendant_coverage(self):
        """The four queries cover the paper's 2x2 grid: qualifiers x '//'."""
        plans = {
            name: compile_plan(parse_xpath(query))
            for name, query in PAPER_QUERIES.items()
        }
        grid = {
            (plans[name].has_qualifiers, plans[name].has_descendant_axis)
            for name in plans
        }
        assert grid == {(False, False), (False, True), (True, False), (True, True)}


class TestClienteleExample:
    def test_tree_matches_figure_1(self):
        tree = clientele_example_tree()
        clients = evaluate_centralized(tree, "client/name")
        assert [tree.node(i).text() for i in clients] == ["Anna", "Kim", "Lisa"]
        markets = evaluate_centralized(tree, "//market/name")
        assert [tree.node(i).text() for i in markets] == ["NYSE", "NASDAQ", "NASDAQ", "TSE"]
        stocks = evaluate_centralized(tree, "//stock/code")
        assert [tree.node(i).text() for i in stocks] == ["IBM", "GOOG", "YHOO", "GOOG", "GOOG"]

    def test_example_queries_parse(self):
        for query in CLIENTELE_QUERIES.values():
            parse_xpath(query)

    def test_paper_fragmentation_shape(self):
        tree = clientele_example_tree()
        fragmentation = clientele_paper_fragmentation(tree)
        fragmentation.validate()
        assert len(fragmentation) == 5
        root_tags = sorted(
            fragmentation[fid].root.tag for fid in fragmentation.fragment_ids() if fid != "F0"
        )
        assert root_tags == ["broker", "broker", "market", "market"]
        # One market fragment is nested inside a broker fragment (Anna's), the
        # other hangs directly off the root fragment (Kim's).
        depths = sorted(
            fragmentation.depth(fid)
            for fid in fragmentation.fragment_ids()
            if fragmentation[fid].root.tag == "market"
        )
        assert depths == [1, 2]
