"""Multi-tenant workload generation: naming, namespacing, determinism."""

import pytest

from repro.workloads.multidoc import MultiDocumentWorkload, build_tenants


def test_build_tenants_names_and_namespaced_sites():
    tenants = build_tenants(3, total_bytes=8_000, seed=5)
    assert [tenant.name for tenant in tenants] == ["doc0", "doc1", "doc2"]
    for tenant in tenants:
        assert all(
            site.startswith(f"{tenant.name}/")
            for site in tenant.placement.values()
        )
    # distinct seeds produce distinct documents
    sizes = {tenant.scenario.tree.size() for tenant in tenants}
    assert len(sizes) > 1 or len(tenants) == 1


def test_build_tenants_validates_count():
    with pytest.raises(ValueError):
        build_tenants(0)


def test_streams_are_deterministic_across_regeneration():
    def trace():
        tenants = build_tenants(2, total_bytes=8_000, seed=7)
        workload = MultiDocumentWorkload(tenants, write_ratio=0.3, seed=19)
        ops = []
        for name, op in workload.ops(15):
            ops.append((name, op.kind, op.query or op.mutation.__class__.__name__))
        return ops

    first, second = trace(), trace()
    assert first == second
    # round-robin tagging: every tenant appears, interleaved
    names = [name for name, _, _ in first]
    assert set(names) == {"doc0", "doc1"}
    assert names[0] != names[1]


def test_per_tenant_streams_differ():
    tenants = build_tenants(2, total_bytes=8_000, seed=7)
    workload = MultiDocumentWorkload(tenants, write_ratio=0.5, seed=3)
    kinds = {
        tenant.name: [workload.stream(tenant.name).next_op().kind for _ in range(12)]
        for tenant in tenants
    }
    # seeded per tenant: the same ratio but not the same coin flips
    assert kinds["doc0"] != kinds["doc1"]


def test_empty_tenant_list_rejected():
    with pytest.raises(ValueError):
        MultiDocumentWorkload([], write_ratio=0.1)
