"""Unit tests for the XMark-like document generator."""

import pytest

from repro.workloads.xmark import (
    DEFAULT_COMPONENT_RATIOS,
    SiteSpec,
    XMarkGenerator,
    generate_sites_document,
)
from repro.xmltree.serializer import serialize
from repro.xpath.centralized import evaluate_centralized


class TestSiteSpec:
    def test_from_bytes_scales_counts(self):
        small = SiteSpec.from_bytes(20_000)
        large = SiteSpec.from_bytes(200_000)
        assert large.people > small.people
        assert large.open_auctions > small.open_auctions
        assert sum(large.items_per_region.values()) > sum(small.items_per_region.values())

    def test_from_component_bytes_respects_zero_components(self):
        spec = SiteSpec.from_component_bytes(people_bytes=50_000)
        assert spec.people > 0
        assert spec.open_auctions == 0
        assert spec.closed_auctions == 0

    def test_per_region_byte_targets(self):
        spec = SiteSpec.from_component_bytes(regions_bytes={"namerica": 60_000, "asia": 6_000})
        assert spec.items_per_region["namerica"] > spec.items_per_region["asia"]
        assert spec.items_per_region["europe"] == 0

    def test_default_ratios_sum_to_one(self):
        assert sum(DEFAULT_COMPONENT_RATIOS.values()) == pytest.approx(1.0)


class TestGenerator:
    def test_deterministic_for_seed(self):
        spec = SiteSpec.from_bytes(30_000)
        first = serialize(generate_sites_document([spec], seed=4))
        second = serialize(generate_sites_document([spec], seed=4))
        assert first == second

    def test_different_seeds_differ(self):
        spec = SiteSpec.from_bytes(30_000)
        assert serialize(generate_sites_document([spec], seed=1)) != serialize(
            generate_sites_document([spec], seed=2)
        )

    def test_document_structure(self):
        tree = generate_sites_document([SiteSpec.from_bytes(30_000)] * 2, seed=0)
        assert tree.root.tag == "sites"
        sites = [child for child in tree.root.children if child.is_element]
        assert len(sites) == 2
        for site in sites:
            component_tags = [child.tag for child in site.element_children()]
            assert component_tags == [
                "regions", "categories", "people", "open_auctions", "closed_auctions",
            ]

    def test_generated_size_tracks_request(self):
        small = generate_sites_document([SiteSpec.from_bytes(20_000)], seed=0)
        large = generate_sites_document([SiteSpec.from_bytes(120_000)], seed=0)
        assert large.approximate_bytes() > 3 * small.approximate_bytes()
        # The byte estimate should be in the right ballpark (within 3x).
        assert 20_000 / 3 < small.approximate_bytes() < 20_000 * 3

    def test_paper_queries_find_data(self):
        tree = generate_sites_document([SiteSpec.from_bytes(60_000)], seed=0)
        assert evaluate_centralized(tree, "/sites/site/people/person").answer_ids
        assert evaluate_centralized(tree, "/sites/site/open_auctions//annotation").answer_ids
        assert evaluate_centralized(
            tree, '/sites/site/people/person[profile/age > 20 and address/country = "US"]/creditcard'
        ).answer_ids

    def test_person_fields(self):
        generator = XMarkGenerator(seed=1)
        person = generator.person()
        tags = {child.tag for child in person.element_children()}
        assert {"name", "emailaddress", "address", "profile"} <= tags
        age = person.find_first(lambda n: n.is_element and n.tag == "age")
        assert 18 <= age.numeric_value() <= 65

    def test_auction_annotations_present(self):
        generator = XMarkGenerator(seed=2)
        auction = generator.open_auction()
        assert auction.find_first(lambda n: n.is_element and n.tag == "annotation") is not None
