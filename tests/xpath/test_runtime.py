"""Unit tests for the shared per-node evaluation primitives."""

import pytest

from repro.booleans.formula import Var, is_false
from repro.xmltree.builder import element, text
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import compile_plan
from repro.xpath.runtime import (
    QualAggregate,
    apply_terminal_test,
    compute_qualifier_vectors,
    matches_tag,
    qualifier_values_for_selection,
    root_context_init_vector,
    selection_vector,
)


def plan_for(query: str):
    return compile_plan(parse_xpath(query), source=query)


class TestMatchesTag:
    def test_element_label(self):
        assert matches_tag(element("broker"), "broker")
        assert not matches_tag(element("broker"), "client")

    def test_wildcard_matches_any_element(self):
        assert matches_tag(element("anything"), None)

    def test_text_nodes_never_match(self):
        assert not matches_tag(text("hello"), None)
        assert not matches_tag(text("hello"), "hello")


class TestTerminalTests:
    def test_no_test_is_true(self):
        assert apply_terminal_test(element("x"), None) is True

    def test_text_comparison_case_insensitive_and_trimmed(self):
        node = element("country", "  US ")
        assert apply_terminal_test(node, ("text", "=", "us"))
        assert not apply_terminal_test(node, ("text", "=", "canada"))

    @pytest.mark.parametrize(
        "op,value,expected",
        [("=", 42.0, True), ("!=", 42.0, False), ("<", 50.0, True),
         ("<=", 42.0, True), (">", 42.0, False), (">=", 42.0, True)],
    )
    def test_numeric_comparisons(self, op, value, expected):
        node = element("qt", "42")
        assert apply_terminal_test(node, ("val", op, value)) is expected

    def test_currency_prefix_tolerated(self):
        assert apply_terminal_test(element("buy", "$374"), ("val", ">", 300.0))

    def test_non_numeric_text_fails_val(self):
        assert not apply_terminal_test(element("qt", "many"), ("val", ">", 0.0))

    def test_unknown_test_kind_rejected(self):
        with pytest.raises(ValueError):
            apply_terminal_test(element("x"), ("regex", "=", "x"))


class TestQualifierVectors:
    def test_leaf_node_vectors(self):
        plan = plan_for('a[b/text() = "hit"]')
        node = element("b", "hit")
        ex, head, desc = compute_qualifier_vectors(plan, node, QualAggregate(plan))
        # The node is a b with matching text: its HEAD entry for the b-item is true.
        assert any(value is True for value in head)
        assert qualifier_values_for_selection(plan, ex) == (False,)  # no b child of b

    def test_parent_aggregates_child_head(self):
        plan = plan_for('a[b/text() = "hit"]')
        child = element("b", "hit")
        _, child_head, child_desc = compute_qualifier_vectors(plan, child, QualAggregate(plan))
        aggregate = QualAggregate(plan)
        aggregate.add_child(plan, child_head, child_desc)
        parent = element("a")
        ex, _, _ = compute_qualifier_vectors(plan, parent, aggregate)
        assert qualifier_values_for_selection(plan, ex) == (True,)

    def test_descendant_item_uses_desc_vector(self):
        plan = plan_for("a[//flag]")
        leaf = element("flag")
        _, leaf_head, leaf_desc = compute_qualifier_vectors(plan, leaf, QualAggregate(plan))
        middle_aggregate = QualAggregate(plan)
        middle_aggregate.add_child(plan, leaf_head, leaf_desc)
        middle = element("wrapper")
        _, middle_head, middle_desc = compute_qualifier_vectors(plan, middle, middle_aggregate)
        top_aggregate = QualAggregate(plan)
        top_aggregate.add_child(plan, middle_head, middle_desc)
        top = element("a")
        ex, _, _ = compute_qualifier_vectors(plan, top, top_aggregate)
        assert qualifier_values_for_selection(plan, ex) == (True,)

    def test_residual_formulas_propagate_through_aggregate(self):
        plan = plan_for("a[b]")
        aggregate = QualAggregate(plan)
        head = [Var("qh:F1:%d" % i) for i in range(plan.n_items)]
        desc = [False] * plan.n_items
        aggregate.add_child(plan, head, desc)
        ex, _, _ = compute_qualifier_vectors(plan, element("a"), aggregate)
        (value,) = qualifier_values_for_selection(plan, ex)
        assert not isinstance(value, bool)


class TestSelectionVector:
    def test_child_chain(self):
        plan = plan_for("a/b")
        root_vector = selection_vector(plan, element("a"), root_context_init_vector(plan),
                                        is_context_root=True, qual_values=())
        # The root is the context; its own prefix entries are all false.
        assert root_vector == [True, False, False]
        child_vector = selection_vector(plan, element("a"), root_vector,
                                         is_context_root=False, qual_values=())
        assert child_vector == [False, True, False]
        grandchild = selection_vector(plan, element("b"), child_vector,
                                       is_context_root=False, qual_values=())
        assert grandchild[2] is True

    def test_descendant_step_carries_down(self):
        plan = plan_for("a//b")
        # Vector of an 'a' node: prefix "a" holds, and so does "a//" (the
        # descendant-or-self set contains the a node itself).
        a_vector = [False, True, True, False]
        deep = selection_vector(plan, element("x"), a_vector, False, ())
        assert deep[2] is True  # inside a's subtree
        deeper = selection_vector(plan, element("b"), deep, False, ())
        assert deeper[3] is True

    def test_qualifier_short_circuits_on_false_prefix(self):
        plan = plan_for("a[b]/c")
        vector = selection_vector(plan, element("z"), [True, False, False, False], False, (Var("q"),))
        assert is_false(vector[2])

    def test_qualifier_value_conjunction(self):
        plan = plan_for("a[b]/c")
        vector = selection_vector(plan, element("a"), [True, False, False, False], False, (Var("q"),))
        assert vector[2] == Var("q")

    def test_absolute_plan_context_vector(self):
        plan = plan_for("/a/b")
        init = root_context_init_vector(plan)
        assert init == [True, False, False]
        root_vector = selection_vector(plan, element("a"), init, is_context_root=False,
                                        qual_values=())
        assert root_vector[1] is True
