"""Unit tests for the random query generator."""

import pytest

from repro.xpath.centralized import evaluate_centralized
from repro.xpath.generator import GeneratorConfig, QueryGenerator
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath

from tests.conftest import RANDOM_TAGS, make_random_tree


class TestQueryGenerator:
    def test_requires_tags(self):
        with pytest.raises(ValueError):
            QueryGenerator([])

    def test_deterministic_for_seed(self):
        first = [str(q) for q in QueryGenerator(RANDOM_TAGS, seed=9).queries(10)]
        second = [str(q) for q in QueryGenerator(RANDOM_TAGS, seed=9).queries(10)]
        assert first == second

    def test_different_seeds_differ(self):
        a = [str(q) for q in QueryGenerator(RANDOM_TAGS, seed=1).queries(10)]
        b = [str(q) for q in QueryGenerator(RANDOM_TAGS, seed=2).queries(10)]
        assert a != b

    def test_generated_queries_are_well_formed(self):
        generator = QueryGenerator(RANDOM_TAGS, seed=3)
        for query in generator.queries(50):
            # They must survive printing, re-parsing, normalization and evaluation.
            reparsed = parse_xpath(str(query))
            normalize(reparsed)
            evaluate_centralized(make_random_tree(1), reparsed)

    def test_config_limits_respected(self):
        config = GeneratorConfig(
            max_selection_steps=1, qualifier_probability=0.0, descendant_probability=0.0
        )
        generator = QueryGenerator(RANDOM_TAGS, seed=5, config=config)
        for query in generator.queries(20):
            assert len(query.steps) == 1

    def test_uses_only_supplied_tags(self):
        generator = QueryGenerator(["only"], seed=4)
        for query in generator.queries(20):
            text = str(query)
            for token in text.replace("/", " ").split():
                if token.isidentifier():
                    assert token in ("only", "and", "or", "not", "text", "val")
