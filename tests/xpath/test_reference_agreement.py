"""The centralized evaluator against the naive reference evaluator.

The two implementations share no code beyond the terminal-test helper, so
agreement over random documents and random queries is strong evidence that
the vector-based semantics matches the declarative set semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xpath.centralized import evaluate_centralized
from repro.xpath.generator import GeneratorConfig, QueryGenerator
from repro.xpath.reference import reference_evaluate

from tests.conftest import RANDOM_TAGS, RANDOM_TEXTS, make_random_tree


def make_generator(seed: int) -> QueryGenerator:
    config = GeneratorConfig(text_values=RANDOM_TEXTS[:3], numbers=(5, 12, 50))
    return QueryGenerator(RANDOM_TAGS, seed=seed, config=config)


@pytest.mark.parametrize("seed", range(40))
def test_agreement_on_seeded_corpus(seed):
    """A deterministic corpus of 40 documents x 5 queries each."""
    tree = make_random_tree(seed)
    generator = make_generator(seed)
    for query in generator.queries(5):
        assert evaluate_centralized(tree, query).answer_ids == reference_evaluate(tree, query), (
            f"disagreement on seed={seed} query={query}"
        )


@settings(max_examples=60, deadline=None)
@given(tree_seed=st.integers(0, 10_000), query_seed=st.integers(0, 10_000))
def test_agreement_property(tree_seed, query_seed):
    tree = make_random_tree(tree_seed, max_nodes=40)
    generator = make_generator(query_seed)
    query = generator.query()
    assert evaluate_centralized(tree, query).answer_ids == reference_evaluate(tree, query)


@pytest.mark.parametrize(
    "query",
    [
        "a",
        "/a",
        "//a",
        "a/b/c",
        "a//b",
        "*/*",
        "a[b]",
        "a[not(b)]",
        'a[b = "alpha"]',
        "a[b > 5]",
        "a[b and c]/d",
        "a[b or not(c/d)]",
        "a[.//b]" if False else "a[//b]",
        "a[b[c]]",
        "//*[b]",
    ],
)
def test_agreement_on_query_shapes(query):
    """Every syntactic shape of the fragment X, over a fixed corpus."""
    for seed in range(10):
        tree = make_random_tree(seed)
        assert evaluate_centralized(tree, query).answer_ids == reference_evaluate(tree, query)
