"""Unit tests for the centralized evaluator on hand-checked documents."""

import pytest

from repro.xmltree.builder import element
from repro.xmltree.nodes import XMLTree
from repro.xpath.centralized import (
    evaluate_boolean_centralized,
    evaluate_centralized,
)
from repro.workloads.queries import CLIENTELE_QUERIES, clientele_example_tree


def tags_of(tree, result):
    return [tree.node(node_id).tag for node_id in result.answer_ids]


def texts_of(tree, result):
    return [tree.node(node_id).text() for node_id in result.answer_ids]


@pytest.fixture(scope="module")
def clientele():
    return clientele_example_tree()


class TestClienteleQueries:
    """The worked examples of the paper, checked against its prose."""

    def test_boolean_goog_query_is_true(self, clientele):
        assert evaluate_boolean_centralized(clientele, CLIENTELE_QUERIES["boolean_goog"])

    def test_boolean_query_for_missing_stock_is_false(self, clientele):
        assert not evaluate_boolean_centralized(clientele, '.[//stock/code/text() = "msft"]')

    def test_brokers_trading_goog(self, clientele):
        # All three brokers trade GOOG (Section 1's query Q').
        result = evaluate_centralized(clientele, CLIENTELE_QUERIES["brokers_goog"])
        assert texts_of(clientele, result) == ["E*trade", "Bache", "CIBC"]

    def test_brokers_trading_goog_but_not_yhoo(self, clientele):
        # Section 2.2's Q1: Bache also trades YHOO, so only E*trade and CIBC remain.
        result = evaluate_centralized(clientele, CLIENTELE_QUERIES["brokers_goog_not_yhoo"])
        assert texts_of(clientele, result) == ["E*trade", "CIBC"]

    def test_us_clients_trading_on_nasdaq(self, clientele):
        # Example 2.1 / 3.3: both US clients trade on NASDAQ; Lisa does not match.
        result = evaluate_centralized(clientele, CLIENTELE_QUERIES["us_nasdaq_brokers"])
        assert texts_of(clientele, result) == ["E*trade", "Bache"]

    def test_client_names(self, clientele):
        result = evaluate_centralized(clientele, CLIENTELE_QUERIES["client_names"])
        assert texts_of(clientele, result) == ["Anna", "Kim", "Lisa"]

    def test_value_comparison_on_prices(self, clientele):
        # Stocks bought above $375: Lisa's GOOG at $382 only.
        result = evaluate_centralized(clientele, "//stock[buy > 375]/code")
        assert texts_of(clientele, result) == ["GOOG"]
        assert len(evaluate_centralized(clientele, "//stock[buy > 30]").answer_ids) == 5

    def test_wildcard_steps(self, clientele):
        result = evaluate_centralized(clientele, "client/*/name")
        assert texts_of(clientele, result) == ["E*trade", "Bache", "CIBC"]

    def test_negated_value_comparison(self, clientele):
        result = evaluate_centralized(clientele, "//market[not(stock/qt >= 50)]/name")
        assert texts_of(clientele, result) == ["NASDAQ"]


class TestAnchoring:
    """Absolute vs relative queries (document node vs root element context)."""

    @pytest.fixture(scope="class")
    def tree(self):
        return XMLTree(
            element(
                "a",
                element("a", element("b", "deep")),
                element("b", "shallow"),
            )
        )

    def test_relative_child_steps_anchor_at_root_children(self, tree):
        result = evaluate_centralized(tree, "a/b")
        assert texts_of(tree, result) == ["deep"]

    def test_absolute_path_matches_root_element_first(self, tree):
        result = evaluate_centralized(tree, "/a/b")
        assert texts_of(tree, result) == ["shallow"]

    def test_absolute_descendant_includes_root_element(self, tree):
        assert len(evaluate_centralized(tree, "//a").answer_ids) == 2
        assert len(evaluate_centralized(tree, "/a/a").answer_ids) == 1

    def test_relative_self_step_selects_root(self, tree):
        result = evaluate_centralized(tree, ".")
        assert result.answer_ids == [tree.root.node_id]

    def test_absolute_mismatched_root_label_selects_nothing(self, tree):
        assert evaluate_centralized(tree, "/b").answer_ids == []


class TestEdgeCases:
    def test_empty_answer(self, ):
        tree = XMLTree(element("root", element("x")))
        assert evaluate_centralized(tree, "y/z").answer_ids == []

    def test_answers_are_sorted_in_document_order(self):
        tree = XMLTree(element("r", element("x"), element("y", element("x")), element("x")))
        result = evaluate_centralized(tree, "//x")
        assert result.answer_ids == sorted(result.answer_ids)
        assert len(result) == 3

    def test_result_container_protocol(self):
        tree = XMLTree(element("r", element("x")))
        result = evaluate_centralized(tree, "x")
        assert list(result) == result.answer_ids
        assert result.answer_ids[0] in result
        assert result.operations > 0
        assert "answers" in repr(result)

    def test_accepts_precompiled_plan_and_path(self):
        from repro.xpath.parser import parse_xpath
        from repro.xpath.plan import compile_plan

        tree = XMLTree(element("r", element("x", "1")))
        path = parse_xpath("x")
        plan = compile_plan(path)
        assert evaluate_centralized(tree, path).answer_ids == [1]
        assert evaluate_centralized(tree, plan).answer_ids == [1]

    def test_text_comparison_is_case_insensitive(self):
        tree = XMLTree(element("r", element("c", element("country", "US"))))
        assert evaluate_centralized(tree, 'c[country = "us"]').answer_ids
        assert evaluate_centralized(tree, 'c[country = "US"]').answer_ids

    def test_numeric_comparison_on_non_numeric_text_is_false(self):
        tree = XMLTree(element("r", element("c", element("age", "unknown"))))
        assert not evaluate_centralized(tree, "c[age > 3]").answer_ids

    def test_qualifier_scope_is_the_subtree(self):
        # The qualifier on the first step must not see siblings.
        tree = XMLTree(
            element("r", element("a", element("flag")), element("b"))
        )
        assert not evaluate_centralized(tree, "b[flag]").answer_ids
        assert evaluate_centralized(tree, "a[flag]").answer_ids
