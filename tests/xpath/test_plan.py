"""Unit tests for query-plan compilation (the SVect/QVect analogue)."""

import pytest

from repro.booleans.formula import Var
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import (
    CHILD,
    DESC,
    EMPTY,
    SELFQUAL,
    compile_plan,
    evaluate_qual_expr,
)
from repro.workloads.queries import PAPER_QUERIES


def plan_for(query: str):
    return compile_plan(parse_xpath(query), source=query)


class TestSelectionPlan:
    def test_simple_child_steps(self):
        plan = plan_for("client/broker/name")
        assert [step.kind for step in plan.selection] == [CHILD, CHILD, CHILD]
        assert [step.tag for step in plan.selection] == ["client", "broker", "name"]
        assert plan.n_steps == 3
        assert not plan.has_qualifiers

    def test_wildcard_step_has_no_tag(self):
        plan = plan_for("a/*/b")
        assert plan.selection[1].kind == CHILD and plan.selection[1].tag is None

    def test_descendant_and_qualifier_steps(self):
        plan = plan_for("a//b[c]/d")
        kinds = [step.kind for step in plan.selection]
        assert kinds == [CHILD, DESC, CHILD, SELFQUAL, CHILD]
        assert plan.has_qualifiers
        assert plan.has_descendant_axis
        assert plan.qualifier_positions() == [3]

    def test_selection_label_path_strikes_qualifiers(self):
        plan = plan_for('person[age > 3]/creditcard')
        assert plan.selection_label_path() == ["person", "creditcard"]

    def test_absolute_flag(self):
        assert plan_for("/a/b").absolute
        assert not plan_for("a/b").absolute

    def test_describe_mentions_source(self):
        plan = plan_for(PAPER_QUERIES["Q3"])
        text = plan.describe()
        assert "person" in text and "qualifier items" in text


class TestQualifierItems:
    def test_no_items_without_qualifiers(self):
        assert plan_for("a/b//c").n_items == 0

    def test_items_are_topologically_ordered(self):
        plan = plan_for('a[b/c/text() = "x" and not(//d)]')
        for item in plan.items:
            if item.rest is not None:
                assert item.rest < item.item_id

    def test_items_deduplicated(self):
        # The same path condition appears twice; items must be shared.
        single = plan_for("a[b/c]")
        double = plan_for("a[b/c and b/c]")
        assert double.n_items == single.n_items

    def test_head_and_desc_item_classification(self):
        plan = plan_for('a[//b/c/text() = "x"]')
        kinds = {item.item_id: item.kind for item in plan.items}
        for item_id in plan.head_item_ids:
            assert kinds[item_id] == CHILD
        for item_id in plan.desc_item_ids:
            # DESC-tracked items are the continuations of // steps.
            assert kinds[item_id] in (CHILD, EMPTY, SELFQUAL, DESC)
        assert plan.desc_item_ids

    def test_terminal_tests_recorded(self):
        plan = plan_for('a[b/text() = "US" and c > 5]')
        tests = [item.test for item in plan.items if item.kind == EMPTY and item.test]
        assert ("text", "=", "us") in tests
        assert ("val", ">", 5.0) in tests

    def test_example_21_vector_sizes_are_linear_in_query(self):
        # The paper's Example 2.1: SVect has 3 entries, QVect has 9.
        query = 'client[country/text() = "us"]/broker[market/name/text() = "nasdaq"]/name'
        plan = plan_for(query)
        selection_children = [s for s in plan.selection if s.kind == CHILD]
        assert len(selection_children) == 3
        assert plan.n_items <= 2 * len(query)

    def test_item_describe_is_readable(self):
        plan = plan_for('a[b/c/text() = "x"]')
        for item in plan.items:
            assert isinstance(item.describe(), str) and item.describe()


class TestQualExprEvaluation:
    def test_leaf_lookup(self):
        plan = plan_for("a[b]")
        qual = next(s.qual for s in plan.selection if s.kind == SELFQUAL)
        ex = [False] * plan.n_items
        assert evaluate_qual_expr(qual, ex) is False
        ex_true = [True] * plan.n_items
        assert evaluate_qual_expr(qual, ex_true) is True

    def test_boolean_combination(self):
        plan = plan_for("a[b and not(c)]")
        qual = next(s.qual for s in plan.selection if s.kind == SELFQUAL)
        # Find the item ids of the two leaf paths to control them separately.
        values = [True] * plan.n_items
        assert evaluate_qual_expr(qual, values) is False  # not(c) is false
        values_false = [False] * plan.n_items
        assert evaluate_qual_expr(qual, values_false) is False  # b is false

    def test_residual_formula_propagates(self):
        plan = plan_for("a[b]")
        qual = next(s.qual for s in plan.selection if s.kind == SELFQUAL)
        ex = [Var("u")] * plan.n_items
        result = evaluate_qual_expr(qual, ex)
        assert result == Var("u")

    def test_unknown_expr_kind_rejected(self):
        with pytest.raises(Exception):
            evaluate_qual_expr(("xor", ()), [])
