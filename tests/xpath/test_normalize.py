"""Unit tests for normalization into the paper's normal form."""

from repro.xpath.ast import (
    AndQual,
    ChildStep,
    DescendantStep,
    PathExistsQual,
    QualifiedStep,
    SelfStep,
)
from repro.xpath.normalize import normalize, normalize_qualifier, strip_qualifiers
from repro.xpath.parser import parse_xpath


class TestNormalize:
    def test_self_steps_dropped(self):
        path = normalize(parse_xpath("./a/./b"))
        assert all(not isinstance(step, SelfStep) for step in path.steps)
        assert len(path.steps) == 2

    def test_consecutive_descendants_collapse(self):
        raw = parse_xpath("a//b")
        doubled = type(raw)(
            (raw.steps[0], DescendantStep(), DescendantStep(), raw.steps[2]), raw.absolute
        )
        assert len(normalize(doubled).steps) == 3

    def test_consecutive_qualifiers_merge_with_and(self):
        path = normalize(parse_xpath("a[b][c]"))
        qualified = [step for step in path.steps if isinstance(step, QualifiedStep)]
        assert len(qualified) == 1
        assert isinstance(qualified[0].qualifier, AndQual)

    def test_qualifier_after_self_step(self):
        path = normalize(parse_xpath(".[a]/b"))
        assert isinstance(path.steps[0], QualifiedStep)
        assert isinstance(path.steps[1], ChildStep)

    def test_absolute_flag_preserved(self):
        assert normalize(parse_xpath("/a/b")).absolute
        assert not normalize(parse_xpath("a/b")).absolute

    def test_qualifier_paths_normalized_recursively(self):
        path = normalize(parse_xpath("a[./b/./c]"))
        qualifier = path.steps[1].qualifier
        assert isinstance(qualifier, PathExistsQual)
        assert len(qualifier.path.steps) == 2

    def test_idempotent(self):
        for query in ["a[b][c]/d", "/x//y[z > 3]", ".[a and b]"]:
            once = normalize(parse_xpath(query))
            assert normalize(once) == once


class TestNormalizeQualifier:
    def test_nested_boolean_structure_preserved(self):
        qualifier = parse_xpath("x[not(a and (b or c))]").steps[1].qualifier
        normalized = normalize_qualifier(qualifier)
        assert type(normalized) is type(qualifier)

    def test_comparison_paths_normalized(self):
        qualifier = parse_xpath("x[./a/./b > 3]").steps[1].qualifier
        normalized = normalize_qualifier(qualifier)
        assert len(normalized.path.steps) == 2


class TestStripQualifiers:
    def test_selection_path_of_paper_q1_example(self):
        # Example 2.1's selection path is client/broker/name.
        query = 'client[country/text() = "us"]/broker[market/name/text() = "nasdaq"]/name'
        stripped = strip_qualifiers(parse_xpath(query))
        tags = [step.test.tag for step in stripped.steps]
        assert tags == ["client", "broker", "name"]

    def test_descendants_survive_stripping(self):
        stripped = strip_qualifiers(parse_xpath("//broker[x]/name"))
        assert isinstance(stripped.steps[0], DescendantStep)
        assert len(stripped.steps) == 3
        assert stripped.absolute
