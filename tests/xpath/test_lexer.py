"""Unit tests for the XPath tokenizer."""

import pytest

from repro.xpath.errors import XPathSyntaxError
from repro.xpath.lexer import TokenKind, tokenize


def kinds(query: str) -> list[str]:
    return [token.kind for token in tokenize(query)]


def values(query: str) -> list[str]:
    return [token.value for token in tokenize(query) if token.kind != TokenKind.EOF]


class TestTokenKinds:
    def test_simple_path(self):
        assert kinds("a/b") == [TokenKind.NAME, TokenKind.SLASH, TokenKind.NAME, TokenKind.EOF]

    def test_double_slash(self):
        assert kinds("a//b")[1] == TokenKind.DSLASH

    def test_brackets_and_parens(self):
        assert kinds("a[not(b)]") == [
            TokenKind.NAME, TokenKind.LBRACKET, TokenKind.NAME, TokenKind.LPAREN,
            TokenKind.NAME, TokenKind.RPAREN, TokenKind.RBRACKET, TokenKind.EOF,
        ]

    def test_star_and_dot(self):
        assert kinds("*/.")[0] == TokenKind.STAR
        assert kinds("./a")[0] == TokenKind.DOT

    def test_strings_single_and_double_quotes(self):
        assert values('a = "US"')[-1] == "US"
        assert values("a = 'US'")[-1] == "US"

    def test_numbers(self):
        tokens = tokenize("a > 20")
        assert tokens[2].kind == TokenKind.NUMBER and tokens[2].value == "20"
        assert tokenize("a > 3.5")[2].value == "3.5"
        assert tokenize("a > -4")[2].value == "-4"

    def test_comparison_operators(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            tokens = tokenize(f"a {op} 1")
            assert tokens[1].kind == TokenKind.OP and tokens[1].value == op

    def test_double_equals_treated_as_equals(self):
        assert tokenize("a == 'x'")[1].value == "="

    def test_whitespace_ignored(self):
        assert kinds("  a  /  b  ") == kinds("a/b")

    def test_names_with_punctuation(self):
        assert values("open_auctions/item-2/ns:tag")[0] == "open_auctions"
        assert "item-2" in values("open_auctions/item-2/ns:tag")

    def test_positions_recorded(self):
        tokens = tokenize("ab/cd")
        assert tokens[0].position == 0
        assert tokens[2].position == 3


class TestLexerErrors:
    @pytest.mark.parametrize("query", ["a = 'unterminated", "a ! b", "a # b"])
    def test_bad_input_rejected(self, query):
        with pytest.raises(XPathSyntaxError):
            tokenize(query)
