"""Unit tests for the XPath parser."""

import pytest

from repro.xpath.ast import (
    AndQual,
    ChildStep,
    DescendantStep,
    LabelTest,
    NotQual,
    OrQual,
    PathExistsQual,
    QualifiedStep,
    SelfStep,
    TextCompareQual,
    ValCompareQual,
    WildcardTest,
)
from repro.xpath.errors import XPathSyntaxError
from repro.xpath.parser import parse_xpath
from repro.workloads.queries import PAPER_QUERIES


class TestSelectionPaths:
    def test_relative_child_path(self):
        path = parse_xpath("client/broker/name")
        assert not path.absolute
        assert [step.test.tag for step in path.steps] == ["client", "broker", "name"]

    def test_absolute_path(self):
        path = parse_xpath("/sites/site")
        assert path.absolute
        assert len(path.steps) == 2

    def test_leading_descendant_is_absolute(self):
        path = parse_xpath("//broker")
        assert path.absolute
        assert isinstance(path.steps[0], DescendantStep)
        assert isinstance(path.steps[1], ChildStep)

    def test_inner_descendant(self):
        path = parse_xpath("a//b")
        assert isinstance(path.steps[1], DescendantStep)

    def test_wildcard_and_self(self):
        path = parse_xpath("./*/name")
        assert isinstance(path.steps[0], SelfStep)
        assert isinstance(path.steps[1].test, WildcardTest)

    def test_trailing_descendant(self):
        path = parse_xpath("a//")
        assert isinstance(path.steps[-1], DescendantStep)

    def test_str_round_trip_reparses(self):
        for query in ["client/broker/name", "/sites//people/person", "a[b]/c", "//x[y = '1']"]:
            rendered = str(parse_xpath(query))
            assert str(parse_xpath(rendered)) == rendered


class TestQualifiers:
    def test_path_exists_qualifier(self):
        path = parse_xpath("broker[market]")
        qualifier = path.steps[1].qualifier
        assert isinstance(qualifier, PathExistsQual)
        assert qualifier.path.steps[0].test.tag == "market"

    def test_text_comparison_explicit(self):
        path = parse_xpath('broker[name/text() = "Bache"]')
        qualifier = path.steps[1].qualifier
        assert isinstance(qualifier, TextCompareQual)
        assert qualifier.value == "Bache"

    def test_text_comparison_sugar(self):
        qualifier = parse_xpath('person[address/country = "US"]').steps[1].qualifier
        assert isinstance(qualifier, TextCompareQual)

    def test_text_not_equal(self):
        qualifier = parse_xpath('a[b/text() != "x"]').steps[1].qualifier
        assert isinstance(qualifier, NotQual)
        assert isinstance(qualifier.operand, TextCompareQual)

    def test_val_comparison_explicit_and_sugar(self):
        explicit = parse_xpath("person[profile/age/val() > 20]").steps[1].qualifier
        sugar = parse_xpath("person[profile/age > 20]").steps[1].qualifier
        for qualifier in (explicit, sugar):
            assert isinstance(qualifier, ValCompareQual)
            assert qualifier.op == ">" and qualifier.number == 20

    def test_boolean_connectives(self):
        qualifier = parse_xpath('a[b and (c or not(d))]').steps[1].qualifier
        assert isinstance(qualifier, AndQual)
        assert isinstance(qualifier.right, OrQual)
        assert isinstance(qualifier.right.right, NotQual)

    def test_descendant_inside_qualifier(self):
        qualifier = parse_xpath('broker[//stock/code/text() = "goog"]').steps[1].qualifier
        assert isinstance(qualifier, TextCompareQual)
        assert isinstance(qualifier.path.steps[0], DescendantStep)

    def test_leading_slash_inside_qualifier_is_relative(self):
        # The paper writes "[/address/country=...]"; the slash is tolerated.
        qualifier = parse_xpath('person[/address/country = "US"]').steps[1].qualifier
        assert isinstance(qualifier, TextCompareQual)
        assert qualifier.path.steps[0].test.tag == "address"

    def test_nested_qualifier(self):
        path = parse_xpath("a[b[c > 1]/d]")
        outer = path.steps[1].qualifier
        assert isinstance(outer, PathExistsQual)
        nested = [s for s in outer.path.steps if isinstance(s, QualifiedStep)]
        assert len(nested) == 1

    def test_multiple_qualifiers_on_one_step(self):
        path = parse_xpath("a[b][c]")
        assert sum(isinstance(step, QualifiedStep) for step in path.steps) == 2

    def test_boolean_root_query(self):
        path = parse_xpath('.[//stock/code/text() = "goog"]')
        assert isinstance(path.steps[0], SelfStep)
        assert isinstance(path.steps[1], QualifiedStep)


class TestPaperQueries:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_paper_queries_parse(self, name):
        path = parse_xpath(PAPER_QUERIES[name])
        assert path.absolute
        assert path.steps

    def test_q3_structure(self):
        path = parse_xpath(PAPER_QUERIES["Q3"])
        tags = [step.test.tag for step in path.steps if isinstance(step, ChildStep)]
        assert tags == ["sites", "site", "people", "person", "creditcard"]
        qualifier = next(s.qualifier for s in path.steps if isinstance(s, QualifiedStep))
        assert isinstance(qualifier, AndQual)


class TestParserErrors:
    @pytest.mark.parametrize(
        "query",
        [
            "",
            "   ",
            "a/",
            "/",
            "a[b",
            "a]b",
            "a[and]",
            "a[not b]",
            "a[b = ]",
            'a[text() > "x"]',
            "a[b/text() = 5]",
            "a[b/val() = 'x']",
            "a b",
            "a[b/text() < 'x']",
        ],
    )
    def test_malformed_queries_rejected(self, query):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(query)

    def test_error_points_at_position(self):
        try:
            parse_xpath("a[b = ]")
        except XPathSyntaxError as error:
            assert error.position is not None
        else:  # pragma: no cover
            pytest.fail("expected a syntax error")
