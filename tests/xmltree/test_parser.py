"""Unit tests for the XML parser."""

import pytest

from repro.xmltree.errors import XMLSyntaxError
from repro.xmltree.parser import parse_xml
from repro.xmltree.serializer import serialize


class TestBasicParsing:
    def test_simple_document(self):
        tree = parse_xml("<a><b>hi</b><c/></a>")
        assert tree.root.tag == "a"
        assert [c.tag for c in tree.root.element_children()] == ["b", "c"]
        assert tree.root.children[0].text() == "hi"

    def test_whitespace_between_elements_dropped(self):
        tree = parse_xml("<a>\n  <b>x</b>\n  <c>y</c>\n</a>")
        assert tree.size() == 5  # a, b, text, c, text

    def test_whitespace_kept_on_request(self):
        tree = parse_xml("<a> <b>x</b></a>", keep_whitespace_text=True)
        assert any(node.is_text and node.value == " " for node in tree.iter_nodes())

    def test_attributes_are_ignored(self):
        tree = parse_xml('<item id="42" status="new"><name>x</name></item>')
        assert tree.root.tag == "item"
        assert tree.root.children[0].tag == "name"

    def test_attribute_value_containing_gt(self):
        tree = parse_xml('<a note="5 > 3"><b/></a>')
        assert tree.root.children[0].tag == "b"

    def test_self_closing_tags(self):
        tree = parse_xml("<a><b/><c/></a>")
        assert [c.tag for c in tree.root.children] == ["b", "c"]

    def test_declaration_comment_cdata(self):
        doc = (
            '<?xml version="1.0"?><!-- top --><root><!-- inner -->'
            "<item><![CDATA[5 < 6 & more]]></item></root>"
        )
        tree = parse_xml(doc)
        assert tree.root.children[0].text() == "5 < 6 & more"

    def test_entities_unescaped(self):
        tree = parse_xml("<a>&lt;tag&gt; &amp; &quot;x&quot; &#65;&#x42;</a>")
        assert tree.root.text() == '<tag> & "x" AB'

    def test_doctype_skipped(self):
        tree = parse_xml("<!DOCTYPE sites><sites><site/></sites>")
        assert tree.root.tag == "sites"


class TestErrors:
    @pytest.mark.parametrize(
        "document",
        [
            "",
            "   ",
            "<a><b></a>",
            "<a>",
            "<a></a><b></b>",
            "<a><b></b></a>trailing text",
            "<a attr=unquoted></a>",
            "<a><![CDATA[unterminated</a>",
            "<>bad</>",
        ],
    )
    def test_malformed_documents_rejected(self, document):
        with pytest.raises(XMLSyntaxError):
            parse_xml(document)

    def test_error_carries_position(self):
        try:
            parse_xml("<a><b></c></a>")
        except XMLSyntaxError as error:
            assert error.position is not None
        else:  # pragma: no cover
            pytest.fail("expected a syntax error")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "document",
        [
            "<a><b>hello</b><c><d>1</d><d>2</d></c></a>",
            "<clientele><client><name>Anna</name><country>US</country></client></clientele>",
            "<x><y/><z>5 &amp; 6</z></x>",
        ],
    )
    def test_parse_serialize_parse_is_stable(self, document):
        tree1 = parse_xml(document)
        text1 = serialize(tree1)
        tree2 = parse_xml(text1)
        assert serialize(tree2) == text1
        assert tree2.size() == tree1.size()

    def test_pretty_serialization_reparses_identically(self):
        tree = parse_xml("<a><b>hi</b><c><d>x</d></c></a>")
        pretty = serialize(tree, pretty=True, declaration=True)
        assert "  " in pretty and pretty.startswith("<?xml")
        assert parse_xml(pretty).element_count() == tree.element_count()
