"""FlatFragment: the columnar encoding reproduces the object tree exactly."""

import random

import pytest

from repro.fragments.fragment_tree import build_fragmentation
from repro.workloads.scenarios import build_ft2
from repro.xmltree.builder import element, text
from repro.xmltree.flat import KIND_ELEMENT, KIND_TEXT, build_flat_fragment
from repro.xmltree.nodes import XMLTree


def random_tree(rng: random.Random, max_nodes: int = 60) -> XMLTree:
    """A random element/text tree with repeated tags and mixed payloads."""
    tags = ["a", "b", "c", "item", "price"]
    root = element(rng.choice(tags))
    nodes = [root]
    for _ in range(rng.randrange(1, max_nodes)):
        parent = rng.choice(nodes)
        if rng.random() < 0.3:
            parent.append(text(rng.choice(["x", " 42 ", "$13.5", "Hello", ""]) or "?"))
        else:
            child = element(rng.choice(tags))
            parent.append(child)
            nodes.append(child)
    return XMLTree(root)


def random_fragmentation(rng: random.Random, tree: XMLTree):
    """Cut at a random subset of non-root elements (possibly nested)."""
    candidates = [
        node.node_id for node in tree.iter_elements() if node is not tree.root
    ]
    rng.shuffle(candidates)
    cut = candidates[: rng.randrange(0, min(len(candidates), 6) + 1)]
    return build_fragmentation(tree, cut)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(25))
    def test_preorder_node_ids_match_object_tree_on_random_trees(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng)
        fragmentation = random_fragmentation(rng, tree)
        for fragment_id in fragmentation.fragment_ids():
            fragment = fragmentation[fragment_id]
            flat = build_flat_fragment(fragment)
            expected = [node.node_id for node in fragment.iter_span()]
            assert flat.preorder_node_ids() == expected

    def test_preorder_node_ids_match_on_xmark(self):
        scenario = build_ft2(total_bytes=30_000, seed=3)
        for fragment_id in scenario.fragmentation.fragment_ids():
            fragment = scenario.fragmentation[fragment_id]
            flat = scenario.fragmentation.flat(fragment_id)
            expected = [node.node_id for node in fragment.iter_span()]
            assert flat.preorder_node_ids() == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_columns_mirror_node_attributes(self, seed):
        rng = random.Random(1000 + seed)
        tree = random_tree(rng)
        fragmentation = random_fragmentation(rng, tree)
        for fragment_id in fragmentation.fragment_ids():
            fragment = fragmentation[fragment_id]
            flat = build_flat_fragment(fragment)
            span = list(fragment.iter_span())
            assert flat.n == len(span)
            for index, node in enumerate(span):
                if node.is_element:
                    assert flat.kind[index] == KIND_ELEMENT
                    assert flat.tags[flat.tag_id[index]] == node.tag
                    assert flat.text_norm[index] == node.text().strip().lower()
                    assert flat.numeric[index] == node.numeric_value()
                else:
                    assert flat.kind[index] == KIND_TEXT
                    assert flat.tag_id[index] == -1
                # Parent pointers stay inside the span and point correctly.
                parent_index = flat.parent[index]
                if index == 0:
                    assert parent_index == -1
                else:
                    assert span[parent_index] is node.parent

    @pytest.mark.parametrize("seed", range(10))
    def test_subtree_sizes_and_children(self, seed):
        rng = random.Random(2000 + seed)
        tree = random_tree(rng)
        fragmentation = random_fragmentation(rng, tree)
        for fragment_id in fragmentation.fragment_ids():
            fragment = fragmentation[fragment_id]
            flat = build_flat_fragment(fragment)
            span = list(fragment.iter_span())
            position = {id(node): index for index, node in enumerate(span)}
            # Independent subtree sizes: every span node credits each of its
            # span ancestors (and itself) with one node.
            expected_sizes = [0] * len(span)
            for node in span:
                current = node
                while True:
                    expected_sizes[position[id(current)]] += 1
                    if current is fragment.root:
                        break
                    current = current.parent
            assert flat.subtree_size == expected_sizes
            for index, node in enumerate(span):
                children = [span[child] for child in flat.element_children(index)]
                assert children == fragment.real_element_children(node)

    def test_virtual_children_recorded_in_document_order(self):
        rng = random.Random(77)
        tree = random_tree(rng, max_nodes=80)
        fragmentation = random_fragmentation(rng, tree)
        for fragment_id in fragmentation.fragment_ids():
            fragment = fragmentation[fragment_id]
            flat = build_flat_fragment(fragment)
            span = list(fragment.iter_span())
            seen = {}
            for index, node in enumerate(span):
                virtuals = [v.fragment_id for v in fragment.virtual_children_of(node)]
                if virtuals:
                    seen[index] = tuple(virtuals)
            assert flat.virtual_at == seen
            assert flat.virtual_indices == sorted(seen)


class TestCache:
    def test_flat_is_cached_per_fragment(self):
        scenario = build_ft2(total_bytes=15_000, seed=2)
        fragmentation = scenario.fragmentation
        fragment_id = fragmentation.fragment_ids()[0]
        assert fragmentation.flat(fragment_id) is fragmentation.flat(fragment_id)

    def test_version_refresh_drops_stale_encodings(self):
        scenario = build_ft2(total_bytes=15_000, seed=2)
        fragmentation = scenario.fragmentation
        fragment_id = fragmentation.fragment_ids()[0]
        before = fragmentation.flat(fragment_id)
        # In-place edit the fingerprint cannot see until refreshed.
        for node in fragmentation.tree.root.iter_subtree():
            if not node.is_element:
                node.value = (node.value or "") + "!"
                break
        assert fragmentation.flat(fragment_id) is before  # not yet refreshed
        old_version = fragmentation.content_version()
        assert fragmentation.content_version(refresh=True) != old_version
        assert fragmentation.flat(fragment_id) is not before

    def test_invalidate_flat_forces_rebuild(self):
        scenario = build_ft2(total_bytes=15_000, seed=2)
        fragmentation = scenario.fragmentation
        fragment_id = fragmentation.fragment_ids()[0]
        before = fragmentation.flat(fragment_id)
        fragmentation.invalidate_flat()
        assert fragmentation.flat(fragment_id) is not before
