"""Unit tests for the XML node/tree model."""

import pytest

from repro.xmltree.builder import element, text
from repro.xmltree.errors import XMLTreeError
from repro.xmltree.nodes import ELEMENT, TEXT, XMLNode, XMLTree


@pytest.fixture
def sample_tree() -> XMLTree:
    return XMLTree(
        element(
            "catalog",
            element("book", element("title", "Dune"), element("price", "9.50")),
            element("book", element("title", "Hyperion"), element("price", "$12")),
            element("note", "restocked"),
        )
    )


class TestNodeConstruction:
    def test_element_requires_tag(self):
        with pytest.raises(XMLTreeError):
            XMLNode(ELEMENT)

    def test_text_requires_value(self):
        with pytest.raises(XMLTreeError):
            XMLNode(TEXT)

    def test_unknown_kind_rejected(self):
        with pytest.raises(XMLTreeError):
            XMLNode("attribute", tag="x")

    def test_text_nodes_cannot_have_children(self):
        with pytest.raises(XMLTreeError):
            text("hi").append(text("there"))

    def test_node_cannot_have_two_parents(self):
        child = element("x")
        element("a", child)
        with pytest.raises(XMLTreeError):
            element("b").append(child)


class TestNavigation:
    def test_labels(self, sample_tree):
        assert sample_tree.root.label == "catalog"
        first_text = next(n for n in sample_tree.iter_nodes() if n.is_text)
        assert first_text.label == "#text"

    def test_text_concatenates_direct_text_children(self, sample_tree):
        note = sample_tree.root.children[-1]
        assert note.text() == "restocked"
        assert sample_tree.root.text() == ""

    def test_numeric_value(self, sample_tree):
        prices = sample_tree.root.find_all(lambda n: n.is_element and n.tag == "price")
        assert prices[0].numeric_value() == pytest.approx(9.5)
        # Leading currency symbols are tolerated (the paper stores "$374").
        assert prices[1].numeric_value() == pytest.approx(12)
        titles = sample_tree.root.find_all(lambda n: n.is_element and n.tag == "title")
        assert titles[0].numeric_value() is None

    def test_iter_subtree_is_preorder(self, sample_tree):
        labels = [n.label for n in sample_tree.root.iter_subtree() if n.is_element]
        assert labels == ["catalog", "book", "title", "price", "book", "title", "price", "note"]

    def test_iter_descendants_excludes_self(self, sample_tree):
        descendants = list(sample_tree.root.iter_descendants())
        assert sample_tree.root not in descendants
        assert len(descendants) == sample_tree.size() - 1

    def test_ancestors_and_depth(self, sample_tree):
        title = sample_tree.root.find_first(lambda n: n.is_element and n.tag == "title")
        assert [a.label for a in title.ancestors()] == ["book", "catalog"]
        assert title.depth() == 2
        assert sample_tree.root.depth() == 0

    def test_root_path_labels(self, sample_tree):
        title = sample_tree.root.find_first(lambda n: n.is_element and n.tag == "title")
        assert title.root_path_labels() == ["catalog", "book", "title"]

    def test_subtree_size(self, sample_tree):
        book = sample_tree.root.children[0]
        # book + title + text + price + text
        assert book.subtree_size() == 5

    def test_element_children_filters_text(self, sample_tree):
        note = sample_tree.root.children[-1]
        assert list(note.element_children()) == []


class TestTree:
    def test_reindex_assigns_preorder_ids(self, sample_tree):
        ids = [node.node_id for node in sample_tree.iter_nodes()]
        assert ids == list(range(sample_tree.size()))

    def test_node_lookup(self, sample_tree):
        for node in sample_tree.iter_nodes():
            assert sample_tree.node(node.node_id) is node
        assert 0 in sample_tree
        assert 10_000 not in sample_tree

    def test_unknown_node_id_raises(self, sample_tree):
        with pytest.raises(XMLTreeError):
            sample_tree.node(99_999)

    def test_root_must_be_element(self):
        with pytest.raises(XMLTreeError):
            XMLTree(text("oops"))

    def test_root_must_not_have_parent(self):
        child = element("inner")
        element("outer", child)
        with pytest.raises(XMLTreeError):
            XMLTree(child)

    def test_counts(self, sample_tree):
        assert sample_tree.size() == 13
        assert sample_tree.element_count() == 8

    def test_approximate_bytes_positive_and_monotone(self, sample_tree):
        small = sample_tree.approximate_bytes()
        sample_tree.root.append(element("book", element("title", "Foundation")))
        sample_tree.reindex()
        assert sample_tree.approximate_bytes() > small


class TestIdAllocation:
    """Fresh-id registration for in-place mutations (repro.updates)."""

    def test_register_subtree_assigns_ids_beyond_the_preorder_range(self):
        tree = XMLTree(element("root", element("a"), element("b")))
        size = tree.size()
        graft = element("c", element("d", "payload"))
        graft.parent = tree.root
        tree.root.children.append(graft)
        count = tree.register_subtree(graft)
        assert count == 3
        assert tree.size() == size + 3
        ids = [node.node_id for node in graft.iter_subtree()]
        assert ids == [size, size + 1, size + 2]
        for node_id in ids:
            assert tree.node(node_id) is not None

    def test_retired_ids_are_never_reused(self):
        tree = XMLTree(element("root", element("a")))
        victim = tree.root.children[0]
        tree.root.children.remove(victim)
        victim.parent = None
        tree.unregister_subtree(victim)
        assert victim.node_id not in tree
        replacement = element("b")
        replacement.parent = tree.root
        tree.root.children.append(replacement)
        tree.register_subtree(replacement)
        assert replacement.node_id != victim.node_id

    def test_adopt_preassigned_ids_round_trips_sparse_ids(self):
        root = element("root", element("a"))
        root.node_id = 7
        root.children[0].node_id = 99
        tree = XMLTree(root, reindex=False)
        tree.adopt_preassigned_ids()
        assert tree.node(7) is root and tree.node(99) is root.children[0]
        assert tree.size() == 2
        # the fresh-id counter resumes past the highest adopted id
        graft = element("b")
        graft.parent = root
        root.children.append(graft)
        tree.register_subtree(graft)
        assert graft.node_id == 100

    def test_adopt_preassigned_ids_rejects_duplicates_and_unassigned(self):
        root = element("root", element("a"))
        root.node_id = 1
        root.children[0].node_id = 1
        with pytest.raises(XMLTreeError, match="duplicate"):
            XMLTree(root, reindex=False).adopt_preassigned_ids()
        fresh = element("root", element("a"))
        fresh.node_id = 0
        with pytest.raises(XMLTreeError, match="without an assigned id"):
            XMLTree(fresh, reindex=False).adopt_preassigned_ids()
