"""Unit tests for the programmatic tree builders."""

import pytest

from repro.xmltree.builder import TreeBuilder, element, text
from repro.xmltree.errors import XMLTreeError


class TestFunctionalConstructors:
    def test_strings_become_text_children(self):
        node = element("name", "Anna")
        assert len(node.children) == 1
        assert node.children[0].is_text
        assert node.text() == "Anna"

    def test_nested_elements(self):
        node = element("person", element("name", "Kim"), element("age", "30"))
        assert [child.tag for child in node.element_children()] == ["name", "age"]

    def test_invalid_child_type_rejected(self):
        with pytest.raises(XMLTreeError):
            element("x", 42)  # type: ignore[arg-type]


class TestTreeBuilder:
    def test_context_manager_style(self):
        builder = TreeBuilder()
        with builder.open("people"):
            with builder.open("person"):
                builder.leaf("name", "Anna")
                builder.leaf("age", "31")
            with builder.open("person"):
                builder.leaf("name", "Kim")
        tree = builder.tree()
        assert tree.root.tag == "people"
        assert tree.element_count() == 6

    def test_explicit_open_close(self):
        builder = TreeBuilder()
        builder.open("a")
        builder.add_text("hello")
        builder.close()
        tree = builder.tree()
        assert tree.root.text() == "hello"

    def test_leaf_without_value(self):
        builder = TreeBuilder()
        with builder.open("root"):
            builder.leaf("empty")
        tree = builder.tree()
        assert tree.root.children[0].children == []

    def test_add_subtree(self):
        builder = TreeBuilder()
        with builder.open("root"):
            builder.add_subtree(element("child", "x"))
        assert builder.tree().root.children[0].tag == "child"

    def test_unbalanced_open_rejected(self):
        builder = TreeBuilder()
        builder.open("a")
        with pytest.raises(XMLTreeError):
            builder.tree()

    def test_close_without_open_rejected(self):
        with pytest.raises(XMLTreeError):
            TreeBuilder().close()

    def test_two_roots_rejected(self):
        builder = TreeBuilder()
        with builder.open("first"):
            pass
        with pytest.raises(XMLTreeError):
            builder.open("second")

    def test_text_outside_element_rejected(self):
        with pytest.raises(XMLTreeError):
            TreeBuilder().add_text("orphan")

    def test_empty_builder_rejected(self):
        with pytest.raises(XMLTreeError):
            TreeBuilder().tree()
