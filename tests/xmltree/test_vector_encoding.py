"""VectorFragment: the numpy window encoding reproduces the object tree.

Property tests for the accelerator columns the ``vector`` engine scans:
``post = pre + size`` must delimit exactly the object tree's subtrees,
``level`` must equal the parent-chain depth, the per-tag CSR index must be
sorted and complete, and the whole encoding must be rebuilt (not patched)
when the flat cache turns over — via ``bump_epoch``, a content-version
refresh or ``invalidate_flat``.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.vector.encode import vector_fragment
from repro.fragments.fragment_tree import build_fragmentation
from repro.workloads.scenarios import build_ft2
from repro.xmltree.builder import element, text
from repro.xmltree.flat import KIND_ELEMENT, build_flat_fragment
from repro.xmltree.nodes import XMLTree


def random_tree(rng: random.Random, max_nodes: int = 60) -> XMLTree:
    """A random element/text tree with repeated tags and mixed payloads."""
    tags = ["a", "b", "c", "item", "price"]
    root = element(rng.choice(tags))
    nodes = [root]
    for _ in range(rng.randrange(1, max_nodes)):
        parent = rng.choice(nodes)
        if rng.random() < 0.3:
            parent.append(text(rng.choice(["x", " 42 ", "$13.5", "Hello", ""]) or "?"))
        else:
            child = element(rng.choice(tags))
            parent.append(child)
            nodes.append(child)
    return XMLTree(root)


def random_fragmentation(rng: random.Random, tree: XMLTree):
    """Cut at a random subset of non-root elements (possibly nested)."""
    candidates = [
        node.node_id for node in tree.iter_elements() if node is not tree.root
    ]
    rng.shuffle(candidates)
    cut = candidates[: rng.randrange(0, min(len(candidates), 6) + 1)]
    return build_fragmentation(tree, cut)


def span_depths(fragment):
    """Parent-chain depth below the fragment root, per span node."""
    depths = []
    for node in fragment.iter_span():
        depth = 0
        current = node
        while current is not fragment.root:
            current = current.parent
            depth += 1
        depths.append(depth)
    return depths


def assert_encoding_matches_object_tree(fragment, flat):
    vf = vector_fragment(flat)
    n = flat.n
    assert vf.n == n

    # pre is the flat index itself; post = pre + size delimits the subtree.
    assert vf.pre.tolist() == list(range(n))
    assert (vf.post == vf.pre + np.asarray(flat.subtree_size)).all()

    # Interval containment must coincide with the object tree's
    # ancestor-or-self relation over the span.
    span = list(fragment.iter_span())
    position = {id(node): index for index, node in enumerate(span)}
    post = vf.post.tolist()
    for j, node in enumerate(span):
        ancestors = {j}
        current = node
        while current is not fragment.root:
            current = current.parent
            ancestors.add(position[id(current)])
        for i in range(n):
            assert (i <= j < post[i]) == (i in ancestors), (i, j)

    # level agrees with the parent-chain depth.
    assert vf.level.tolist() == span_depths(fragment)

    # The per-tag index is sorted pre-order within each tag group and,
    # across all tags, covers exactly the element rows.
    covered = []
    for tid, tag in enumerate(flat.tags):
        rows = vf.rows_with_tag(tag).tolist()
        assert rows == sorted(rows)
        assert rows == [
            i for i in range(n)
            if flat.kind[i] == KIND_ELEMENT and flat.tag_id[i] == tid
        ]
        covered.extend(rows)
    assert vf.rows_with_tag("no-such-tag").tolist() == []
    assert sorted(covered) == vf.elem_idx.tolist()
    assert vf.rows_with_tag(None).tolist() == vf.elem_idx.tolist()


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(25))
    def test_window_columns_match_object_tree_on_random_trees(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng)
        fragmentation = random_fragmentation(rng, tree)
        for fragment_id in fragmentation.fragment_ids():
            fragment = fragmentation[fragment_id]
            flat = build_flat_fragment(fragment)
            assert_encoding_matches_object_tree(fragment, flat)

    def test_window_columns_match_on_xmark(self):
        scenario = build_ft2(total_bytes=30_000, seed=3)
        for fragment_id in scenario.fragmentation.fragment_ids():
            fragment = scenario.fragmentation[fragment_id]
            flat = scenario.fragmentation.flat(fragment_id)
            vf = vector_fragment(flat)
            assert (vf.post == vf.pre + np.asarray(flat.subtree_size)).all()
            assert vf.level.tolist() == span_depths(fragment)

    @pytest.mark.parametrize("seed", range(10))
    def test_window_primitives_match_brute_force(self, seed):
        """window_any_incl / cover_mask against their set definitions."""
        rng = random.Random(4000 + seed)
        tree = random_tree(rng)
        fragmentation = random_fragmentation(rng, tree)
        for fragment_id in fragmentation.fragment_ids():
            flat = build_flat_fragment(fragmentation[fragment_id])
            vf = vector_fragment(flat)
            n = flat.n
            post = vf.post.tolist()
            col = np.asarray([rng.random() < 0.3 for _ in range(n)])
            marked = sorted(i for i in range(n) if col[i])
            # Descendant-or-self aggregation: any marked row in the window?
            any_incl = [
                any(i <= m < post[i] for m in marked) for i in range(n)
            ]
            assert vf.window_any_incl(col).tolist() == any_incl
            # Ancestor-or-self-of-marked cover.
            cover = [
                any(m <= i < post[m] for m in marked) for i in range(n)
            ]
            assert vf.cover_mask(np.asarray(marked, dtype=np.int64)).tolist() == cover


class TestCacheTurnover:
    def test_vector_is_cached_per_flat(self):
        scenario = build_ft2(total_bytes=15_000, seed=2)
        fragmentation = scenario.fragmentation
        fragment_id = fragmentation.fragment_ids()[0]
        flat = fragmentation.flat(fragment_id)
        assert vector_fragment(flat) is vector_fragment(flat)

    def test_bump_epoch_rebuilds_only_that_fragments_encoding(self):
        scenario = build_ft2(total_bytes=15_000, seed=2)
        fragmentation = scenario.fragmentation
        touched, untouched = fragmentation.fragment_ids()[:2]
        vectors = {
            fid: vector_fragment(fragmentation.flat(fid))
            for fid in (touched, untouched)
        }
        # In-place edit inside the touched span, then record it.
        fragment = fragmentation[touched]
        for node in fragment.iter_span():
            if not node.is_element:
                node.value = (node.value or "") + "!"
                break
        fragmentation.bump_epoch(touched)
        rebuilt = vector_fragment(fragmentation.flat(touched))
        assert rebuilt is not vectors[touched]
        assert_encoding_matches_object_tree(fragment, fragmentation.flat(touched))
        # The untouched fragment keeps its flat, and with it its columns.
        assert vector_fragment(fragmentation.flat(untouched)) is vectors[untouched]

    def test_version_refresh_drops_stale_vector_columns(self):
        scenario = build_ft2(total_bytes=15_000, seed=2)
        fragmentation = scenario.fragmentation
        fragment_id = fragmentation.fragment_ids()[0]
        before = vector_fragment(fragmentation.flat(fragment_id))
        for node in fragmentation.tree.root.iter_subtree():
            if not node.is_element:
                node.value = (node.value or "") + "!"
                break
        # Not yet refreshed: still the cached columns.
        assert vector_fragment(fragmentation.flat(fragment_id)) is before
        old_version = fragmentation.content_version()
        assert fragmentation.content_version(refresh=True) != old_version
        after = vector_fragment(fragmentation.flat(fragment_id))
        assert after is not before
        assert_encoding_matches_object_tree(
            fragmentation[fragment_id], fragmentation.flat(fragment_id)
        )

    def test_invalidate_flat_forces_vector_rebuild(self):
        scenario = build_ft2(total_bytes=15_000, seed=2)
        fragmentation = scenario.fragmentation
        fragment_id = fragmentation.fragment_ids()[0]
        before = vector_fragment(fragmentation.flat(fragment_id))
        fragmentation.invalidate_flat()
        assert vector_fragment(fragmentation.flat(fragment_id)) is not before
