"""Unit tests for the ElementTree adapters."""

import xml.etree.ElementTree as ET

from repro.xmltree.builder import element
from repro.xmltree.etree_adapter import from_elementtree, to_elementtree
from repro.xmltree.nodes import XMLTree


class TestFromElementTree:
    def test_structure_and_text_preserved(self):
        source = ET.fromstring("<people><person><name>Anna</name></person><person/></people>")
        tree = from_elementtree(source)
        assert tree.root.tag == "people"
        assert tree.element_count() == 4
        name = tree.root.find_first(lambda n: n.is_element and n.tag == "name")
        assert name.text() == "Anna"

    def test_attributes_dropped(self):
        source = ET.fromstring('<a id="1"><b ref="x">v</b></a>')
        tree = from_elementtree(source)
        assert tree.element_count() == 2

    def test_tail_text_preserved(self):
        source = ET.fromstring("<a><b>x</b>tail</a>")
        tree = from_elementtree(source)
        texts = [node.value for node in tree.iter_nodes() if node.is_text]
        assert texts == ["x", "tail"]

    def test_accepts_elementtree_document(self):
        document = ET.ElementTree(ET.fromstring("<a><b/></a>"))
        assert from_elementtree(document).root.tag == "a"


class TestToElementTree:
    def test_round_trip(self):
        tree = XMLTree(
            element("catalog", element("book", element("title", "Dune")), element("note", "x"))
        )
        converted = to_elementtree(tree)
        root = converted.getroot()
        assert root.tag == "catalog"
        assert root.find("book/title").text == "Dune"
        back = from_elementtree(converted)
        assert back.element_count() == tree.element_count()
