"""Property-based correctness: the distributed algorithms equal the
centralized ground truth on random documents, random fragmentations and
random queries — the paper's correctness claim ("no matter how T is
fragmented and distributed").
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.naive import run_naive_centralized
from repro.core.pax2 import run_pax2
from repro.core.pax3 import run_pax3
from repro.distributed.placement import round_robin_placement
from repro.xpath.centralized import evaluate_centralized
from repro.xpath.generator import GeneratorConfig, QueryGenerator
from repro.fragments.fragmenters import cut_random

from tests.conftest import RANDOM_TAGS, RANDOM_TEXTS, make_random_fragmentation, make_random_tree


def make_query(seed: int):
    config = GeneratorConfig(text_values=RANDOM_TEXTS[:3], numbers=(5, 12, 50))
    return QueryGenerator(RANDOM_TAGS, seed=seed, config=config).query()


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    tree_seed=st.integers(0, 5_000),
    frag_seed=st.integers(0, 5_000),
    query_seed=st.integers(0, 5_000),
    use_annotations=st.booleans(),
)
def test_pax2_equals_centralized(tree_seed, frag_seed, query_seed, use_annotations):
    tree = make_random_tree(tree_seed, max_nodes=45)
    fragmentation = make_random_fragmentation(tree, frag_seed)
    query = make_query(query_seed)
    expected = evaluate_centralized(tree, query).answer_ids
    stats = run_pax2(fragmentation, query, use_annotations=use_annotations)
    assert stats.answer_ids == expected


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    tree_seed=st.integers(0, 5_000),
    frag_seed=st.integers(0, 5_000),
    query_seed=st.integers(0, 5_000),
    use_annotations=st.booleans(),
)
def test_pax3_equals_centralized(tree_seed, frag_seed, query_seed, use_annotations):
    tree = make_random_tree(tree_seed, max_nodes=45)
    fragmentation = make_random_fragmentation(tree, frag_seed)
    query = make_query(query_seed)
    expected = evaluate_centralized(tree, query).answer_ids
    stats = run_pax3(fragmentation, query, use_annotations=use_annotations)
    assert stats.answer_ids == expected


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    tree_seed=st.integers(0, 5_000),
    frag_seed=st.integers(0, 5_000),
    query_seed=st.integers(0, 5_000),
    site_count=st.integers(1, 4),
)
def test_visit_bounds_hold_for_any_placement(tree_seed, frag_seed, query_seed, site_count):
    tree = make_random_tree(tree_seed, max_nodes=40)
    fragmentation = make_random_fragmentation(tree, frag_seed)
    placement = round_robin_placement(fragmentation, site_count=site_count)
    query = make_query(query_seed)
    pax3 = run_pax3(fragmentation, query, placement=placement)
    pax2 = run_pax2(fragmentation, query, placement=placement)
    assert pax3.max_site_visits <= 3
    assert pax2.max_site_visits <= 2
    assert pax3.answer_ids == pax2.answer_ids


@pytest.mark.parametrize("seed", range(25))
def test_all_algorithms_agree_on_seeded_corpus(seed):
    tree = make_random_tree(seed, max_nodes=60)
    fragmentation = make_random_fragmentation(tree, seed + 1)
    query = make_query(seed + 2)
    expected = evaluate_centralized(tree, query).answer_ids
    assert run_pax3(fragmentation, query).answer_ids == expected
    assert run_pax2(fragmentation, query).answer_ids == expected
    assert run_pax3(fragmentation, query, use_annotations=True).answer_ids == expected
    assert run_pax2(fragmentation, query, use_annotations=True).answer_ids == expected
    assert run_naive_centralized(fragmentation, query).answer_ids == expected
