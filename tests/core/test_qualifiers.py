"""Unit tests for the per-fragment qualifier pass (Stage 1 of PaX3)."""

import pytest

from repro.booleans.env import Environment
from repro.booleans.formula import is_concrete, variables_of
from repro.core.qualifiers import evaluate_fragment_qualifiers, virtual_qualifier_vectors
from repro.core.variables import desc_var_name, head_var_name
from repro.fragments.fragment_tree import build_fragmentation
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import compile_plan
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)


@pytest.fixture(scope="module")
def tree():
    return clientele_example_tree()


@pytest.fixture(scope="module")
def fragmentation(tree):
    return clientele_paper_fragmentation(tree)


def plan_for(query: str):
    return compile_plan(parse_xpath(query), source=query)


class TestQualifierPass:
    def test_no_qualifiers_short_circuits(self, fragmentation):
        plan = plan_for("client/name")
        output = evaluate_fragment_qualifiers(fragmentation["F0"], plan)
        assert output.qual_values == {}
        assert output.operations == 0

    def test_leaf_fragment_vectors_are_concrete(self, fragmentation):
        plan = plan_for(CLIENTELE_QUERIES["brokers_goog"])
        for fragment_id in fragmentation.leaf_fragments():
            output = evaluate_fragment_qualifiers(fragmentation[fragment_id], plan)
            assert all(is_concrete(value) for value in output.root_head)
            assert all(is_concrete(value) for value in output.root_desc)
            for values in output.qual_values.values():
                assert all(is_concrete(value) for value in values)

    def test_fragment_with_virtual_nodes_produces_residual_formulas(self, fragmentation):
        plan = plan_for(CLIENTELE_QUERIES["brokers_goog"])
        output = evaluate_fragment_qualifiers(fragmentation.root_fragment, plan)
        free = set()
        for values in output.qual_values.values():
            for value in values:
                free |= variables_of(value)
        # The root fragment depends on its three direct sub-fragments.
        children = set(fragmentation.children("F0"))
        referenced = {name.split(":")[1] for name in free}
        assert referenced and referenced <= children

    def test_variables_reference_only_direct_children(self, fragmentation):
        plan = plan_for(CLIENTELE_QUERIES["brokers_goog"])
        for fragment_id in fragmentation.fragment_ids():
            output = evaluate_fragment_qualifiers(fragmentation[fragment_id], plan)
            children = set(fragmentation.children(fragment_id))
            for vector in (output.root_head, output.root_desc):
                for entry in vector:
                    for name in variables_of(entry):
                        assert name.split(":")[1] in children

    def test_operations_scale_with_fragment_size(self, fragmentation):
        plan = plan_for(CLIENTELE_QUERIES["brokers_goog"])
        big = evaluate_fragment_qualifiers(fragmentation.root_fragment, plan)
        small_id = fragmentation.leaf_fragments()[0]
        small = evaluate_fragment_qualifiers(fragmentation[small_id], plan)
        assert big.operations > small.operations

    def test_unification_reproduces_centralized_qualifier_values(self, tree, fragmentation):
        """Resolving the fragment vectors bottom-up gives the same qualifier
        value at the root as evaluating over the whole tree."""
        plan = plan_for(CLIENTELE_QUERIES["boolean_goog"])
        outputs = {
            fragment_id: evaluate_fragment_qualifiers(fragmentation[fragment_id], plan)
            for fragment_id in fragmentation.fragment_ids()
        }
        env = Environment()
        for fragment_id in fragmentation.bottom_up_order():
            output = outputs[fragment_id]
            for item_id in plan.head_item_ids:
                env.bind(head_var_name(fragment_id, item_id), env.resolve(output.root_head[item_id]))
            for item_id in plan.desc_item_ids:
                env.bind(desc_var_name(fragment_id, item_id), env.resolve(output.root_desc[item_id]))
        root_values = outputs["F0"].qual_values[tree.root.node_id]
        resolved = [env.resolve(value) for value in root_values]
        assert resolved == [True]  # GOOG is traded somewhere in the tree


class TestVirtualVectors:
    def test_virtual_vectors_use_fresh_named_variables(self):
        plan = plan_for("a[//b]")
        head, desc = virtual_qualifier_vectors(plan, "F7")
        named = {str(entry) for entry in head + desc if not is_concrete(entry)}
        assert named
        assert all(name.startswith(("qh:F7:", "qd:F7:")) for name in named)

    def test_only_exchanged_entries_become_variables(self):
        plan = plan_for("a[//b]")
        head, desc = virtual_qualifier_vectors(plan, "F7")
        for item_id, entry in enumerate(head):
            if item_id not in plan.head_item_ids:
                assert entry is False
        for item_id, entry in enumerate(desc):
            if item_id not in plan.desc_item_ids:
                assert entry is False


class TestNestedFragmentation:
    def test_deeply_nested_chain(self):
        # a > b > c > d with a fragment at every level.
        from repro.xmltree.builder import element
        from repro.xmltree.nodes import XMLTree

        tree = XMLTree(element("a", element("b", element("c", element("d", "x")))))
        cuts = [node.node_id for node in tree.iter_elements() if node.tag in ("b", "c", "d")]
        fragmentation = build_fragmentation(tree, cuts)
        plan = plan_for('.[//d/text() = "x"]')
        outputs = {
            fid: evaluate_fragment_qualifiers(fragmentation[fid], plan)
            for fid in fragmentation.fragment_ids()
        }
        env = Environment()
        for fid in fragmentation.bottom_up_order():
            output = outputs[fid]
            for item_id in plan.head_item_ids:
                env.bind(head_var_name(fid, item_id), env.resolve(output.root_head[item_id]))
            for item_id in plan.desc_item_ids:
                env.bind(desc_var_name(fid, item_id), env.resolve(output.root_desc[item_id]))
        root_values = outputs["F0"].qual_values[tree.root.node_id]
        assert [env.resolve(v) for v in root_values] == [True]
