"""Unit tests for the variable naming scheme."""

from repro.booleans.formula import Var
from repro.core.variables import (
    desc_var,
    desc_var_name,
    head_var,
    head_var_name,
    pending_qual_var,
    pending_qual_var_name,
    selection_var,
    selection_var_name,
)


class TestNames:
    def test_families_are_distinguishable(self):
        names = {
            head_var_name("F1", 3),
            desc_var_name("F1", 3),
            selection_var_name("F1", 3),
            pending_qual_var_name(1, 3),
        }
        assert len(names) == 4
        prefixes = {name.split(":")[0] for name in names}
        assert prefixes == {"qh", "qd", "sv", "qz"}

    def test_var_constructors_wrap_names(self):
        assert head_var("F2", 0) == Var(head_var_name("F2", 0))
        assert desc_var("F2", 0) == Var(desc_var_name("F2", 0))
        assert selection_var("F2", 1) == Var(selection_var_name("F2", 1))
        assert pending_qual_var(17, 2) == Var(pending_qual_var_name(17, 2))

    def test_names_encode_owner_and_index(self):
        assert head_var_name("F9", 4) == "qh:F9:4"
        assert selection_var_name("F0", 0) == "sv:F0:0"
        assert pending_qual_var_name(123, 1) == "qz:123:1"

    def test_distinct_owners_never_collide(self):
        assert head_var_name("F1", 2) != head_var_name("F12", 2)
        assert selection_var_name("F1", 12) != selection_var_name("F11", 2)
