"""Unit tests for the XPath-annotation optimization (pruning and concrete
initialization)."""

import pytest

from repro.core.pruning import (
    annotation_init_vector,
    initial_vector_from_labels,
    prefix_vectors_along_path,
    relevant_fragments,
)
from repro.xpath.centralized import evaluate_centralized
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import compile_plan
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    PAPER_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)
from repro.workloads.scenarios import build_ft2


def plan_for(query: str):
    return compile_plan(parse_xpath(query), source=query)


@pytest.fixture(scope="module")
def clientele_frag():
    return clientele_paper_fragmentation(clientele_example_tree())


@pytest.fixture(scope="module")
def ft2():
    return build_ft2(total_bytes=80_000, seed=5)


class TestExample51:
    """The paper's Example 5.1: query client/name over the Figure 1 tree."""

    def test_only_root_fragment_kept(self, clientele_frag):
        decision = relevant_fragments(clientele_frag, plan_for(CLIENTELE_QUERIES["client_names"]))
        assert decision.kept == {"F0"}
        assert decision.pruned == set(clientele_frag.fragment_ids()) - {"F0"}
        assert decision.reasons["F0"] == "root fragment"

    def test_broker_query_keeps_broker_fragments(self, clientele_frag):
        decision = relevant_fragments(clientele_frag, plan_for("client/broker/name"))
        kept_tags = {clientele_frag[fid].root.tag for fid in decision.kept if fid != "F0"}
        assert kept_tags == {"broker"}
        pruned_tags = {clientele_frag[fid].root.tag for fid in decision.pruned}
        assert pruned_tags == {"market"}

    def test_descendant_query_keeps_everything(self, clientele_frag):
        decision = relevant_fragments(clientele_frag, plan_for("//stock/code"))
        assert decision.kept == set(clientele_frag.fragment_ids())

    def test_qualifier_scope_keeps_fragments_below_qualified_nodes(self, clientele_frag):
        # The market fragments contain no name answers, but the broker
        # qualifier needs data inside them.
        decision = relevant_fragments(
            clientele_frag, plan_for(CLIENTELE_QUERIES["brokers_goog"])
        )
        assert decision.kept == set(clientele_frag.fragment_ids())


class TestFT2Pruning:
    """Experiment 2's pruning effects (Section 6)."""

    def test_q1_keeps_only_whole_site_fragments(self, ft2):
        decision = relevant_fragments(ft2.fragmentation, plan_for(PAPER_QUERIES["Q1"]))
        # 4 of the 10 fragments survive: the root fragment, the two partially
        # fragmented sites' remainders, and the whole site D.
        assert len(decision.kept) == 4
        kept_tags = {ft2.fragmentation[fid].root.tag for fid in decision.kept}
        assert kept_tags == {"sites", "site"}

    def test_q2_adds_the_open_auction_fragments(self, ft2):
        decision = relevant_fragments(ft2.fragmentation, plan_for(PAPER_QUERIES["Q2"]))
        assert len(decision.kept) == 6
        open_auction_fragments = {
            fid for fid in ft2.fragmentation.fragment_ids()
            if ft2.fragmentation[fid].root.tag == "open_auctions"
        }
        assert open_auction_fragments <= decision.kept

    def test_q3_prunes_non_people_fragments(self, ft2):
        decision = relevant_fragments(ft2.fragmentation, plan_for(PAPER_QUERIES["Q3"]))
        assert len(decision.kept) == 4

    def test_q4_descendant_keeps_everything(self, ft2):
        decision = relevant_fragments(ft2.fragmentation, plan_for(PAPER_QUERIES["Q4"]))
        assert decision.kept == set(ft2.fragmentation.fragment_ids())


class TestPruningSoundness:
    """Pruned runs must return exactly the centralized answer."""

    @pytest.mark.parametrize("query_name", sorted(PAPER_QUERIES))
    def test_pruned_pax2_matches_centralized(self, ft2, query_name):
        from repro.core.pax2 import run_pax2

        query = PAPER_QUERIES[query_name]
        expected = evaluate_centralized(ft2.tree, query).answer_ids
        stats = run_pax2(ft2.fragmentation, query, placement=ft2.placement, use_annotations=True)
        assert stats.answer_ids == expected

    def test_ancestors_of_kept_fragments_are_kept(self, ft2):
        for query in PAPER_QUERIES.values():
            decision = relevant_fragments(ft2.fragmentation, plan_for(query))
            for fragment_id in decision.kept:
                for ancestor in ft2.fragmentation.ancestors(fragment_id):
                    assert ancestor in decision.kept


class TestRelevantFragmentsEdgeCases:
    def test_single_fragment_tree_keeps_only_the_root_fragment(self):
        from repro.fragments.fragment_tree import build_fragmentation

        fragmentation = build_fragmentation(clientele_example_tree(), [])
        assert fragmentation.fragment_ids() == [fragmentation.root_fragment_id]
        for query in CLIENTELE_QUERIES.values():
            decision = relevant_fragments(fragmentation, plan_for(query))
            assert decision.kept == {fragmentation.root_fragment_id}
            assert decision.pruned == set()

    def test_no_fragment_matches_the_query_labels(self, clientele_frag):
        # No <nowhere> element exists anywhere: every non-root fragment is
        # pruned, the root fragment is kept unconditionally.
        decision = relevant_fragments(clientele_frag, plan_for("nowhere/nothing"))
        assert decision.kept == {"F0"}
        for fragment_id in decision.pruned:
            assert "no selection match" in decision.reasons[fragment_id]

    def test_unmatched_query_still_answers_empty(self, clientele_frag):
        from repro.core.pax2 import run_pax2

        stats = run_pax2(clientele_frag, "nowhere/nothing", use_annotations=True)
        assert stats.answer_ids == []

    def test_pruning_is_placement_independent(self, clientele_frag):
        # The decision is about fragments, not sites: evaluating with several
        # fragments per site must neither change the pruning nor the answer.
        from repro.core.pax2 import run_pax2
        from repro.distributed.placement import round_robin_placement

        query = CLIENTELE_QUERIES["brokers_goog_not_yhoo"]
        spread = run_pax2(clientele_frag, query, use_annotations=True)
        packed = run_pax2(
            clientele_frag,
            query,
            placement=round_robin_placement(clientele_frag, site_count=2),
            use_annotations=True,
        )
        assert spread.answer_ids == packed.answer_ids
        assert spread.fragments_pruned == packed.fragments_pruned


class TestConcreteInitialization:
    def test_prefix_vectors_require_labels(self):
        with pytest.raises(ValueError):
            prefix_vectors_along_path(plan_for("a/b"), [])

    def test_initial_vector_matches_actual_parent_vector(self, clientele_frag):
        # For a qualifier-free query the concrete initialization must equal
        # the selection vector the parent node would compute.
        plan = plan_for("client/broker/market/stock")
        for fragment_id in clientele_frag.fragment_ids():
            if fragment_id == "F0":
                continue
            vector = annotation_init_vector(clientele_frag, plan, fragment_id)
            parent = clientele_frag[fragment_id].root.parent
            depth = parent.depth()
            labels = parent.root_path_labels()
            recomputed = prefix_vectors_along_path(plan, labels, assume_qualifiers=False)[depth]
            assert vector == recomputed

    def test_initial_vector_rejects_qualified_plans(self):
        with pytest.raises(ValueError):
            initial_vector_from_labels(plan_for("a[b]/c"), ["a", "b"])

    def test_root_fragment_initialization(self):
        plan = plan_for("/a/b")
        assert initial_vector_from_labels(plan, ["a"]) == [True, False, False]
