"""Differential tests: every engine tier — the columnar kernel, the numpy
vector tier and the object-tree reference — produces bit-identical answers
*and* identical traffic accounting for PaX3, PaX2 and ParBoX on every
bundled workload."""

import pytest

from repro.core.engine import DistributedQueryEngine
from repro.core.kernel.dispatch import (
    ENGINES,
    KERNEL,
    REFERENCE,
    VECTOR,
    fragment_engine,
    prewarm_fragments,
    set_fragment_engine,
    use_fragment_engine,
)
from repro.core.parbox import run_parbox
from repro.core.vector import numpy_available
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    PAPER_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)
from repro.workloads.scenarios import build_ft1, build_ft2


def available_engines():
    """All engine tiers runnable in this process (vector needs numpy)."""
    if numpy_available():
        return (REFERENCE, KERNEL, VECTOR)
    return (REFERENCE, KERNEL)


def fingerprint(stats):
    """Everything the paper's guarantees measure about one run."""
    return {
        "answers": stats.answer_ids,
        "communication_units": stats.communication_units,
        "local_units": stats.local_units,
        "message_count": stats.message_count,
        "total_operations": stats.total_operations,
        "answer_nodes_shipped": stats.answer_nodes_shipped,
        "visits": stats.visits_by_site(),
        "fragments_evaluated": stats.fragments_evaluated,
        "fragments_pruned": stats.fragments_pruned,
    }


@pytest.fixture(scope="module")
def workloads():
    clientele = clientele_paper_fragmentation(clientele_example_tree())
    ft1 = build_ft1(fragment_count=4, total_bytes=25_000, seed=7)
    ft2 = build_ft2(total_bytes=30_000, seed=5)
    data = {
        "clientele": (
            clientele,
            None,
            [q for q in CLIENTELE_QUERIES.values() if not q.startswith(".")],
        ),
        "xmark-ft1": (ft1.fragmentation, ft1.placement, list(PAPER_QUERIES.values())),
        "xmark-ft2": (ft2.fragmentation, ft2.placement, list(PAPER_QUERIES.values())),
    }
    return data


@pytest.mark.parametrize("algorithm", ["pax2", "pax3"])
@pytest.mark.parametrize("use_annotations", [False, True])
def test_engines_match_reference_on_all_workloads(workloads, algorithm, use_annotations):
    for name, (fragmentation, placement, queries) in workloads.items():
        engines = {
            engine: DistributedQueryEngine(
                fragmentation,
                placement=placement,
                algorithm=algorithm,
                use_annotations=use_annotations,
                engine=engine,
            )
            for engine in available_engines()
        }
        for query in queries:
            reference = fingerprint(engines[REFERENCE].run(query))
            for engine in available_engines():
                if engine == REFERENCE:
                    continue
                got = fingerprint(engines[engine].run(query))
                assert got == reference, (
                    name, algorithm, use_annotations, engine, query,
                )


def test_parbox_engines_match_reference(workloads):
    clientele, _, _ = workloads["clientele"]
    boolean_queries = [
        CLIENTELE_QUERIES["boolean_goog"],
        '.[//stock/code/text() = "yhoo"]',
        '.[client/country/text() = "us" and //stock]',
        '.[not(//nonexistent)]',
    ]
    for query in boolean_queries:
        reference = fingerprint(run_parbox(clientele, query, engine=REFERENCE))
        for engine in available_engines():
            if engine == REFERENCE:
                continue
            got = fingerprint(run_parbox(clientele, query, engine=engine))
            assert got == reference, (engine, query)


def test_engines_match_reference_through_the_service_layer(workloads):
    fragmentation, placement, queries = workloads["xmark-ft2"]
    results = {}
    for engine in available_engines():
        service = DistributedQueryEngine(
            fragmentation, placement=placement, engine=engine
        ).as_service(cache_capacity=0, max_in_flight=4)
        results[engine] = [
            fingerprint(service.execute(query).stats) for query in queries
        ]
    for engine in available_engines():
        assert results[engine] == results[REFERENCE], engine


class TestEngineFlag:
    def test_default_engine_is_kernel(self):
        assert fragment_engine() in ENGINES

    def test_set_and_restore_engine(self):
        previous = fragment_engine()
        try:
            set_fragment_engine(REFERENCE)
            assert fragment_engine() == REFERENCE
        finally:
            set_fragment_engine(previous)

    def test_use_fragment_engine_context(self):
        previous = fragment_engine()
        with use_fragment_engine(REFERENCE):
            assert fragment_engine() == REFERENCE
        assert fragment_engine() == previous

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            set_fragment_engine("vectorized-gpu")
        with pytest.raises(ValueError):
            DistributedQueryEngine(
                clientele_paper_fragmentation(clientele_example_tree()),
                engine="nope",
            )

    def test_environment_typo_warns_and_falls_back_to_kernel(self, monkeypatch):
        from repro.core.kernel.dispatch import KERNEL, _engine_from_environ

        monkeypatch.setenv("REPRO_FRAGMENT_ENGINE", "kernal")
        with pytest.warns(UserWarning, match="REPRO_FRAGMENT_ENGINE"):
            assert _engine_from_environ() == KERNEL
        monkeypatch.setenv("REPRO_FRAGMENT_ENGINE", "reference")
        assert _engine_from_environ() == "reference"


class TestVectorWithoutNumpy:
    """The vector tier degrades to an actionable error when numpy is gone;
    the other two tiers keep working untouched."""

    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        import repro.core.vector.encode as encode

        monkeypatch.setattr(encode, "_np", None)

    def test_require_numpy_raises_actionable_error(self, no_numpy):
        from repro.core.vector import numpy_available, require_numpy

        assert not numpy_available()
        with pytest.raises(RuntimeError, match="numpy") as excinfo:
            require_numpy()
        # The message must tell the operator what to do, not just what broke.
        for alternative in ("pip install numpy", "kernel", "REPRO_FRAGMENT_ENGINE"):
            assert alternative in str(excinfo.value)

    def test_vector_prewarm_raises_before_any_query_runs(self, no_numpy):
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        with pytest.raises(RuntimeError, match="numpy"):
            prewarm_fragments(fragmentation, engine=VECTOR)

    def test_vector_query_raises_actionable_error(self, no_numpy):
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        engine = DistributedQueryEngine(fragmentation, engine=VECTOR)
        with pytest.raises(RuntimeError, match="numpy"):
            engine.run('client[country/text() = "us"]/name')

    def test_kernel_and_reference_still_work(self, no_numpy):
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        query = 'client[country/text() = "us"]/name'
        answers = {
            engine: DistributedQueryEngine(fragmentation, engine=engine)
            .execute(query).answer_ids
            for engine in (KERNEL, REFERENCE)
        }
        assert answers[KERNEL]
        assert answers[KERNEL] == answers[REFERENCE]


class TestInPlaceEdits:
    def test_engine_refresh_rebuilds_the_columnar_encodings(self):
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        for engine_name in available_engines():
            fragmentation.invalidate_flat()
            engine = DistributedQueryEngine(fragmentation, engine=engine_name)
            query = 'client[country/text() = "us"]/name'
            before = engine.execute(query).answer_ids
            assert before
            # In-place edit: flip every us client to uk, then refresh.
            edited = []
            for node in fragmentation.tree.iter_elements():
                if node.tag == "country" and node.text().strip().lower() == "us":
                    text_child = next(c for c in node.children if c.is_text)
                    edited.append(text_child)
                    text_child.value = "uk"
            engine.refresh()
            assert engine.execute(query).answer_ids == []
            for text_child in edited:
                text_child.value = "us"
            engine.refresh()
            assert engine.execute(query).answer_ids == before
