"""Unit tests for the coordinator-side unification (evalFT)."""

import pytest

from repro.booleans.env import Environment
from repro.booleans.formula import Var, conj
from repro.core.unify import (
    UnificationError,
    require_concrete,
    resolved_child_qualifier_bindings,
    resolved_init_bindings,
    unify_qualifier_vectors,
    unify_selection_vectors,
)
from repro.core.variables import (
    desc_var,
    desc_var_name,
    head_var,
    head_var_name,
    selection_var,
    selection_var_name,
)
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import compile_plan
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation


@pytest.fixture(scope="module")
def fragmentation():
    return clientele_paper_fragmentation(clientele_example_tree())


def plan_for(query: str):
    return compile_plan(parse_xpath(query), source=query)


class TestRequireConcrete:
    def test_passes_through_booleans(self):
        assert require_concrete(True, "x") is True
        assert require_concrete(False, "x") is False

    def test_raises_on_residual_formula(self):
        with pytest.raises(UnificationError, match="ctx"):
            require_concrete(Var("qh:F1:0"), "ctx")


class TestQualifierUnification:
    def test_bottom_up_resolution_through_nested_fragments(self, fragmentation):
        plan = plan_for("a[//b]")
        item = plan.head_item_ids[0]
        nested_child = next(
            fid for fid in fragmentation.fragment_ids()
            if fragmentation.parent(fid) not in (None, "F0")
        )
        middle = fragmentation.parent(nested_child)
        # The leaf reports True; the middle fragment's vector refers to the leaf.
        vectors = {
            nested_child: ([True] * plan.n_items, [True] * plan.n_items),
            middle: (
                [head_var(nested_child, item)] * plan.n_items,
                [desc_var(nested_child, item)] * plan.n_items,
            ),
        }
        env = unify_qualifier_vectors(fragmentation, plan, vectors)
        assert env.resolve(Var(head_var_name(middle, item))) is True
        assert env.resolve(Var(desc_var_name(middle, item))) is True

    def test_missing_fragments_are_skipped(self, fragmentation):
        plan = plan_for("a[//b]")
        env = unify_qualifier_vectors(fragmentation, plan, {})
        assert len(env) == 0


class TestSelectionUnification:
    def test_top_down_resolution(self, fragmentation):
        plan = plan_for("client/broker/name")
        child = fragmentation.children("F0")[0]
        grandchildren = fragmentation.children(child)
        vectors = {
            "F0": {child: [False, True, False, False]},
        }
        if grandchildren:
            vectors[child] = {
                grandchildren[0]: [False, False, conj(selection_var(child, 1), True), False]
            }
        env = unify_selection_vectors(fragmentation, plan, vectors, Environment())
        assert env.resolve(Var(selection_var_name(child, 1))) is True
        if grandchildren:
            assert env.resolve(Var(selection_var_name(grandchildren[0], 2))) is True


class TestBindingExtraction:
    def test_child_qualifier_bindings_are_concrete_and_scoped(self, fragmentation):
        plan = plan_for("a[//b]")
        env = Environment()
        for fid in fragmentation.fragment_ids():
            for item in plan.head_item_ids:
                env.bind(head_var_name(fid, item), True)
            for item in plan.desc_item_ids:
                env.bind(desc_var_name(fid, item), False)
        bindings = resolved_child_qualifier_bindings(fragmentation, plan, "F0", env)
        children = set(fragmentation.children("F0"))
        assert bindings
        for name, value in bindings.items():
            assert isinstance(value, bool)
            assert name.split(":")[1] in children

    def test_init_bindings_cover_every_entry(self, fragmentation):
        plan = plan_for("client/broker/name")
        env = Environment()
        for entry in range(plan.n_steps + 1):
            env.bind(selection_var_name("F2", entry), entry % 2 == 0)
        bindings = resolved_init_bindings(plan, "F2", env)
        assert len(bindings) == plan.n_steps + 1

    def test_unresolvable_binding_is_skipped(self, fragmentation):
        # A value still mentioning a pruned fragment's variables is not
        # shipped; strictness is enforced later, at answer resolution.
        plan = plan_for("a[//b]")
        env = Environment()
        child = fragmentation.children("F0")[0]
        name = head_var_name(child, plan.head_item_ids[0])
        env.bind(name, Var("qh:pruned:0"))
        bindings = resolved_child_qualifier_bindings(fragmentation, plan, "F0", env)
        assert name not in bindings
