"""Tests for algorithm PaX3: correctness, visits, staging, communication."""

import pytest

from repro.core.pax3 import run_pax3
from repro.distributed.placement import round_robin_placement, single_site_placement
from repro.xpath.centralized import evaluate_centralized
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    PAPER_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)

DATA_QUERIES = {name: q for name, q in CLIENTELE_QUERIES.items() if name != "boolean_goog"}


@pytest.fixture(scope="module")
def tree():
    return clientele_example_tree()


@pytest.fixture(scope="module")
def fragmentation(tree):
    return clientele_paper_fragmentation(tree)


class TestCorrectness:
    @pytest.mark.parametrize("query_name", sorted(DATA_QUERIES))
    @pytest.mark.parametrize("use_annotations", [False, True])
    def test_matches_centralized_on_paper_example(
        self, tree, fragmentation, query_name, use_annotations
    ):
        query = DATA_QUERIES[query_name]
        expected = evaluate_centralized(tree, query).answer_ids
        stats = run_pax3(fragmentation, query, use_annotations=use_annotations)
        assert stats.answer_ids == expected

    @pytest.mark.parametrize("query_name", sorted(PAPER_QUERIES))
    def test_matches_centralized_on_xmark(self, small_ft2_scenario, query_name):
        scenario = small_ft2_scenario
        query = PAPER_QUERIES[query_name]
        expected = evaluate_centralized(scenario.tree, query).answer_ids
        stats = run_pax3(scenario.fragmentation, query, placement=scenario.placement)
        assert stats.answer_ids == expected

    def test_results_identical_with_and_without_annotations(self, fragmentation):
        for query in DATA_QUERIES.values():
            plain = run_pax3(fragmentation, query, use_annotations=False)
            optimized = run_pax3(fragmentation, query, use_annotations=True)
            assert plain.answer_ids == optimized.answer_ids

    def test_multiple_fragments_per_site(self, tree, fragmentation):
        placement = round_robin_placement(fragmentation, site_count=2)
        for query in DATA_QUERIES.values():
            expected = evaluate_centralized(tree, query).answer_ids
            stats = run_pax3(fragmentation, query, placement=placement)
            assert stats.answer_ids == expected

    def test_single_site_placement(self, tree, fragmentation):
        placement = single_site_placement(fragmentation)
        query = DATA_QUERIES["brokers_goog"]
        stats = run_pax3(fragmentation, query, placement=placement)
        assert stats.answer_ids == evaluate_centralized(tree, query).answer_ids


class TestVisitGuarantees:
    def test_at_most_three_visits_with_qualifiers(self, fragmentation):
        stats = run_pax3(fragmentation, DATA_QUERIES["brokers_goog"])
        assert 1 <= stats.max_site_visits <= 3

    def test_at_most_two_visits_without_qualifiers(self, fragmentation):
        # No qualifiers: stage 1 is skipped entirely.
        stats = run_pax3(fragmentation, "client/broker/name")
        assert stats.max_site_visits <= 2
        assert [stage.name for stage in stats.stages][0] == "selection"

    def test_annotations_plus_no_qualifiers_single_visit(self, fragmentation):
        # Concrete initialization removes candidates, so stage 3 vanishes.
        stats = run_pax3(fragmentation, "client/broker/name", use_annotations=True)
        assert stats.max_site_visits == 1
        assert [stage.name for stage in stats.stages] == ["selection"]

    def test_visit_bound_independent_of_fragments_per_site(self, fragmentation):
        placement = single_site_placement(fragmentation)
        stats = run_pax3(fragmentation, DATA_QUERIES["brokers_goog"], placement=placement)
        assert stats.max_site_visits <= 3

    def test_stage_names_with_qualifiers(self, fragmentation):
        stats = run_pax3(fragmentation, DATA_QUERIES["us_nasdaq_brokers"])
        names = [stage.name for stage in stats.stages]
        assert names[0] == "qualifiers" and names[1] == "selection"
        assert len(names) <= 3


class TestAccounting:
    def test_only_answers_are_shipped_as_data(self, fragmentation):
        stats = run_pax3(fragmentation, DATA_QUERIES["brokers_goog"])
        assert stats.answer_nodes_shipped >= stats.answer_count
        # Communication stays far below the document size (72 nodes answer-only).
        assert stats.communication_units < 10 * len(str(DATA_QUERIES["brokers_goog"])) * len(
            fragmentation
        )

    def test_pruned_fragments_reported(self, fragmentation):
        stats = run_pax3(fragmentation, CLIENTELE_QUERIES["client_names"], use_annotations=True)
        assert set(stats.fragments_pruned) == {"F1", "F2", "F3", "F4"}
        assert stats.fragments_evaluated == ["F0"]

    def test_stage_times_populated(self, fragmentation):
        stats = run_pax3(fragmentation, DATA_QUERIES["us_nasdaq_brokers"])
        for stage in stats.stages:
            assert stage.parallel_seconds >= 0.0
            assert stage.total_seconds >= stage.parallel_seconds
            assert stage.sites_involved >= 1

    def test_answer_ids_sorted_in_document_order(self, fragmentation):
        stats = run_pax3(fragmentation, DATA_QUERIES["brokers_goog"])
        assert stats.answer_ids == sorted(stats.answer_ids)

    def test_empty_answer_query(self, fragmentation):
        stats = run_pax3(fragmentation, '//broker[//stock/code/text() = "msft"]/name')
        assert stats.answer_ids == []
        assert stats.answer_nodes_shipped == 0


class TestDegenerateFragmentations:
    def test_single_fragment_tree(self, tree):
        from repro.fragments.fragment_tree import build_fragmentation

        fragmentation = build_fragmentation(tree, [])
        query = DATA_QUERIES["brokers_goog"]
        stats = run_pax3(fragmentation, query)
        assert stats.answer_ids == evaluate_centralized(tree, query).answer_ids
        assert stats.communication_units == 0  # everything is local to the coordinator
