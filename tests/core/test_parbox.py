"""Tests for the ParBoX Boolean-query algorithm."""

import pytest

from repro.core.parbox import as_boolean_query, run_parbox
from repro.xpath.centralized import evaluate_boolean_centralized
from repro.xpath.errors import XPathError
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation

BOOLEAN_QUERIES = [
    ('.[//stock/code/text() = "goog"]', True),
    ('.[//stock/code/text() = "msft"]', False),
    ('.[//client/country/text() = "canada"]', True),
    ('.[//stock[buy > 400]]', False),
    ('.[//stock[buy > 380] and //client/country/text() = "canada"]', True),
    ('.[not(//broker[name/text() = "chase"])]', True),
    ('.[client/broker]', True),
]


@pytest.fixture(scope="module")
def tree():
    return clientele_example_tree()


@pytest.fixture(scope="module")
def fragmentation(tree):
    return clientele_paper_fragmentation(tree)


class TestCorrectness:
    @pytest.mark.parametrize("query,expected", BOOLEAN_QUERIES)
    def test_matches_centralized_boolean(self, tree, fragmentation, query, expected):
        assert evaluate_boolean_centralized(tree, query) is expected
        stats = run_parbox(fragmentation, query)
        assert bool(stats.answer_ids) is expected
        assert expected == (stats.notes == "boolean result: True")

    def test_rejects_data_selecting_queries(self, fragmentation):
        with pytest.raises(XPathError):
            run_parbox(fragmentation, "client/broker/name")


class TestGuarantees:
    def test_single_visit_per_site(self, fragmentation):
        for query, _ in BOOLEAN_QUERIES:
            stats = run_parbox(fragmentation, query)
            assert stats.max_site_visits == 1

    def test_communication_independent_of_answers(self, fragmentation):
        # Boolean queries ship vectors only, never data.
        stats = run_parbox(fragmentation, BOOLEAN_QUERIES[0][0])
        assert stats.answer_nodes_shipped == 0
        assert stats.communication_units > 0

    def test_single_stage(self, fragmentation):
        stats = run_parbox(fragmentation, BOOLEAN_QUERIES[0][0])
        assert [stage.name for stage in stats.stages] == ["qualifiers"]


class TestHelpers:
    def test_as_boolean_query_wraps_bare_qualifiers(self):
        assert as_boolean_query('//a/text() = "x"') == '.[//a/text() = "x"]'
        assert as_boolean_query('[//a]') == ".[//a]"

    def test_wrapped_queries_run(self, fragmentation):
        stats = run_parbox(fragmentation, as_boolean_query('//stock/code/text() = "goog"'))
        assert bool(stats.answer_ids) is True
