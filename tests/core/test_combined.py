"""Unit tests for the PaX2 combined pre/post-order pass."""

import pytest

from repro.booleans.formula import variables_of
from repro.core.combined import evaluate_fragment_combined
from repro.core.selection import concrete_root_init_vector, variable_init_vector
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import compile_plan
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)


@pytest.fixture(scope="module")
def tree():
    return clientele_example_tree()


@pytest.fixture(scope="module")
def fragmentation(tree):
    return clientele_paper_fragmentation(tree)


def plan_for(query: str):
    return compile_plan(parse_xpath(query), source=query)


class TestCombinedPass:
    def test_qualifier_free_plan_behaves_like_selection_pass(self, fragmentation):
        plan = plan_for("client/name")
        output = evaluate_fragment_combined(
            fragmentation.root_fragment, plan,
            concrete_root_init_vector(plan), is_root_fragment=True,
        )
        assert len(output.answers) == 3
        assert not output.candidates
        assert output.root_head == [False] * plan.n_items

    def test_no_pending_placeholders_leak_out(self, fragmentation):
        """Everything leaving the site must be free of qz: variables."""
        plan = plan_for(CLIENTELE_QUERIES["us_nasdaq_brokers"])
        for fragment_id in fragmentation.fragment_ids():
            output = evaluate_fragment_combined(
                fragmentation[fragment_id], plan,
                concrete_root_init_vector(plan)
                if fragment_id == "F0"
                else variable_init_vector(plan, fragment_id),
                is_root_fragment=(fragment_id == "F0"),
            )
            leaked = set()
            for formula in output.candidates.values():
                leaked |= variables_of(formula)
            for vector in output.virtual_parent_vectors.values():
                for entry in vector:
                    leaked |= variables_of(entry)
            for vector in (output.root_head, output.root_desc):
                for entry in vector:
                    leaked |= variables_of(entry)
            assert not any(name.startswith("qz:") for name in leaked)

    def test_candidate_variables_belong_to_known_families(self, fragmentation):
        plan = plan_for(CLIENTELE_QUERIES["brokers_goog"])
        for fragment_id in fragmentation.fragment_ids():
            is_root = fragment_id == "F0"
            output = evaluate_fragment_combined(
                fragmentation[fragment_id], plan,
                concrete_root_init_vector(plan) if is_root
                else variable_init_vector(plan, fragment_id),
                is_root_fragment=is_root,
            )
            children = set(fragmentation.children(fragment_id))
            for formula in output.candidates.values():
                for name in variables_of(formula):
                    family, owner = name.split(":")[0], name.split(":")[1]
                    if family == "sv":
                        assert owner == fragment_id
                    else:
                        assert family in ("qh", "qd") and owner in children

    def test_root_fragment_answers_and_candidates_with_local_qualifiers(self, fragmentation):
        # Anna's and Kim's name nodes are decided locally (their country
        # elements live in F0); Lisa's name stays a candidate because her
        # client node has a virtual child (her broker fragment) whose label
        # the root fragment cannot see — the qualifier might still hold there.
        plan = plan_for('client[country/text() = "us"]/name')
        output = evaluate_fragment_combined(
            fragmentation.root_fragment, plan,
            concrete_root_init_vector(plan), is_root_fragment=True,
        )
        assert len(output.answers) == 2  # Anna and Kim are US clients
        assert len(output.candidates) == 1
        children = set(fragmentation.children("F0"))
        for formula in output.candidates.values():
            owners = {name.split(":")[1] for name in variables_of(formula)}
            assert owners <= children

    def test_operations_and_units_counted(self, fragmentation):
        plan = plan_for(CLIENTELE_QUERIES["us_nasdaq_brokers"])
        output = evaluate_fragment_combined(
            fragmentation.root_fragment, plan,
            concrete_root_init_vector(plan), is_root_fragment=True,
        )
        assert output.operations > 0
        assert output.root_vector_units == len(plan.head_item_ids) + len(plan.desc_item_ids)

    def test_virtual_parent_vectors_cover_all_children(self, fragmentation):
        plan = plan_for(CLIENTELE_QUERIES["us_nasdaq_brokers"])
        output = evaluate_fragment_combined(
            fragmentation.root_fragment, plan,
            concrete_root_init_vector(plan), is_root_fragment=True,
        )
        assert set(output.virtual_parent_vectors) == set(fragmentation.children("F0"))
