"""Unit tests for the shared orchestration helpers and message accounting."""

import pytest

from repro.booleans.formula import Var, conj
from repro.core.common import (
    answer_subtree_nodes,
    binding_units,
    build_network,
    ensure_plan,
    plan_units,
    vector_units,
)
from repro.distributed.messages import Message, MessageKind
from repro.distributed.stats import StageStats
from repro.core.common import stage_timer
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import QueryPlan, compile_plan


class TestEnsurePlan:
    def test_accepts_string_path_and_plan(self):
        from_string = ensure_plan("a/b[c]")
        from_path = ensure_plan(parse_xpath("a/b[c]"))
        precompiled = compile_plan(parse_xpath("a/b[c]"))
        assert isinstance(from_string, QueryPlan)
        assert from_string.n_steps == from_path.n_steps == precompiled.n_steps
        assert ensure_plan(precompiled) is precompiled

    def test_source_preserved_for_strings(self):
        assert ensure_plan("//x").source == "//x"


class TestUnits:
    def test_plan_units_grow_with_query(self):
        assert plan_units(ensure_plan("a/b/c[d and e]")) > plan_units(ensure_plan("a"))

    def test_vector_units_count_formula_atoms(self):
        vectors = [[True, Var("x")], [conj(Var("x"), Var("y"))]]
        assert vector_units(vectors) == 1 + 1 + 3

    def test_binding_units(self):
        assert binding_units({"a": True, "b": False}) == 2

    def test_answer_subtree_nodes(self):
        tree = clientele_example_tree()
        name_ids = [
            node.node_id for node in tree.iter_elements() if node.tag == "name"
        ][:2]
        # each <name> element carries one text child -> 2 nodes per answer
        assert answer_subtree_nodes(tree, name_ids) == 4


class TestBuildNetwork:
    def test_default_placement_is_one_site_per_fragment(self):
        fragmentation = clientele_paper_fragmentation(clientele_example_tree())
        network = build_network(fragmentation)
        assert len(network.sites) == len(fragmentation)
        assert network.coordinator_id == "S0"


class TestStageTimer:
    def test_coordinator_time_accumulates(self):
        stage = StageStats(name="x")
        with stage_timer(stage):
            sum(range(1000))
        with stage_timer(stage):
            pass
        assert stage.coordinator_seconds > 0.0


class TestMessages:
    def test_local_flag(self):
        local = Message("S0", "S0", MessageKind.ANSWERS, units=3)
        remote = Message("S0", "S1", MessageKind.ANSWERS, units=3)
        assert local.is_local and not remote.is_local

    def test_kinds_are_distinct(self):
        kinds = {
            MessageKind.EXEC_REQUEST,
            MessageKind.QUALIFIER_VECTORS,
            MessageKind.SELECTION_VECTORS,
            MessageKind.RESOLVED_BINDINGS,
            MessageKind.ANSWERS,
            MessageKind.FRAGMENT_SHIPMENT,
        }
        assert len(kinds) == 6

    def test_payload_not_in_repr(self):
        message = Message("a", "b", MessageKind.ANSWERS, 1, payload=object())
        assert "payload" not in repr(message) or "object at" not in repr(message)
