"""Tests for the NaiveCentralized baseline."""

import pytest

from repro.core.naive import run_naive_centralized
from repro.core.pax2 import run_pax2
from repro.xpath.centralized import evaluate_centralized
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    PAPER_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)

DATA_QUERIES = {name: q for name, q in CLIENTELE_QUERIES.items() if name != "boolean_goog"}


@pytest.fixture(scope="module")
def tree():
    return clientele_example_tree()


@pytest.fixture(scope="module")
def fragmentation(tree):
    return clientele_paper_fragmentation(tree)


class TestCorrectness:
    @pytest.mark.parametrize("query_name", sorted(DATA_QUERIES))
    def test_matches_centralized(self, tree, fragmentation, query_name):
        query = DATA_QUERIES[query_name]
        stats = run_naive_centralized(fragmentation, query)
        assert stats.answer_ids == evaluate_centralized(tree, query).answer_ids

    def test_matches_pax2_on_xmark(self, small_ft2_scenario):
        scenario = small_ft2_scenario
        for query in PAPER_QUERIES.values():
            naive = run_naive_centralized(
                scenario.fragmentation, query, placement=scenario.placement
            )
            pax2 = run_pax2(scenario.fragmentation, query, placement=scenario.placement)
            assert naive.answer_ids == pax2.answer_ids


class TestCosts:
    def test_ships_the_whole_tree(self, tree, fragmentation):
        stats = run_naive_centralized(fragmentation, DATA_QUERIES["client_names"])
        root_fragment_nodes = fragmentation.root_fragment.node_count()
        # Everything except the coordinator's own fragment crosses the network.
        assert stats.communication_units >= tree.size() - root_fragment_nodes

    def test_traffic_dwarfs_partial_evaluation(self, fragmentation):
        query = DATA_QUERIES["brokers_goog"]
        naive = run_naive_centralized(fragmentation, query)
        pax2 = run_pax2(fragmentation, query)
        assert naive.communication_units > pax2.communication_units

    def test_single_visit_and_single_stage(self, fragmentation):
        stats = run_naive_centralized(fragmentation, DATA_QUERIES["client_names"])
        assert stats.max_site_visits == 1
        assert [stage.name for stage in stats.stages] == ["ship-and-evaluate"]
        assert stats.stages[0].coordinator_seconds > 0.0
