"""Unit tests for the per-fragment selection pass (Stage 2 of PaX3)."""

import pytest

from repro.booleans.formula import variables_of
from repro.core.selection import (
    concrete_root_init_vector,
    evaluate_fragment_selection,
    variable_init_vector,
)
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import compile_plan
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation


@pytest.fixture(scope="module")
def tree():
    return clientele_example_tree()


@pytest.fixture(scope="module")
def fragmentation(tree):
    return clientele_paper_fragmentation(tree)


def plan_for(query: str):
    return compile_plan(parse_xpath(query), source=query)


class TestInitVectors:
    def test_variable_init_vector_names(self):
        plan = plan_for("a/b")
        vector = variable_init_vector(plan, "F3")
        assert len(vector) == plan.n_steps + 1
        assert [str(v) for v in vector] == ["sv:F3:0", "sv:F3:1", "sv:F3:2"]

    def test_concrete_root_init_for_relative_plan_is_all_false(self):
        plan = plan_for("a/b")
        assert concrete_root_init_vector(plan) == [False, False, False]

    def test_concrete_root_init_for_absolute_plan_has_context_entry(self):
        plan = plan_for("/a/b")
        vector = concrete_root_init_vector(plan)
        assert vector[0] is True
        assert vector[1:] == [False, False]

    def test_absolute_leading_descendant_carries_context(self):
        plan = plan_for("//a")
        vector = concrete_root_init_vector(plan)
        assert vector[0] is True and vector[1] is True


class TestRootFragmentSelection:
    def test_definite_answers_found_without_candidates(self, fragmentation):
        plan = plan_for("client/name")
        output = evaluate_fragment_selection(
            fragmentation.root_fragment, plan, None,
            concrete_root_init_vector(plan), is_root_fragment=True,
        )
        assert len(output.answers) == 3  # Anna, Kim, Lisa names are all in F0
        assert not output.candidates

    def test_virtual_parent_vectors_emitted_for_each_child(self, fragmentation):
        plan = plan_for("client/broker/name")
        output = evaluate_fragment_selection(
            fragmentation.root_fragment, plan, None,
            concrete_root_init_vector(plan), is_root_fragment=True,
        )
        assert set(output.virtual_parent_vectors) == set(fragmentation.children("F0"))
        for vector in output.virtual_parent_vectors.values():
            assert len(vector) == plan.n_steps + 1


class TestNonRootFragmentSelection:
    def test_candidates_carry_only_own_init_variables(self, fragmentation):
        plan = plan_for("client/broker/name")
        # Anna's broker fragment: its name node is a candidate because the
        # fragment cannot know whether its root is reached via client/broker.
        broker_fragment_id = next(
            fid for fid in fragmentation.children("F0")
            if fragmentation[fid].root.tag == "broker" and not fragmentation[fid].is_leaf()
        )
        fragment = fragmentation[broker_fragment_id]
        output = evaluate_fragment_selection(
            fragment, plan, None,
            variable_init_vector(plan, broker_fragment_id), is_root_fragment=False,
        )
        assert output.candidates, "the broker's name node must be undecided locally"
        for formula in output.candidates.values():
            for name in variables_of(formula):
                assert name.startswith(f"sv:{broker_fragment_id}:")
        assert not output.answers

    def test_concrete_init_vector_removes_candidates(self, fragmentation):
        plan = plan_for("client/broker/name")
        broker_fragment_id = next(
            fid for fid in fragmentation.children("F0")
            if fragmentation[fid].root.tag == "broker"
        )
        fragment = fragmentation[broker_fragment_id]
        # Simulate the XPath-annotation initialization: the fragment root's
        # parent is known to match the prefix "client".
        init = [False, True, False, False]
        output = evaluate_fragment_selection(fragment, plan, None, init, is_root_fragment=False)
        assert not output.candidates
        assert len(output.answers) == 1

    def test_operations_counted(self, fragmentation):
        plan = plan_for("client/broker/name")
        output = evaluate_fragment_selection(
            fragmentation.root_fragment, plan, None,
            concrete_root_init_vector(plan), is_root_fragment=True,
        )
        assert output.operations >= fragmentation.root_fragment.element_count()


class TestQualifierProvider:
    def test_provider_values_gate_answers(self, fragmentation):
        plan = plan_for("client[country]/name")
        root_fragment = fragmentation.root_fragment

        def all_false(node):
            return (False,)

        def all_true(node):
            return (True,)

        blocked = evaluate_fragment_selection(
            root_fragment, plan, all_false, concrete_root_init_vector(plan), True
        )
        allowed = evaluate_fragment_selection(
            root_fragment, plan, all_true, concrete_root_init_vector(plan), True
        )
        assert not blocked.answers
        assert len(allowed.answers) == 3
