"""Tests for algorithm PaX2: correctness, the two-visit bound, equivalence
with PaX3."""

import pytest

from repro.core.pax2 import run_pax2
from repro.core.pax3 import run_pax3
from repro.distributed.placement import round_robin_placement
from repro.xpath.centralized import evaluate_centralized
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    PAPER_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)

DATA_QUERIES = {name: q for name, q in CLIENTELE_QUERIES.items() if name != "boolean_goog"}


@pytest.fixture(scope="module")
def tree():
    return clientele_example_tree()


@pytest.fixture(scope="module")
def fragmentation(tree):
    return clientele_paper_fragmentation(tree)


class TestCorrectness:
    @pytest.mark.parametrize("query_name", sorted(DATA_QUERIES))
    @pytest.mark.parametrize("use_annotations", [False, True])
    def test_matches_centralized_on_paper_example(
        self, tree, fragmentation, query_name, use_annotations
    ):
        query = DATA_QUERIES[query_name]
        expected = evaluate_centralized(tree, query).answer_ids
        stats = run_pax2(fragmentation, query, use_annotations=use_annotations)
        assert stats.answer_ids == expected

    @pytest.mark.parametrize("query_name", sorted(PAPER_QUERIES))
    @pytest.mark.parametrize("use_annotations", [False, True])
    def test_matches_centralized_on_xmark(self, small_ft2_scenario, query_name, use_annotations):
        scenario = small_ft2_scenario
        query = PAPER_QUERIES[query_name]
        expected = evaluate_centralized(scenario.tree, query).answer_ids
        stats = run_pax2(
            scenario.fragmentation, query,
            placement=scenario.placement, use_annotations=use_annotations,
        )
        assert stats.answer_ids == expected

    @pytest.mark.parametrize("query_name", sorted(DATA_QUERIES))
    def test_agrees_with_pax3(self, fragmentation, query_name):
        query = DATA_QUERIES[query_name]
        assert (
            run_pax2(fragmentation, query).answer_ids
            == run_pax3(fragmentation, query).answer_ids
        )

    def test_multiple_fragments_per_site(self, tree, fragmentation):
        placement = round_robin_placement(fragmentation, site_count=3)
        for query in DATA_QUERIES.values():
            expected = evaluate_centralized(tree, query).answer_ids
            assert run_pax2(fragmentation, query, placement=placement).answer_ids == expected


class TestVisitGuarantees:
    @pytest.mark.parametrize("query_name", sorted(DATA_QUERIES))
    def test_at_most_two_visits(self, fragmentation, query_name):
        stats = run_pax2(fragmentation, DATA_QUERIES[query_name])
        assert 1 <= stats.max_site_visits <= 2

    def test_one_visit_when_no_candidates_remain(self, fragmentation):
        # Qualifier-free query with annotations: concrete initialization, no
        # second visit anywhere.
        stats = run_pax2(fragmentation, "client/broker/name", use_annotations=True)
        assert stats.max_site_visits == 1
        assert [stage.name for stage in stats.stages] == ["combined"]

    def test_xmark_queries_respect_bound(self, small_ft2_scenario):
        for query in PAPER_QUERIES.values():
            stats = run_pax2(
                small_ft2_scenario.fragmentation, query,
                placement=small_ft2_scenario.placement,
            )
            assert stats.max_site_visits <= 2


class TestAccounting:
    def test_pax2_communication_not_worse_than_pax3(self, fragmentation):
        for query in DATA_QUERIES.values():
            pax2 = run_pax2(fragmentation, query)
            pax3 = run_pax3(fragmentation, query)
            assert pax2.communication_units <= pax3.communication_units

    def test_stage_structure(self, fragmentation):
        stats = run_pax2(fragmentation, DATA_QUERIES["us_nasdaq_brokers"])
        names = [stage.name for stage in stats.stages]
        assert names[0] == "combined"
        assert len(names) <= 2

    def test_pruning_report(self, fragmentation):
        stats = run_pax2(fragmentation, CLIENTELE_QUERIES["client_names"], use_annotations=True)
        assert set(stats.fragments_pruned) == {"F1", "F2", "F3", "F4"}

    def test_empty_answer(self, fragmentation):
        stats = run_pax2(fragmentation, 'client[country/text() = "france"]/name')
        assert stats.answer_ids == []
