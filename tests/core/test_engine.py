"""Tests for the public DistributedQueryEngine API and QueryResult."""

import pytest

from repro.core.engine import ALGORITHMS, DistributedQueryEngine
from repro.xpath.centralized import evaluate_centralized
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)


@pytest.fixture(scope="module")
def tree():
    return clientele_example_tree()


@pytest.fixture(scope="module")
def engine(tree):
    return DistributedQueryEngine(clientele_paper_fragmentation(tree))


class TestEngine:
    def test_default_configuration(self, engine):
        assert engine.algorithm == "pax2"
        assert engine.use_annotations is True
        assert "pax2" in repr(engine)

    def test_unknown_algorithm_rejected(self, tree):
        with pytest.raises(ValueError):
            DistributedQueryEngine(clientele_paper_fragmentation(tree), algorithm="magic")

    @pytest.mark.parametrize("algorithm", sorted(set(ALGORITHMS) - {"parbox"}))
    def test_execute_with_each_algorithm(self, tree, engine, algorithm):
        query = CLIENTELE_QUERIES["brokers_goog"]
        result = engine.execute(query, algorithm=algorithm)
        assert result.answer_ids == evaluate_centralized(tree, query).answer_ids

    def test_parbox_reachable_through_algorithm_parameter(self, tree, engine):
        # Boolean queries run through the same execute() door as the others.
        true_query = CLIENTELE_QUERIES["boolean_goog"]
        result = engine.execute(true_query, algorithm="parbox")
        assert result.answer_ids == [tree.root.node_id]
        assert engine.execute('.[//stock/code/text() = "msft"]', algorithm="parbox").answer_ids == []
        # Engines can default to it, too.
        parbox_engine = DistributedQueryEngine(
            clientele_paper_fragmentation(tree), algorithm="parbox"
        )
        assert parbox_engine.run(true_query).algorithm == "ParBoX"

    def test_run_returns_raw_stats(self, engine):
        stats = engine.run(CLIENTELE_QUERIES["client_names"])
        assert stats.algorithm == "PaX2"
        assert stats.answer_count == 3

    def test_execute_boolean(self, engine):
        assert engine.execute_boolean(CLIENTELE_QUERIES["boolean_goog"]) is True
        assert engine.execute_boolean('.[//stock/code/text() = "msft"]') is False

    def test_evaluate_centralized_ground_truth(self, engine):
        query = CLIENTELE_QUERIES["us_nasdaq_brokers"]
        assert engine.evaluate_centralized(query).answer_ids == engine.execute(query).answer_ids

    def test_annotation_override_per_query(self, engine):
        with_xa = engine.run(CLIENTELE_QUERIES["client_names"], use_annotations=True)
        without_xa = engine.run(CLIENTELE_QUERIES["client_names"], use_annotations=False)
        assert with_xa.answer_ids == without_xa.answer_ids
        assert with_xa.fragments_pruned and not without_xa.fragments_pruned

    def test_explain_lists_fragments_and_pruning(self, engine):
        text = engine.explain(CLIENTELE_QUERIES["client_names"])
        assert "F0" in text and "prune" in text and "selection:" in text

    def test_describe_fragmentation(self, engine):
        text = engine.describe_fragmentation()
        assert "placement:" in text and "F0 -> S0" in text


class TestQueryResult:
    def test_nodes_and_texts(self, tree, engine):
        result = engine.execute(CLIENTELE_QUERIES["client_names"])
        assert result.texts() == ["Anna", "Kim", "Lisa"]
        assert [node.tag for node in result.nodes()] == ["name", "name", "name"]
        assert len(result) == 3
        assert result.answer_ids[0] in result

    def test_iteration_yields_nodes(self, engine):
        result = engine.execute(CLIENTELE_QUERIES["client_names"])
        assert [node.text() for node in result] == ["Anna", "Kim", "Lisa"]

    def test_to_xml_snippets(self, engine):
        snippets = engine.execute(CLIENTELE_QUERIES["client_names"]).to_xml()
        assert snippets[0].strip() == "<name>Anna</name>"

    def test_summary_and_repr(self, engine):
        result = engine.execute(CLIENTELE_QUERIES["brokers_goog"])
        assert "PaX2" in result.summary()
        assert "answers" in repr(result)
