"""Differential tests for the fused multi-query scan.

The batch path (:func:`repro.core.batch.run_pax2_batch` and the fused
kernel underneath it) must produce, for every query of every wave, answers
*and* traffic accounting identical to the single-query kernel and to the
object-tree reference engine — on every bundled workload, at batch sizes
{1, 2, 7}, with duplicate queries in the wave, and for every engine flag
(including the numpy vector tier when numpy is importable).
"""

import pytest

from repro.core.batch import dedup_slots, run_pax2_batch
from repro.core.combined import evaluate_fragment_combined
from repro.core.common import ensure_plan
from repro.core.engine import DistributedQueryEngine
from repro.core.kernel.batch import evaluate_fragment_combined_batch
from repro.core.kernel.combined import evaluate_fragment_combined_flat
from repro.core.kernel.dispatch import KERNEL, REFERENCE, VECTOR
from repro.core.pax2 import run_pax2
from repro.core.vector import numpy_available
from repro.core.selection import concrete_root_init_vector, variable_init_vector
from repro.workloads.queries import (
    CLIENTELE_QUERIES,
    PAPER_QUERIES,
    clientele_example_tree,
    clientele_paper_fragmentation,
)
from repro.workloads.scenarios import build_ft1, build_ft2


def available_engines():
    """All engine tiers runnable in this process (vector needs numpy)."""
    if numpy_available():
        return (KERNEL, REFERENCE, VECTOR)
    return (KERNEL, REFERENCE)


def fingerprint(stats):
    """Everything the paper's guarantees measure about one run."""
    return {
        "answers": stats.answer_ids,
        "communication_units": stats.communication_units,
        "local_units": stats.local_units,
        "message_count": stats.message_count,
        "total_operations": stats.total_operations,
        "answer_nodes_shipped": stats.answer_nodes_shipped,
        "visits": stats.visits_by_site(),
        "fragments_evaluated": stats.fragments_evaluated,
        "fragments_pruned": stats.fragments_pruned,
    }


def wave_of(queries, size):
    """A deterministic wave: round-robin over the query pool."""
    return [queries[index % len(queries)] for index in range(size)]


@pytest.fixture(scope="module")
def workloads():
    clientele = clientele_paper_fragmentation(clientele_example_tree())
    ft1 = build_ft1(fragment_count=4, total_bytes=25_000, seed=7)
    ft2 = build_ft2(total_bytes=30_000, seed=5)
    return {
        "clientele": (
            clientele,
            None,
            [q for q in CLIENTELE_QUERIES.values() if not q.startswith(".")],
        ),
        "xmark-ft1": (ft1.fragmentation, ft1.placement, list(PAPER_QUERIES.values())),
        "xmark-ft2": (ft2.fragmentation, ft2.placement, list(PAPER_QUERIES.values())),
    }


@pytest.mark.parametrize("use_annotations", [False, True])
@pytest.mark.parametrize("batch_size", [1, 2, 7])
def test_batch_matches_solo_kernel_and_reference(workloads, use_annotations, batch_size):
    for name, (fragmentation, placement, queries) in workloads.items():
        solo = {}
        for query in queries:
            kernel = fingerprint(
                run_pax2(
                    fragmentation, query, placement=placement,
                    use_annotations=use_annotations, engine=KERNEL,
                )
            )
            reference = fingerprint(
                run_pax2(
                    fragmentation, query, placement=placement,
                    use_annotations=use_annotations, engine=REFERENCE,
                )
            )
            assert kernel == reference, (name, query)
            if numpy_available():
                vector = fingerprint(
                    run_pax2(
                        fragmentation, query, placement=placement,
                        use_annotations=use_annotations, engine=VECTOR,
                    )
                )
                assert vector == reference, (name, query)
            solo[query] = kernel
        wave = wave_of(queries, batch_size)
        for engine in available_engines():
            batch = run_pax2_batch(
                fragmentation, wave, placement=placement,
                use_annotations=use_annotations, engine=engine,
            )
            assert len(batch) == len(wave)
            for query, stats in zip(wave, batch):
                assert fingerprint(stats) == solo[query], (
                    name, use_annotations, batch_size, engine, query,
                )


def test_wave_of_duplicates_collapses_to_one_slot(workloads):
    fragmentation, placement, queries = workloads["xmark-ft2"]
    query = queries[0]
    spellings = [query, query, query.replace("/site/", "/./site/")]
    plans = [ensure_plan(q) for q in spellings]
    slot_of, slot_plans = dedup_slots(plans)
    assert slot_of == [0, 0, 0]
    assert len(slot_plans) == 1

    solo = fingerprint(run_pax2(fragmentation, query, placement=placement))
    for stats in run_pax2_batch(fragmentation, spellings, placement=placement):
        assert fingerprint(stats)["answers"] == solo["answers"]
        assert fingerprint(stats)["communication_units"] == solo["communication_units"]


def test_fused_kernel_outputs_are_bit_identical(workloads):
    """Per-fragment outputs of the batched scans match every single path.

    The kernel's fused batch and (when numpy is importable) the vector
    tier's stacked batch must both reproduce, field for field, what the
    single-query kernel and the object-tree reference compute.
    """
    def outputs_equal(a, b):
        return (
            a.root_head == b.root_head
            and a.root_desc == b.root_desc
            and a.answers == b.answers
            and a.candidates == b.candidates
            and a.virtual_parent_vectors == b.virtual_parent_vectors
            and a.operations == b.operations
            and a.root_vector_units == b.root_vector_units
        )

    for name, (fragmentation, _, queries) in workloads.items():
        plans = [ensure_plan(query) for query in queries]
        root_id = fragmentation.root_fragment_id
        for fragment_id in fragmentation.fragment_ids():
            fragment = fragmentation[fragment_id]
            flat = fragmentation.flat(fragment_id)
            is_root = fragment_id == root_id
            init_vectors = [
                concrete_root_init_vector(plan)
                if is_root
                else variable_init_vector(plan, fragment_id)
                for plan in plans
            ]
            batched = evaluate_fragment_combined_batch(
                fragment, flat, plans, init_vectors, is_root
            )
            vector_batched = None
            if numpy_available():
                from repro.core.vector.batch import (
                    evaluate_fragment_combined_vector_batch,
                )

                vector_batched = evaluate_fragment_combined_vector_batch(
                    fragment, flat, plans, init_vectors, is_root
                )
            for slot, (plan, init_vector, output) in enumerate(
                zip(plans, init_vectors, batched)
            ):
                single = evaluate_fragment_combined_flat(
                    fragment, flat, plan, init_vector, is_root
                )
                reference = evaluate_fragment_combined(
                    fragment, plan, init_vector, is_root
                )
                assert outputs_equal(output, single), (name, fragment_id, plan.source)
                assert outputs_equal(output, reference), (name, fragment_id, plan.source)
                if vector_batched is not None:
                    assert outputs_equal(vector_batched[slot], single), (
                        name, fragment_id, plan.source,
                    )


def test_engine_run_batch_matches_run(workloads):
    fragmentation, placement, queries = workloads["xmark-ft1"]
    engine = DistributedQueryEngine(fragmentation, placement=placement)
    wave = wave_of(queries, 7)
    batch = engine.run_batch(wave)
    for query, stats in zip(wave, batch):
        assert fingerprint(stats) == fingerprint(engine.run(query))


def test_engine_run_batch_falls_back_for_other_algorithms(workloads):
    fragmentation, placement, queries = workloads["clientele"]
    engine = DistributedQueryEngine(fragmentation, placement=placement, algorithm="pax3")
    batch = engine.run_batch(queries[:2])
    for query, stats in zip(queries[:2], batch):
        assert stats.algorithm == "PaX3"
        assert fingerprint(stats) == fingerprint(engine.run(query))


def test_empty_wave():
    fragmentation = clientele_paper_fragmentation(clientele_example_tree())
    assert run_pax2_batch(fragmentation, []) == []


def test_plan_tables_shared_across_spellings():
    """Satellite: the PlanTables cache keys on the normalized fingerprint."""
    from repro.core.kernel.tables import plan_tables

    fragmentation = clientele_paper_fragmentation(clientele_example_tree())
    flat = fragmentation.flat(fragmentation.root_fragment_id)
    a = ensure_plan("//broker/./name")
    b = ensure_plan("//broker/name")
    assert a.fingerprint == b.fingerprint
    assert plan_tables(flat, a) is plan_tables(flat, b)
