"""Unit tests: reassembling fragments reconstructs the original document."""

import pytest

from repro.fragments.fragmenters import cut_random
from repro.fragments.reassembly import reassemble
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation
from repro.xmltree.serializer import serialize

from tests.conftest import make_random_tree


def canonical(tree) -> str:
    return serialize(tree)


class TestReassembly:
    def test_paper_example_round_trips(self):
        tree = clientele_example_tree()
        fragmentation = clientele_paper_fragmentation(tree)
        rebuilt = reassemble(fragmentation)
        assert canonical(rebuilt) == canonical(tree)
        assert rebuilt.size() == tree.size()

    def test_rebuilt_tree_is_a_copy(self):
        tree = clientele_example_tree()
        fragmentation = clientele_paper_fragmentation(tree)
        rebuilt = reassemble(fragmentation)
        original_ids = {id(node) for node in tree.iter_nodes()}
        assert all(id(node) not in original_ids for node in rebuilt.iter_nodes())

    def test_preorder_ids_coincide_with_original(self):
        # Reassembly preserves document order, so the NaiveCentralized
        # baseline can compare node ids directly with the other algorithms.
        tree = clientele_example_tree()
        fragmentation = clientele_paper_fragmentation(tree)
        rebuilt = reassemble(fragmentation)
        original_labels = [node.label for node in tree.iter_nodes()]
        rebuilt_labels = [node.label for node in rebuilt.iter_nodes()]
        assert original_labels == rebuilt_labels

    @pytest.mark.parametrize("seed", range(10))
    def test_random_fragmentations_round_trip(self, seed):
        tree = make_random_tree(seed, max_nodes=80)
        fragmentation = cut_random(tree, fragment_count=5, seed=seed)
        assert canonical(reassemble(fragmentation)) == canonical(tree)
