"""Unit tests for fragments and the induced fragment tree."""

import pytest

from repro.fragments.fragment_tree import FragmentationError, build_fragmentation
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation
from repro.xmltree.builder import element
from repro.xmltree.nodes import XMLTree


@pytest.fixture
def clientele():
    return clientele_example_tree()


@pytest.fixture
def paper_fragmentation(clientele):
    return clientele_paper_fragmentation(clientele)


class TestBuildFragmentation:
    def test_paper_example_has_five_fragments(self, paper_fragmentation):
        assert len(paper_fragmentation) == 5
        assert paper_fragmentation.root_fragment_id == "F0"
        paper_fragmentation.validate()

    def test_fragment_tree_structure_matches_figure_2(self, paper_fragmentation):
        # F0 has three sub-fragments; one of them has a nested sub-fragment.
        children_of_root = paper_fragmentation.children("F0")
        assert len(children_of_root) == 3
        nested = [fid for fid in children_of_root if paper_fragmentation.children(fid)]
        assert len(nested) == 1
        grandchild = paper_fragmentation.children(nested[0])[0]
        assert paper_fragmentation.parent(grandchild) == nested[0]
        assert paper_fragmentation.ancestors(grandchild) == [nested[0], "F0"]

    def test_fragments_cover_tree_disjointly(self, clientele, paper_fragmentation):
        total = sum(f.node_count() for f in paper_fragmentation)
        assert total == clientele.size()
        assert paper_fragmentation.total_nodes() == clientele.size()

    def test_leaf_fragments_have_no_virtual_nodes(self, paper_fragmentation):
        for fragment_id in paper_fragmentation.leaf_fragments():
            assert paper_fragmentation[fragment_id].is_leaf()

    def test_orders(self, paper_fragmentation):
        bottom_up = paper_fragmentation.bottom_up_order()
        top_down = paper_fragmentation.top_down_order()
        assert bottom_up[-1] == "F0"
        assert top_down[0] == "F0"
        for fragment_id in paper_fragmentation.fragment_ids():
            for ancestor in paper_fragmentation.ancestors(fragment_id):
                assert bottom_up.index(fragment_id) < bottom_up.index(ancestor)
                assert top_down.index(ancestor) < top_down.index(fragment_id)

    def test_parent_node_of(self, paper_fragmentation):
        for fragment_id in paper_fragmentation.fragment_ids():
            parent_node = paper_fragmentation.parent_node_of(fragment_id)
            if fragment_id == "F0":
                assert parent_node is None
            else:
                assert parent_node is paper_fragmentation[fragment_id].root.parent

    def test_accounting(self, paper_fragmentation):
        assert paper_fragmentation.max_fragment_elements() >= 1
        assert paper_fragmentation.total_elements() <= paper_fragmentation.total_nodes()
        assert paper_fragmentation.total_bytes() > 0
        summary = paper_fragmentation.summary()
        assert "F0" in summary and "F4" in summary

    def test_single_fragment_degenerate_case(self, clientele):
        fragmentation = build_fragmentation(clientele, [])
        fragmentation.validate()
        assert len(fragmentation) == 1
        assert fragmentation.root_fragment.node_count() == clientele.size()

    def test_nested_cuts_allowed(self):
        tree = XMLTree(element("a", element("b", element("c", element("d")))))
        b, c = tree.root.children[0], tree.root.children[0].children[0]
        fragmentation = build_fragmentation(tree, [b.node_id, c.node_id])
        fragmentation.validate()
        assert fragmentation.parent("F2") == "F1"

    def test_cut_at_root_rejected(self, clientele):
        with pytest.raises(FragmentationError):
            build_fragmentation(clientele, [clientele.root.node_id])

    def test_cut_at_text_node_rejected(self, clientele):
        text_node = next(node for node in clientele.iter_nodes() if node.is_text)
        with pytest.raises(FragmentationError):
            build_fragmentation(clientele, [text_node.node_id])


class TestFragmentSpan:
    def test_virtual_children_excluded_from_span(self, paper_fragmentation):
        root_fragment = paper_fragmentation.root_fragment
        span_ids = {node.node_id for node in root_fragment.iter_span()}
        for child_root_id in root_fragment.virtual_children:
            assert child_root_id not in span_ids

    def test_real_and_virtual_children_partition(self, clientele, paper_fragmentation):
        root_fragment = paper_fragmentation.root_fragment
        for node in root_fragment.iter_span_elements():
            real = root_fragment.real_children(node)
            virtual = root_fragment.virtual_children_of(node)
            assert len(real) + len(virtual) == len(node.children)

    def test_is_virtual(self, paper_fragmentation):
        root_fragment = paper_fragmentation.root_fragment
        for fragment_id in paper_fragmentation.children("F0"):
            assert root_fragment.is_virtual(paper_fragmentation[fragment_id].root)

    def test_counts_are_cached_and_consistent(self, paper_fragmentation):
        fragment = paper_fragmentation["F1"]
        assert fragment.node_count() == sum(1 for _ in fragment.iter_span())
        assert fragment.element_count() == sum(1 for _ in fragment.iter_span_elements())
        assert fragment.node_count() == fragment.node_count()
