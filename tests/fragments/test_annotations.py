"""Unit tests for XPath-annotations on fragment-tree edges."""

import pytest

from repro.fragments.annotations import annotation_table, edge_annotation, root_label_path
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation


@pytest.fixture
def fragmentation():
    return clientele_paper_fragmentation(clientele_example_tree())


class TestEdgeAnnotations:
    def test_root_fragment_has_empty_annotation(self, fragmentation):
        assert edge_annotation(fragmentation, "F0") == []

    def test_broker_fragments_annotated_client_broker(self, fragmentation):
        # Every fragment rooted at a broker hangs off F0 via client/broker,
        # exactly like the (F0, F1) edge in the paper's Figure 6.
        for fragment_id in fragmentation.fragment_ids():
            fragment = fragmentation[fragment_id]
            if fragment.root.tag == "broker":
                assert edge_annotation(fragmentation, fragment_id) == ["client", "broker"]

    def test_nested_market_fragment_annotated_market(self, fragmentation):
        # Anna's NASDAQ market is a sub-fragment of her broker fragment,
        # matching the (F1, F2) = "market" edge of the paper.
        nested = [
            fragment_id
            for fragment_id in fragmentation.fragment_ids()
            if fragmentation.parent(fragment_id) not in (None, "F0")
        ]
        assert len(nested) == 1
        assert edge_annotation(fragmentation, nested[0]) == ["market"]

    def test_kim_market_fragment_annotated_from_root(self, fragmentation):
        top_level_markets = [
            fragment_id
            for fragment_id in fragmentation.fragment_ids()
            if fragmentation.parent(fragment_id) == "F0"
            and fragmentation[fragment_id].root.tag == "market"
        ]
        assert len(top_level_markets) == 1
        assert edge_annotation(fragmentation, top_level_markets[0]) == [
            "client", "broker", "market",
        ]

    def test_annotation_table_covers_every_edge(self, fragmentation):
        table = annotation_table(fragmentation)
        assert set(table) == set(fragmentation.fragment_ids()) - {"F0"}
        for labels in table.values():
            assert labels


class TestRootLabelPath:
    def test_path_is_concatenation_of_edge_annotations(self, fragmentation):
        for fragment_id in fragmentation.fragment_ids():
            path = root_label_path(fragmentation, fragment_id)
            expected = []
            chain = list(reversed([fragment_id] + fragmentation.ancestors(fragment_id)))
            for fid in chain:
                expected.extend(edge_annotation(fragmentation, fid))
            assert path == expected

    def test_path_matches_actual_node_path(self, fragmentation):
        for fragment_id in fragmentation.fragment_ids():
            root = fragmentation[fragment_id].root
            assert root_label_path(fragmentation, fragment_id) == root.root_path_labels()[1:]
