"""Unit tests for the fragmentation strategies."""

import pytest

from repro.fragments.fragment_tree import FragmentationError
from repro.fragments.fragmenters import (
    cut_at_nodes,
    cut_by_size,
    cut_matching,
    cut_random,
    cut_top_level,
)
from repro.workloads.queries import clientele_example_tree
from repro.xmltree.builder import element
from repro.xmltree.nodes import XMLTree

from tests.conftest import make_random_tree


@pytest.fixture
def clientele():
    return clientele_example_tree()


class TestCutAtNodes:
    def test_explicit_cuts(self, clientele):
        brokers = [n.node_id for n in clientele.iter_elements() if n.tag == "broker"]
        fragmentation = cut_at_nodes(clientele, brokers)
        fragmentation.validate()
        assert len(fragmentation) == len(brokers) + 1


class TestCutTopLevel:
    def test_first_child_stays_with_root(self, clientele):
        fragmentation = cut_top_level(clientele)
        fragmentation.validate()
        # three clients -> root fragment keeps the first, two more fragments
        assert len(fragmentation) == 3

    def test_all_children_cut(self, clientele):
        fragmentation = cut_top_level(clientele, keep_first_with_root=False)
        assert len(fragmentation) == 4
        assert fragmentation.root_fragment.element_count() == 1


class TestCutMatching:
    def test_cut_at_query_matches(self, clientele):
        fragmentation = cut_matching(clientele, "client/broker/market")
        fragmentation.validate()
        assert len(fragmentation) == 5  # four markets + root fragment
        for fragment_id in fragmentation.fragment_ids():
            if fragment_id != "F0":
                assert fragmentation[fragment_id].root.tag == "market"

    def test_query_without_matches_rejected(self, clientele):
        with pytest.raises(FragmentationError):
            cut_matching(clientele, "client/nonexistent")


class TestCutBySize:
    def test_fragments_respect_budget(self, clientele):
        fragmentation = cut_by_size(clientele, max_elements=10)
        fragmentation.validate()
        assert len(fragmentation) > 1
        for fragment in fragmentation:
            if fragment.fragment_id != fragmentation.root_fragment_id:
                # A cut subtree's own weight stays close to the budget.
                assert fragment.element_count() <= 2 * 10

    def test_budget_larger_than_tree_yields_single_fragment(self, clientele):
        fragmentation = cut_by_size(clientele, max_elements=10_000)
        assert len(fragmentation) == 1

    def test_invalid_budget_rejected(self, clientele):
        with pytest.raises(ValueError):
            cut_by_size(clientele, max_elements=0)

    @pytest.mark.parametrize("seed", range(5))
    def test_validates_on_random_trees(self, seed):
        tree = make_random_tree(seed, max_nodes=120)
        cut_by_size(tree, max_elements=15).validate()


class TestCutRandom:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_fragmentations_are_valid(self, seed):
        tree = make_random_tree(seed, max_nodes=80)
        fragmentation = cut_random(tree, fragment_count=4, seed=seed)
        fragmentation.validate()
        assert 1 <= len(fragmentation) <= 4

    def test_deterministic_per_seed(self, clientele):
        first = cut_random(clientele, 4, seed=1).fragment_root_ids
        second = cut_random(clientele, 4, seed=1).fragment_root_ids
        assert first == second

    def test_single_fragment_request(self, clientele):
        assert len(cut_random(clientele, 1, seed=0)) == 1

    def test_exclude_predicate(self, clientele):
        fragmentation = cut_random(
            clientele, 5, seed=2, exclude=lambda node: node.tag != "broker"
        )
        for fragment_id in fragmentation.fragment_ids():
            if fragment_id != "F0":
                assert fragmentation[fragment_id].root.tag == "broker"

    def test_invalid_count_rejected(self, clientele):
        with pytest.raises(ValueError):
            cut_random(clientele, 0)

    def test_more_fragments_than_nodes(self):
        tree = XMLTree(element("a", element("b")))
        fragmentation = cut_random(tree, fragment_count=10, seed=0)
        fragmentation.validate()
        assert len(fragmentation) == 2
