"""Unit tests for the simulated network and message accounting."""

import pytest

from repro.distributed.messages import MessageKind
from repro.distributed.network import Network
from repro.distributed.placement import one_site_per_fragment, round_robin_placement
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation


@pytest.fixture
def fragmentation():
    return clientele_paper_fragmentation(clientele_example_tree())


@pytest.fixture
def network(fragmentation):
    return Network(fragmentation, one_site_per_fragment(fragmentation))


class TestTopology:
    def test_one_site_per_fragment(self, fragmentation, network):
        assert len(network.sites) == len(fragmentation)
        for fragment_id in fragmentation.fragment_ids():
            assert network.site_of(fragment_id).holds(fragment_id)

    def test_coordinator_holds_root_fragment(self, fragmentation, network):
        assert network.coordinator.holds(fragmentation.root_fragment_id)

    def test_fragments_on_site(self, fragmentation):
        placement = round_robin_placement(fragmentation, site_count=2)
        network = Network(fragmentation, placement)
        assert len(network.sites) == 2
        total = sum(len(network.fragments_on(site_id)) for site_id in network.site_ids())
        assert total == len(fragmentation)

    def test_sites_holding(self, fragmentation, network):
        all_sites = network.sites_holding(fragmentation.fragment_ids())
        assert all_sites == network.site_ids()
        assert network.sites_holding(["F0"]) == [network.coordinator_id]

    def test_placement_must_cover_root(self, fragmentation):
        placement = one_site_per_fragment(fragmentation)
        placement.pop(fragmentation.root_fragment_id)
        with pytest.raises(ValueError):
            Network(fragmentation, placement)


class TestMessaging:
    def test_remote_messages_count_toward_traffic(self, network):
        network.send("S0", "S1", MessageKind.EXEC_REQUEST, units=5)
        network.send("S1", "S0", MessageKind.ANSWERS, units=3)
        assert network.communication_units() == 8
        assert network.message_count() == 2
        assert network.local_units() == 0

    def test_local_messages_are_free(self, network):
        network.send("S0", "S0", MessageKind.RESOLVED_BINDINGS, units=7)
        assert network.communication_units() == 0
        assert network.local_units() == 7
        assert network.message_count() == 0

    def test_negative_units_clamped(self, network):
        message = network.send("S0", "S1", MessageKind.ANSWERS, units=-4)
        assert message.units == 0

    def test_reset_accounting(self, network):
        network.send("S0", "S1", MessageKind.ANSWERS, units=3)
        network.sites["S1"].add_operations(10)
        network.reset_accounting()
        assert network.communication_units() == 0
        assert network.sites["S1"].operations == 0

    def test_collect_stats(self, network):
        network.send("S0", "S2", MessageKind.QUALIFIER_VECTORS, units=11)
        with network.sites["S2"].visit("stage"):
            network.sites["S2"].add_operations(100)
        stats = network.collect_stats()
        assert stats.communication_units == 11
        assert stats.sites["S2"].visits == 1
        assert stats.sites["S2"].operations == 100
        assert stats.sites["S2"].seconds >= 0.0
