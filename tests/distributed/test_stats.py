"""Unit tests for run statistics and their derived quantities."""

from repro.distributed.stats import RunStats, SiteStats, StageStats


def make_stats() -> RunStats:
    stats = RunStats(algorithm="PaX2", query="//a", use_annotations=True)
    stats.answer_ids = [4, 9, 11]
    stats.stages = [
        StageStats(name="combined", parallel_seconds=0.05, total_seconds=0.2,
                   coordinator_seconds=0.01, sites_involved=4),
        StageStats(name="answers", parallel_seconds=0.01, total_seconds=0.02,
                   coordinator_seconds=0.0, sites_involved=1),
    ]
    stats.sites = {
        "S0": SiteStats(site_id="S0", fragment_ids=["F0"], visits=2, seconds=0.07, operations=50),
        "S1": SiteStats(site_id="S1", fragment_ids=["F1"], visits=1, seconds=0.05, operations=80),
    }
    stats.communication_units = 42
    stats.local_units = 7
    stats.message_count = 6
    stats.fragments_evaluated = ["F0", "F1"]
    stats.fragments_pruned = ["F2"]
    stats.answer_nodes_shipped = 9
    return stats


class TestDerivedQuantities:
    def test_answer_count(self):
        assert make_stats().answer_count == 3

    def test_parallel_and_total_seconds(self):
        stats = make_stats()
        assert stats.parallel_seconds == (0.05 + 0.01) + (0.01 + 0.0)
        assert stats.total_seconds == (0.2 + 0.01) + (0.02 + 0.0)
        assert stats.total_seconds >= stats.parallel_seconds

    def test_max_site_visits_and_operations(self):
        stats = make_stats()
        assert stats.max_site_visits == 2
        assert stats.total_operations == 130
        assert stats.visits_by_site() == {"S0": 2, "S1": 1}

    def test_empty_stats(self):
        empty = RunStats(algorithm="PaX3", query="a")
        assert empty.max_site_visits == 0
        assert empty.parallel_seconds == 0.0
        assert empty.answer_count == 0

    def test_summary_mentions_key_figures(self):
        text = make_stats().summary()
        assert "PaX2" in text
        assert "XPath-annotations" in text
        assert "42 units" in text
        assert "pruned fragments : F2" in text
        assert "stage combined" in text
