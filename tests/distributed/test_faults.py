"""The fault injector: deterministic verdicts and transport integration."""

import asyncio

import pytest

from repro.distributed.async_transport import AsyncTransport
from repro.distributed.faults import (
    FaultInjector,
    FaultPolicy,
    FaultStats,
    SiteFaultProfile,
    TransportError,
)
from repro.distributed.network import Network
from repro.distributed.placement import one_site_per_fragment
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation


DROP_ALL = SiteFaultProfile(drop_probability=1.0)


@pytest.fixture
def fragmentation():
    return clientele_paper_fragmentation(clientele_example_tree())


@pytest.fixture
def network(fragmentation):
    return Network(fragmentation, one_site_per_fragment(fragmentation))


class TestProfiles:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_probability": -0.1},
            {"drop_probability": 1.5},
            {"duplicate_probability": 2.0},
            {"delay_probability": -1.0},
            {"delay_seconds": -0.1},
            {"extra_seconds_per_message": -0.1},
            {"blackout_period": -1},
            {"blackout_period": 2, "blackout_length": 3},
        ],
    )
    def test_invalid_profiles_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SiteFaultProfile(**kwargs)

    def test_quiet_detection(self):
        assert SiteFaultProfile().is_quiet
        # A blackout window with zero length never fires: still quiet.
        assert SiteFaultProfile(blackout_period=5).is_quiet
        assert not SiteFaultProfile(drop_probability=0.01).is_quiet
        assert not SiteFaultProfile(extra_seconds_per_message=0.001).is_quiet
        assert not SiteFaultProfile(blackout_period=5, blackout_length=1).is_quiet

    def test_policy_per_site_override(self):
        policy = FaultPolicy(default=SiteFaultProfile(), sites={"S1": DROP_ALL})
        assert policy.profile_for("S1") is DROP_ALL
        assert policy.profile_for("S2") is policy.default


class TestDeterminism:
    def drive(self, injector, count=40):
        return [injector.decide("C", "S1", "vector", 10) for _ in range(count)]

    def test_same_seed_same_sequence(self):
        policy = FaultPolicy(
            default=SiteFaultProfile(
                drop_probability=0.3,
                duplicate_probability=0.2,
                delay_probability=0.2,
                delay_seconds=0.01,
            ),
            seed=7,
        )
        first = self.drive(FaultInjector(policy))
        second = self.drive(FaultInjector(policy))
        assert first == second

    def test_reset_restarts_the_sequence(self):
        policy = FaultPolicy(default=SiteFaultProfile(drop_probability=0.5), seed=3)
        injector = FaultInjector(policy)
        first = self.drive(injector)
        injector.reset()
        assert injector.stats.decisions == 0
        assert self.drive(injector) == first

    def test_different_seed_different_sequence(self):
        profile = SiteFaultProfile(drop_probability=0.5)
        drops_a = [
            d.drop for d in self.drive(FaultInjector(FaultPolicy(default=profile, seed=1)))
        ]
        drops_b = [
            d.drop for d in self.drive(FaultInjector(FaultPolicy(default=profile, seed=2)))
        ]
        assert drops_a != drops_b

    def test_quiet_site_does_not_consume_indices(self):
        """Traffic through clean sites must not perturb a faulty site's
        deterministic sequence (quiet profiles skip the index counter)."""
        policy = FaultPolicy(
            default=SiteFaultProfile(),
            sites={"S1": SiteFaultProfile(drop_probability=0.5)},
            seed=11,
        )
        plain = FaultInjector(policy)
        reference = [plain.decide("C", "S1", "vector", 5) for _ in range(20)]
        interleaved = FaultInjector(policy)
        verdicts = []
        for _ in range(20):
            interleaved.decide("C", "S2", "vector", 5)  # quiet traffic
            verdicts.append(interleaved.decide("C", "S1", "vector", 5))
        assert verdicts == reference

    def test_disabled_injector_is_inert(self):
        injector = FaultInjector(FaultPolicy(default=DROP_ALL), enabled=False)
        decision = injector.decide("C", "S1", "vector", 5)
        assert not decision.dropped
        assert decision.extra_seconds == 0.0 and decision.duplicates == 0
        assert injector.stats.decisions == 0


class TestVerdicts:
    def test_drop_probability_one_drops_everything(self):
        injector = FaultInjector(FaultPolicy(default=DROP_ALL))
        for _ in range(10):
            decision = injector.decide("C", "S1", "vector", 5)
            assert decision.dropped and decision.drop and not decision.blackout
        assert injector.stats.drops == 10
        assert injector.stats.blackout_drops == 0

    def test_duplicates_and_delays(self):
        profile = SiteFaultProfile(
            duplicate_probability=1.0,
            delay_probability=1.0,
            delay_seconds=0.02,
            extra_seconds_per_message=0.005,
        )
        injector = FaultInjector(FaultPolicy(default=profile))
        decision = injector.decide("C", "S1", "vector", 5)
        assert decision.duplicates == 1
        # Spike on top of the straggler tax.
        assert decision.extra_seconds == pytest.approx(0.025)
        assert injector.stats.duplicates == 1
        assert injector.stats.delays == 1
        assert injector.stats.delay_seconds == pytest.approx(0.025)

    def test_straggler_tax_on_every_message(self):
        profile = SiteFaultProfile(extra_seconds_per_message=0.003)
        injector = FaultInjector(FaultPolicy(default=profile))
        for _ in range(5):
            assert injector.decide("C", "S1", "x", 1).extra_seconds == pytest.approx(0.003)
        # The tax alone is not an "injected fault" in by_site accounting.
        assert injector.stats.by_site == {}
        assert injector.stats.delays == 5

    def test_blackout_windows_by_message_index(self):
        profile = SiteFaultProfile(blackout_period=4, blackout_length=2)
        injector = FaultInjector(FaultPolicy(default=profile))
        verdicts = [injector.decide("C", "S1", "x", 1).blackout for _ in range(8)]
        assert verdicts == [True, True, False, False, True, True, False, False]
        assert injector.stats.blackout_drops == 4

    def test_fault_attributed_to_override_site(self):
        policy = FaultPolicy(sites={"S2": DROP_ALL})
        injector = FaultInjector(policy)
        # S2 as receiver and as sender: both charged to S2.
        assert injector.decide("C", "S2", "x", 1).site == "S2"
        assert injector.decide("S2", "C", "x", 1).site == "S2"
        # No override anywhere: blame the receiver.
        assert injector.decide("C", "S9", "x", 1).site == "S9"

    def test_stats_by_site_counts_injected_faults(self):
        stats = FaultStats()
        injector = FaultInjector(FaultPolicy(sites={"S1": DROP_ALL}))
        for _ in range(3):
            injector.decide("C", "S1", "x", 1)
        assert injector.stats.by_site == {"S1": 3}
        assert "drops" in injector.stats.to_dict()
        assert "3 drops" in injector.stats.summary()
        assert stats.decisions == 0  # fresh object untouched


class TestTransportIntegration:
    def send(self, transport, receiver="S1", buffer=None):
        return asyncio.run(
            transport.send("C", receiver, "vector", 5, buffer=buffer)
        )

    def test_drop_raises_and_unstages_the_message(self, network):
        injector = FaultInjector(FaultPolicy(sites={"S1": DROP_ALL}))
        transport = AsyncTransport(network, injector=injector)
        before = len(network.messages)
        with pytest.raises(TransportError) as excinfo:
            self.send(transport)
        assert excinfo.value.site == "S1" and excinfo.value.reason == "drop"
        assert len(network.messages) == before  # lost traffic never counted
        assert transport.sent_messages == 0

    def test_buffered_round_commits_only_on_success(self, network):
        transport = AsyncTransport(network)
        buffer = transport.begin_round()
        self.send(transport, buffer=buffer)
        assert len(network.messages) == 0  # staged, not landed
        assert buffer.sent_messages == 1
        transport.commit_round(buffer)
        assert len(network.messages) == 1
        assert transport.sent_messages == 1

    def test_abandoned_buffer_leaves_no_trace(self, network):
        transport = AsyncTransport(network)
        buffer = transport.begin_round()
        self.send(transport, buffer=buffer)
        # Dropping the buffer (a failed attempt) leaves accounting untouched.
        assert len(network.messages) == 0 and transport.sent_messages == 0

    def test_dropped_send_unstages_from_its_buffer(self, network):
        injector = FaultInjector(FaultPolicy(sites={"S1": DROP_ALL}))
        transport = AsyncTransport(network, injector=injector)
        buffer = transport.begin_round()
        with pytest.raises(TransportError):
            self.send(transport, buffer=buffer)
        assert buffer.messages == [] and buffer.sent_messages == 0

    def test_duplicate_delivery_charged_twice(self, network):
        injector = FaultInjector(
            FaultPolicy(sites={"S1": SiteFaultProfile(duplicate_probability=1.0)})
        )
        transport = AsyncTransport(network, injector=injector)
        self.send(transport)
        assert len(network.messages) == 2
        assert transport.sent_messages == 2
        assert network.messages[0].units == network.messages[1].units == 5

    def test_local_messages_bypass_the_injector(self, network):
        injector = FaultInjector(FaultPolicy(default=DROP_ALL))
        transport = AsyncTransport(network, injector=injector)
        message = asyncio.run(transport.send("S1", "S1", "vector", 5))
        assert message.is_local
        assert injector.stats.decisions == 0

    def test_deadline_capped_send_fails_with_deadline_reason(self, network):
        class Budget:
            def remaining(self):
                return 0.0

        injector = FaultInjector(
            FaultPolicy(sites={"S1": SiteFaultProfile(extra_seconds_per_message=0.05)})
        )
        transport = AsyncTransport(network, injector=injector, deadline=Budget())
        before = len(network.messages)
        with pytest.raises(TransportError) as excinfo:
            self.send(transport)
        assert excinfo.value.reason == "deadline"
        assert len(network.messages) == before

    def test_hedged_send_races_a_second_copy(self, network):
        class Counter:
            hedged_sends = 0

        counter = Counter()
        injector = FaultInjector(
            FaultPolicy(
                sites={
                    "S1": SiteFaultProfile(
                        delay_probability=1.0, delay_seconds=0.01
                    )
                }
            )
        )
        transport = AsyncTransport(
            network,
            injector=injector,
            hedge_after_seconds=0.0,
            hedge_counter=counter,
        )
        self.send(transport)
        assert counter.hedged_sends == 1
        # The hedge's copy is real traffic: two messages on the wire.
        assert len(network.messages) == 2
        assert transport.sent_messages == 2
