"""Unit tests for placement policies."""

import pytest

from repro.distributed.placement import (
    explicit_placement,
    one_site_per_fragment,
    round_robin_placement,
    single_site_placement,
)
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation


@pytest.fixture
def fragmentation():
    return clientele_paper_fragmentation(clientele_example_tree())


class TestPlacements:
    def test_one_site_per_fragment(self, fragmentation):
        placement = one_site_per_fragment(fragmentation)
        assert len(set(placement.values())) == len(fragmentation)
        assert placement["F0"] == "S0"

    def test_round_robin(self, fragmentation):
        placement = round_robin_placement(fragmentation, site_count=2)
        assert set(placement.values()) == {"S0", "S1"}
        counts = [list(placement.values()).count(site) for site in ("S0", "S1")]
        assert abs(counts[0] - counts[1]) <= 1

    def test_round_robin_requires_positive_count(self, fragmentation):
        with pytest.raises(ValueError):
            round_robin_placement(fragmentation, site_count=0)

    def test_single_site(self, fragmentation):
        placement = single_site_placement(fragmentation, site_id="only")
        assert set(placement.values()) == {"only"}

    def test_explicit_placement_validates_coverage(self, fragmentation):
        full = {fid: "S9" for fid in fragmentation.fragment_ids()}
        assert explicit_placement(fragmentation, full) == full
        with pytest.raises(ValueError):
            explicit_placement(fragmentation, {"F0": "S9"})


class TestPlacementEdgeCases:
    def test_one_site_per_fragment_on_single_fragment_tree(self):
        from repro.fragments.fragment_tree import build_fragmentation

        fragmentation = build_fragmentation(clientele_example_tree(), [])
        placement = one_site_per_fragment(fragmentation)
        assert placement == {fragmentation.root_fragment_id: "S0"}

    def test_one_site_per_fragment_follows_fragment_id_order(self, fragmentation):
        placement = one_site_per_fragment(fragmentation, site_prefix="M")
        for index, fragment_id in enumerate(fragmentation.fragment_ids()):
            assert placement[fragment_id] == f"M{index}"
        # Bijective: as many sites as fragments, no sharing.
        assert len(set(placement.values())) == len(fragmentation)

    def test_root_fragment_site_is_the_coordinator(self, fragmentation):
        from repro.distributed.network import Network

        placement = one_site_per_fragment(fragmentation)
        network = Network(fragmentation, placement)
        assert network.coordinator_id == placement[fragmentation.root_fragment_id]

    def test_multi_fragment_per_site_accounting(self, fragmentation):
        # Pack five fragments onto two sites: every fragment must still be
        # reachable, and each site must list exactly its own fragments.
        from repro.distributed.network import Network

        placement = round_robin_placement(fragmentation, site_count=2)
        network = Network(fragmentation, placement)
        covered = [fid for site in ("S0", "S1") for fid in network.fragments_on(site)]
        assert sorted(covered) == sorted(fragmentation.fragment_ids())
        for fragment_id, site_id in placement.items():
            assert network.site_of(fragment_id).site_id == site_id

    def test_multi_fragment_per_site_answers_unchanged(self, fragmentation):
        from repro.core.pax2 import run_pax2

        query = "client/broker/name"
        spread = run_pax2(fragmentation, query, placement=one_site_per_fragment(fragmentation))
        packed = run_pax2(
            fragmentation, query, placement=round_robin_placement(fragmentation, site_count=2)
        )
        single = run_pax2(fragmentation, query, placement=single_site_placement(fragmentation))
        assert spread.answer_ids == packed.answer_ids == single.answer_ids
        # Everything on one site means no network traffic at all.
        assert single.communication_units == 0
