"""Unit tests for placement policies."""

import pytest

from repro.distributed.placement import (
    explicit_placement,
    one_site_per_fragment,
    round_robin_placement,
    single_site_placement,
)
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation


@pytest.fixture
def fragmentation():
    return clientele_paper_fragmentation(clientele_example_tree())


class TestPlacements:
    def test_one_site_per_fragment(self, fragmentation):
        placement = one_site_per_fragment(fragmentation)
        assert len(set(placement.values())) == len(fragmentation)
        assert placement["F0"] == "S0"

    def test_round_robin(self, fragmentation):
        placement = round_robin_placement(fragmentation, site_count=2)
        assert set(placement.values()) == {"S0", "S1"}
        counts = [list(placement.values()).count(site) for site in ("S0", "S1")]
        assert abs(counts[0] - counts[1]) <= 1

    def test_round_robin_requires_positive_count(self, fragmentation):
        with pytest.raises(ValueError):
            round_robin_placement(fragmentation, site_count=0)

    def test_single_site(self, fragmentation):
        placement = single_site_placement(fragmentation, site_id="only")
        assert set(placement.values()) == {"only"}

    def test_explicit_placement_validates_coverage(self, fragmentation):
        full = {fid: "S9" for fid in fragmentation.fragment_ids()}
        assert explicit_placement(fragmentation, full) == full
        with pytest.raises(ValueError):
            explicit_placement(fragmentation, {"F0": "S9"})
