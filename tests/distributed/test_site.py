"""Unit tests for sites and their counters."""

import time

from repro.distributed.site import Site


class TestSite:
    def test_fragment_assignment(self):
        site = Site("S1")
        site.assign_fragment("F1")
        site.assign_fragment("F2")
        site.assign_fragment("F1")  # idempotent
        assert site.fragment_ids == ["F1", "F2"]
        assert site.holds("F1") and not site.holds("F9")
        assert site.storage["F1"] == {}

    def test_visit_counts_and_times(self):
        site = Site("S1")
        with site.visit("stage-a"):
            time.sleep(0.002)
        with site.visit("stage-a"):
            pass
        with site.visit("stage-b"):
            pass
        assert site.visits == 3
        assert site.stage_seconds["stage-a"] > 0.0
        assert site.total_seconds() >= site.stage_seconds["stage-a"]

    def test_visit_records_time_even_on_error(self):
        site = Site("S1")
        try:
            with site.visit("stage"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert site.visits == 1
        assert "stage" in site.stage_seconds

    def test_operations_counter(self):
        site = Site("S1")
        site.add_operations(10)
        site.add_operations(5)
        assert site.operations == 15

    def test_reset_counters_keeps_storage(self):
        site = Site("S1")
        site.assign_fragment("F1")
        site.storage["F1"]["key"] = "value"
        with site.visit("stage"):
            site.add_operations(3)
        site.reset_counters()
        assert site.visits == 0 and site.operations == 0 and not site.stage_seconds
        assert site.storage["F1"]["key"] == "value"

    def test_clear_storage(self):
        site = Site("S1")
        site.assign_fragment("F1")
        site.storage["F1"]["key"] = "value"
        site.clear_storage()
        assert site.storage["F1"] == {}
