"""Unit tests for the Boolean formula algebra."""

import pytest

from repro.booleans.formula import (
    And,
    Not,
    Or,
    Var,
    conj,
    disj,
    evaluate,
    formula_size,
    is_concrete,
    is_false,
    is_true,
    neg,
    simplify,
    substitute,
    variables_of,
)


class TestConstructors:
    def test_conj_of_constants(self):
        assert conj(True, True) is True
        assert conj(True, False) is False
        assert conj() is True

    def test_disj_of_constants(self):
        assert disj(False, False) is False
        assert disj(False, True) is True
        assert disj() is False

    def test_conj_identity_dropped(self):
        x = Var("x")
        assert conj(True, x) is x
        assert conj(x, True) is x

    def test_conj_absorbing_short_circuits(self):
        x = Var("x")
        assert conj(False, x) is False
        assert conj(x, False) is False

    def test_disj_identity_dropped(self):
        x = Var("x")
        assert disj(False, x) is x

    def test_disj_absorbing_short_circuits(self):
        x = Var("x")
        assert disj(True, x) is True

    def test_conj_flattens_nested_ands(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        formula = conj(conj(x, y), z)
        assert isinstance(formula, And)
        assert formula.operands == (x, y, z)

    def test_disj_flattens_nested_ors(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        formula = disj(disj(x, y), z)
        assert isinstance(formula, Or)
        assert formula.operands == (x, y, z)

    def test_duplicates_removed(self):
        x = Var("x")
        assert conj(x, x) is x
        assert disj(x, x) is x

    def test_complementary_literals_collapse(self):
        x = Var("x")
        assert conj(x, neg(x)) is False
        assert disj(x, neg(x)) is True

    def test_double_negation_removed(self):
        x = Var("x")
        assert neg(neg(x)) is x

    def test_negation_of_constants(self):
        assert neg(True) is False
        assert neg(False) is True

    def test_operator_sugar(self):
        x, y = Var("x"), Var("y")
        assert (x & y) == conj(x, y)
        assert (x | y) == disj(x, y)
        assert (~x) == neg(x)
        assert (True & x) is x
        assert (False | x) is x


class TestPredicates:
    def test_is_true_false(self):
        assert is_true(True) and not is_true(False)
        assert is_false(False) and not is_false(True)
        assert not is_true(Var("x")) and not is_false(Var("x"))

    def test_is_concrete(self):
        assert is_concrete(True)
        assert not is_concrete(Var("x"))

    def test_simplify_coerces_ints(self):
        assert simplify(1) is True
        assert simplify(0) is False


class TestSubstitution:
    def test_substitute_var(self):
        assert substitute(Var("x"), {"x": True}) is True
        assert substitute(Var("x"), {"y": True}) == Var("x")

    def test_substitute_into_and(self):
        x, y = Var("x"), Var("y")
        assert substitute(conj(x, y), {"x": True}) is y
        assert substitute(conj(x, y), {"x": False}) is False

    def test_substitute_into_or(self):
        x, y = Var("x"), Var("y")
        assert substitute(disj(x, y), {"x": False}) is y
        assert substitute(disj(x, y), {"x": True}) is True

    def test_substitute_into_not(self):
        assert substitute(neg(Var("x")), {"x": True}) is False

    def test_substitute_with_formula_binding(self):
        x, y = Var("x"), Var("y")
        result = substitute(conj(x, Var("z")), {"x": disj(y, False)})
        assert result == conj(y, Var("z"))

    def test_substitute_constant_is_identity(self):
        assert substitute(True, {"x": False}) is True


class TestEvaluation:
    def test_evaluate_requires_all_bindings(self):
        with pytest.raises(KeyError):
            evaluate(conj(Var("x"), Var("y")), {"x": True})

    def test_evaluate_and_or_not(self):
        x, y = Var("x"), Var("y")
        formula = conj(x, neg(y))
        assert evaluate(formula, {"x": True, "y": False}) is True
        assert evaluate(formula, {"x": True, "y": True}) is False
        assert evaluate(disj(x, y), {"x": False, "y": False}) is False


class TestIntrospection:
    def test_variables_of(self):
        formula = conj(Var("a"), disj(Var("b"), neg(Var("c"))))
        assert variables_of(formula) == frozenset({"a", "b", "c"})
        assert variables_of(True) == frozenset()

    def test_formula_size(self):
        assert formula_size(True) == 1
        assert formula_size(Var("x")) == 1
        assert formula_size(conj(Var("x"), Var("y"))) == 3
        assert formula_size(neg(conj(Var("x"), Var("y")))) == 4

    def test_str_round_trips_structure(self):
        text = str(conj(Var("x"), neg(Var("y"))))
        assert "x" in text and "y" in text and "!" in text

    def test_equality_and_hash(self):
        assert conj(Var("x"), Var("y")) == conj(Var("x"), Var("y"))
        assert hash(Var("x")) == hash(Var("x"))
        assert Var("x") != Var("y")
        assert Not(Var("x")) == Not(Var("x"))
