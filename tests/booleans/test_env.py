"""Unit tests for substitution environments."""

import pytest

from repro.booleans.env import Environment
from repro.booleans.formula import Var, conj, disj, neg


class TestBinding:
    def test_bind_and_lookup(self):
        env = Environment()
        env.bind("x", True)
        assert "x" in env
        assert env["x"] is True
        assert env.get("missing") is None

    def test_bind_all_and_len(self):
        env = Environment({"a": True})
        env.bind_all({"b": False, "c": Var("d")})
        assert len(env) == 3
        assert set(env) == {"a", "b", "c"}

    def test_as_dict_is_a_copy(self):
        env = Environment({"a": True})
        copy = env.as_dict()
        copy["a"] = False
        assert env["a"] is True


class TestResolve:
    def test_resolve_concrete(self):
        env = Environment()
        assert env.resolve(True) is True

    def test_resolve_unbound_variable_left_free(self):
        env = Environment({"x": True})
        result = env.resolve(conj(Var("x"), Var("y")))
        assert result == Var("y")

    def test_resolve_through_chained_bindings(self):
        # x -> y & z, y -> True, z -> False: needs repeated substitution.
        env = Environment()
        env.bind("x", conj(Var("y"), Var("z")))
        env.bind("y", True)
        env.bind("z", Var("w"))
        env.bind("w", False)
        assert env.resolve(Var("x")) is False

    def test_resolve_vector(self):
        env = Environment({"x": True, "y": False})
        vector = [Var("x"), Var("y"), disj(Var("x"), Var("y")), neg(Var("y"))]
        assert env.resolve_vector(vector) == [True, False, True, True]

    def test_cycle_detection(self):
        env = Environment()
        env.bind("x", Var("y"))
        env.bind("y", Var("x"))
        with pytest.raises(RuntimeError):
            env.resolve(Var("x"))

    def test_resolution_order_does_not_matter(self):
        forward = Environment()
        forward.bind("a", Var("b"))
        forward.bind("b", True)
        backward = Environment()
        backward.bind("b", True)
        backward.bind("a", Var("b"))
        assert forward.resolve(Var("a")) is True
        assert backward.resolve(Var("a")) is True
