"""Hash-consing: the interned constructors are semantically equivalent to
the plain structural algebra, and sharing/memoization invariants hold."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans.formula import (
    And,
    BoolFormula,
    Not,
    Or,
    Var,
    conj,
    disj,
    evaluate,
    formula_size,
    neg,
    variables_of,
)

VARIABLE_NAMES = ["p", "q", "r", "s"]


# -- a miniature copy of the pre-hash-consing algebra ------------------------
# Same eager simplification rules, no interning, no memoization.  Results are
# compared structurally against the consed constructors, so any divergence
# introduced by interning shows up as a mismatch.


def old_conj(*parts):
    return _old_combine("and", parts)


def old_disj(*parts):
    return _old_combine("or", parts)


def old_neg(part):
    if isinstance(part, bool):
        return not part
    if part[0] == "not":
        return part[1]
    return ("not", part)


def _old_combine(op, parts):
    absorbing = op == "or"
    collected, seen = [], set()
    for part in parts:
        if isinstance(part, bool):
            if part == absorbing:
                return absorbing
            continue
        inner = part[1] if part[0] == op else (part,)
        for sub in inner:
            if sub in seen:
                continue
            complement = sub[1] if sub[0] == "not" else ("not", sub)
            if complement in seen:
                return absorbing
            seen.add(sub)
            collected.append(sub)
    if not collected:
        return not absorbing
    if len(collected) == 1:
        return collected[0]
    return (op, tuple(collected))


def old_structure(value):
    """Project a consed formula onto the old algebra's tuple representation."""
    if isinstance(value, bool):
        return value
    if isinstance(value, Var):
        return ("var", value.name)
    if isinstance(value, Not):
        return ("not", old_structure(value.operand))
    op = "and" if isinstance(value, And) else "or"
    assert isinstance(value, (And, Or))
    return (op, tuple(old_structure(part) for part in value.operands))


# -- strategies ---------------------------------------------------------------
# Each draw produces a *recipe* (nested tuples) that both algebras replay.

_base = st.one_of(
    st.booleans().map(lambda value: ("const", value)),
    st.sampled_from(VARIABLE_NAMES).map(lambda name: ("var", name)),
)
_recipe = st.recursive(
    _base,
    lambda children: st.one_of(
        st.tuples(children, children).map(lambda pair: ("and", pair)),
        st.tuples(children, children).map(lambda pair: ("or", pair)),
        children.map(lambda child: ("not", child)),
    ),
    max_leaves=16,
)


def build_consed(recipe):
    kind, payload = recipe
    if kind == "const":
        return payload
    if kind == "var":
        return Var(payload)
    if kind == "not":
        return neg(build_consed(payload))
    left, right = (build_consed(part) for part in payload)
    return conj(left, right) if kind == "and" else disj(left, right)


def build_old(recipe):
    kind, payload = recipe
    if kind == "const":
        return payload
    if kind == "var":
        return ("var", payload)
    if kind == "not":
        return old_neg(build_old(payload))
    left, right = (build_old(part) for part in payload)
    return old_conj(left, right) if kind == "and" else old_disj(left, right)


def all_assignments():
    return st.fixed_dictionaries({name: st.booleans() for name in VARIABLE_NAMES})


# -- properties ---------------------------------------------------------------


@settings(max_examples=300)
@given(_recipe)
def test_consed_constructors_match_old_algebra_structurally(recipe):
    assert old_structure(build_consed(recipe)) == build_old(recipe)


@settings(max_examples=300)
@given(_recipe, all_assignments())
def test_consed_constructors_match_old_algebra_semantically(recipe, assignment):
    consed = build_consed(recipe)
    old = build_old(recipe)

    def old_eval(value):
        if isinstance(value, bool):
            return value
        tag = value[0]
        if tag == "var":
            return assignment[value[1]]
        if tag == "not":
            return not old_eval(value[1])
        parts = [old_eval(part) for part in value[1]]
        return all(parts) if tag == "and" else any(parts)

    assert evaluate(consed, assignment) == old_eval(old)


@settings(max_examples=200)
@given(_recipe)
def test_rebuilding_the_same_formula_returns_the_same_object(recipe):
    first = build_consed(recipe)
    second = build_consed(recipe)
    if isinstance(first, BoolFormula):
        assert first is second
    else:
        assert first == second


@settings(max_examples=200)
@given(_recipe)
def test_memoized_size_and_variables_match_recomputation(recipe):
    formula = build_consed(recipe)

    def recount(value):
        if isinstance(value, bool) or isinstance(value, Var):
            return 1
        if isinstance(value, Not):
            return 1 + recount(value.operand)
        return 1 + sum(recount(part) for part in value.operands)

    def revars(value):
        if isinstance(value, bool):
            return frozenset()
        if isinstance(value, Var):
            return frozenset((value.name,))
        if isinstance(value, Not):
            return revars(value.operand)
        return frozenset().union(*(revars(part) for part in value.operands))

    # Ask twice: the second read comes from the memo and must not drift.
    assert formula_size(formula) == recount(formula)
    assert formula_size(formula) == recount(formula)
    assert variables_of(formula) == revars(formula)
    assert variables_of(formula) == revars(formula)


def test_var_interning_is_by_name():
    assert Var("sv:F3:2") is Var("sv:F3:2")
    assert Var("sv:F3:2") is not Var("sv:F3:1")


def test_structural_equality_implies_identity_across_build_orders():
    a, b, c = Var("a"), Var("b"), Var("c")
    # Flattening makes both association orders the same And node.
    assert conj(a, conj(b, c)) is conj(conj(a, b), c)
    assert disj(a, disj(b, c)) is disj(disj(a, b), c)
    assert neg(conj(a, b)) is neg(conj(a, b))
