"""Property-based tests: the formula algebra agrees with brute-force truth
tables and simplification never changes meaning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleans.formula import (
    Var,
    conj,
    disj,
    evaluate,
    neg,
    substitute,
    variables_of,
)

VARIABLE_NAMES = ["p", "q", "r", "s"]


def formula_strategy(max_depth: int = 4):
    """Recursive strategy building (raw AST, semantic function) pairs.

    The semantic function is an independent brute-force evaluator, so it
    catches any simplification that changes meaning.
    """
    base = st.one_of(
        st.booleans().map(lambda value: (value, lambda env, value=value: value)),
        st.sampled_from(VARIABLE_NAMES).map(
            lambda name: (Var(name), lambda env, name=name: env[name])
        ),
    )

    def extend(children):
        def combine_and(pair):
            left, right = pair
            return (
                conj(left[0], right[0]),
                lambda env, left=left, right=right: left[1](env) and right[1](env),
            )

        def combine_or(pair):
            left, right = pair
            return (
                disj(left[0], right[0]),
                lambda env, left=left, right=right: left[1](env) or right[1](env),
            )

        def combine_not(child):
            return (neg(child[0]), lambda env, child=child: not child[1](env))

        pairs = st.tuples(children, children)
        return st.one_of(pairs.map(combine_and), pairs.map(combine_or), children.map(combine_not))

    return st.recursive(base, extend, max_leaves=12)


def all_assignments():
    return st.fixed_dictionaries({name: st.booleans() for name in VARIABLE_NAMES})


@settings(max_examples=200)
@given(formula_strategy(), all_assignments())
def test_simplified_formula_agrees_with_truth_table(pair, assignment):
    formula, semantics = pair
    assert evaluate(formula, assignment) == semantics(assignment)


@settings(max_examples=200)
@given(formula_strategy(), all_assignments())
def test_substitution_then_evaluation_matches_direct_evaluation(pair, assignment):
    formula, semantics = pair
    partially = substitute(formula, {"p": assignment["p"], "q": assignment["q"]})
    assert evaluate(partially, assignment) == semantics(assignment)


@settings(max_examples=200)
@given(formula_strategy())
def test_variables_of_is_sound(pair):
    formula, _ = pair
    free = variables_of(formula)
    assert free <= set(VARIABLE_NAMES)
    # Binding every free variable yields a constant.
    result = substitute(formula, {name: True for name in free})
    if free:
        assert isinstance(result, bool) or variables_of(result) == frozenset()


@settings(max_examples=100)
@given(formula_strategy(), all_assignments())
def test_de_morgan_consistency(pair, assignment):
    formula, semantics = pair
    negated = neg(formula)
    assert evaluate(negated, assignment) == (not semantics(assignment))
