"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.fragments.fragmenters import cut_random
from repro.workloads.queries import clientele_example_tree, clientele_paper_fragmentation
from repro.workloads.scenarios import build_ft1, build_ft2
from repro.xmltree.nodes import ELEMENT, TEXT, XMLNode, XMLTree

#: tags / texts used by the random-document helpers
RANDOM_TAGS = ["a", "b", "c", "d", "e"]
RANDOM_TEXTS = ["alpha", "beta", "gamma", "5", "12", "77"]


def make_random_tree(seed: int, max_nodes: int = 60) -> XMLTree:
    """A small random labelled tree, reproducible from *seed*."""
    rng = random.Random(seed)
    root = XMLNode(ELEMENT, tag=rng.choice(RANDOM_TAGS))
    nodes = [root]
    for _ in range(rng.randint(5, max_nodes)):
        parent = rng.choice(nodes)
        if rng.random() < 0.25:
            parent.append(XMLNode(TEXT, value=rng.choice(RANDOM_TEXTS)))
        else:
            child = XMLNode(ELEMENT, tag=rng.choice(RANDOM_TAGS))
            parent.append(child)
            nodes.append(child)
    return XMLTree(root)


def make_random_fragmentation(tree: XMLTree, seed: int, max_fragments: int = 6):
    """A random fragmentation of *tree* with nested cuts allowed."""
    rng = random.Random(seed)
    return cut_random(tree, fragment_count=rng.randint(1, max_fragments), seed=seed)


@pytest.fixture
def clientele_tree() -> XMLTree:
    """The paper's Figure 1 tree."""
    return clientele_example_tree()


@pytest.fixture
def clientele_fragmentation(clientele_tree):
    """The paper's Figure 1 fragmentation (five fragments)."""
    return clientele_paper_fragmentation(clientele_tree)


@pytest.fixture(scope="session")
def small_ft1_scenario():
    """A small FT1 scenario (Experiment 1 layout) shared across tests."""
    return build_ft1(fragment_count=4, total_bytes=60_000, seed=3)


@pytest.fixture(scope="session")
def small_ft2_scenario():
    """A small FT2 scenario (Experiment 2/3 layout) shared across tests."""
    return build_ft2(total_bytes=120_000, seed=5)
