"""Unit tests for experiment reporting."""

from repro.bench.reporting import ExperimentReport, Series, format_table


class TestSeries:
    def test_add_accumulates(self):
        series = Series(label="PaX2")
        series.add(0.5)
        series.add(0.7)
        assert series.values == [0.5, 0.7]


class TestExperimentReport:
    def make_report(self) -> ExperimentReport:
        report = ExperimentReport(title="Figure X", x_label="fragments", y_label="time (s)")
        report.x_values = [1, 2]
        report.add_point("PaX3-NA", 0.30)
        report.add_point("PaX3-NA", 0.20)
        report.add_point("PaX3-XA", 0.15)
        report.add_note("scaled data")
        return report

    def test_series_for_creates_once(self):
        report = ExperimentReport(title="t", x_label="x")
        first = report.series_for("A")
        second = report.series_for("A")
        assert first is second

    def test_as_rows_aligns_missing_points(self):
        rows = self.make_report().as_rows()
        assert rows[0] == ["fragments", "PaX3-NA", "PaX3-XA"]
        assert rows[1] == ["1", "0.3000", "0.1500"]
        assert rows[2] == ["2", "0.2000", "-"]

    def test_to_dict_round_trip(self):
        data = self.make_report().to_dict()
        assert data["title"] == "Figure X"
        assert data["series"]["PaX3-NA"] == [0.30, 0.20]
        assert data["notes"] == ["scaled data"]

    def test_render_contains_table_and_notes(self):
        text = self.make_report().render()
        assert "Figure X" in text
        assert "PaX3-XA" in text
        assert "note: scaled data" in text


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == ""

    def test_alignment(self):
        table = format_table([["col", "x"], ["longer-value", "1"]])
        lines = table.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("---")
        assert lines[2].startswith("longer-value")
