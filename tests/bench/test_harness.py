"""Unit tests for the benchmark harness pieces."""

import pytest

from repro.bench.harness import VARIANTS, measure_run
from repro.workloads.queries import PAPER_QUERIES
from repro.workloads.scenarios import build_ft1
from repro.xpath.centralized import evaluate_centralized


@pytest.fixture(scope="module")
def scenario():
    return build_ft1(fragment_count=3, total_bytes=30_000, seed=9)


class TestVariants:
    def test_paper_legend_names_available(self):
        assert {"PaX3-NA", "PaX3-XA", "PaX2-NA", "PaX2-XA", "Naive"} == set(VARIANTS)

    @pytest.mark.parametrize("label", sorted(VARIANTS))
    def test_every_variant_runs_and_agrees(self, scenario, label):
        query = PAPER_QUERIES["Q1"]
        expected = evaluate_centralized(scenario.tree, query).answer_ids
        stats = VARIANTS[label].run(scenario, query)
        assert stats.answer_ids == expected

    def test_annotation_flag_respected(self, scenario):
        stats = VARIANTS["PaX2-XA"].run(scenario, PAPER_QUERIES["Q1"])
        assert stats.use_annotations is True
        stats = VARIANTS["PaX2-NA"].run(scenario, PAPER_QUERIES["Q1"])
        assert stats.use_annotations is False


class TestMeasureRun:
    def test_checks_expected_answers(self, scenario):
        query = PAPER_QUERIES["Q1"]
        expected = evaluate_centralized(scenario.tree, query).answer_ids
        stats = measure_run("PaX2-NA", scenario, query, repeats=2, expected_answers=expected)
        assert stats.answer_ids == expected

    def test_wrong_expectation_raises(self, scenario):
        with pytest.raises(AssertionError):
            measure_run("PaX2-NA", scenario, PAPER_QUERIES["Q1"], expected_answers=[1, 2, 3])

    def test_repeats_keep_fastest(self, scenario):
        query = PAPER_QUERIES["Q1"]
        once = measure_run("PaX2-NA", scenario, query, repeats=1)
        best_of_three = measure_run("PaX2-NA", scenario, query, repeats=3)
        assert best_of_three.parallel_seconds <= once.parallel_seconds * 3
