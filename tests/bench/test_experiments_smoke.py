"""Smoke tests: every experiment module produces well-formed figures on a
miniature configuration (the full-size runs live under ``benchmarks/``)."""

import pytest

from repro.bench.experiment1 import run_experiment1
from repro.bench.experiment2 import run_experiment2
from repro.bench.experiment3 import run_experiment3
from repro.bench.guarantees import run_guarantees


class TestExperiment1:
    @pytest.fixture(scope="class")
    def figures(self):
        return run_experiment1(total_bytes=30_000, fragment_counts=[1, 2, 3])

    def test_both_figures_present(self, figures):
        assert set(figures) == {"fig9a", "fig9b"}

    def test_series_lengths_match_x_axis(self, figures):
        for figure in figures.values():
            assert figure.x_values == [1, 2, 3]
            for series in figure.series.values():
                assert len(series.values) == 3
                assert all(value > 0 for value in series.values)

    def test_legend_labels(self, figures):
        assert set(figures["fig9a"].series) == {"PaX3-NA-Q1", "PaX3-XA-Q1"}
        assert set(figures["fig9b"].series) == {"PaX3-NA-Q4", "PaX2-NA-Q4"}


class TestExperiments2And3:
    @pytest.fixture(scope="class")
    def fig10(self):
        return run_experiment2(sizes=[30_000, 60_000])

    @pytest.fixture(scope="class")
    def fig11(self):
        return run_experiment3(sizes=[30_000, 60_000])

    def test_four_subfigures_each(self, fig10, fig11):
        assert set(fig10) == {"fig10a", "fig10b", "fig10c", "fig10d"}
        assert set(fig11) == {"fig11a", "fig11b", "fig11c", "fig11d"}

    def test_series_shapes(self, fig10):
        assert set(fig10["fig10c"].series) == {"PaX3-NA-Q3", "PaX2-NA-Q3", "PaX2-XA-Q3"}
        for figure in fig10.values():
            for series in figure.series.values():
                assert len(series.values) == 2

    def test_total_time_at_least_parallel_time(self, fig10, fig11):
        # fig10 and fig11 come from two independent runs of sub-millisecond
        # workloads, so compare aggregated series (with slack), not points:
        # pointwise timing noise made this assertion flaky.
        for key in ("a", "b", "c", "d"):
            parallel = fig10[f"fig10{key}"]
            total = fig11[f"fig11{key}"]
            for label, series in parallel.series.items():
                total_series = total.series[label].values
                assert sum(total_series) >= sum(series.values) * 0.8

    def test_render_is_printable(self, fig10):
        text = fig10["fig10a"].render()
        assert "Figure 10(a)" in text and "approx. bytes" in text


class TestGuarantees:
    def test_rows_and_rendered_table(self):
        result = run_guarantees(sizes=[40_000], variant_labels=["PaX2-NA", "Naive"])
        rows = result["rows"]
        assert {row["algorithm"] for row in rows} == {"PaX2-NA", "Naive"}
        assert all(row["max_site_visits"] >= 1 for row in rows)
        assert "comm units" in result["rendered"]
