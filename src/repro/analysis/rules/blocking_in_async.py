"""blocking-in-async: no synchronous blocking calls inside ``async def``.

One blocking call inside a coroutine stalls the *whole* event loop: every
in-flight request of every tenant stops making progress until it returns —
admission queues grow, deadline budgets burn, and the fairness scheduler's
latency quantiles blame the wrong tenant.  The service layer multiplexes
every site round of every in-flight query over one loop, so the invariant
is absolute: a coroutine may only wait through ``await``.

In-repo example (``service/evaluator.py`` replays simulated wire latency —
asynchronously, yielding the loop to other requests)::

    with trace_span("wire:replay", stage="wire", simulated_seconds=delay):
        await asyncio.sleep(delay)

and the shape this rule flags::

    async def _replay(delay):
        time.sleep(delay)          # the whole host sleeps, not this request

Flagged inside ``async def`` (a sync helper nested in one is exempt — it
cannot await, and it may legitimately run in an executor; the vector
engine's whole-column scans in ``repro.core.vector`` are exactly this
shape: CPU-bound sync helpers the service layer may executor-offload, so
they are never held to the coroutine invariant): ``time.sleep``,
builtin ``open``, ``os.system``/``os.popen``, ``subprocess.run``/``call``/
``check_call``/``check_output``/``Popen``, ``urllib.request.urlopen``,
``socket.socket``/``socket.create_connection``, and zero-argument
``.result()`` (a ``concurrent.futures``-style blocking wait — an asyncio
future's result after ``done()`` is sound but spells the same, so suppress
with a justification where intended).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.context import (
    ModuleContext,
    dotted,
    iter_functions,
    walk_skipping_functions,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

#: fully dotted call targets that block the loop
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
        "socket.socket",
        "socket.create_connection",
    }
)

#: bare names that block (builtins)
BLOCKING_NAMES = frozenset({"open", "input"})


def _blocking_reason(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name) and func.id in BLOCKING_NAMES:
        return f"builtin {func.id}() performs blocking I/O"
    target = dotted(func)
    if target is not None and target in BLOCKING_CALLS:
        return f"{target}() blocks the event loop"
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "result"
        and not call.args
        and not call.keywords
    ):
        return (
            ".result() is a blocking wait (await the future, or guard with"
            " .done() and suppress)"
        )
    return None


@register
class BlockingInAsyncRule(Rule):
    __doc__ = __doc__

    id = "blocking-in-async"
    summary = "synchronous blocking call (time.sleep, open, .result(), ...) inside async def"
    hint = (
        "await the asyncio equivalent (asyncio.sleep, transports/streams) or"
        " push the blocking work into a sync helper run via an executor"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for function, is_async in iter_functions(module.tree):
            if not is_async:
                continue
            for node in walk_skipping_functions(function):
                if not isinstance(node, ast.Call):
                    continue
                reason = _blocking_reason(node)
                if reason is not None:
                    yield module.finding(
                        self,
                        node,
                        f"blocking call inside async def"
                        f" {function.name!r}: {reason}",
                    )
