"""span-discipline: spans are context-managed and stay inside the taxonomy.

PR 6's latency attribution reconciles each request's stage breakdown to
its wall clock *by construction* — but only if (a) every span is closed
exactly once (the ``with`` protocol guarantees it even on exceptions; a
span opened by hand and leaked stays open forever and silently vanishes
from the breakdown) and (b) staged spans stick to the known stage
taxonomy: the precedence sweep ranks unknown stages after every known one
and dashboards key on stable stage names, so a typo'd stage silently
starts a new latency category instead of failing loudly.

The taxonomy is :data:`repro.obs.trace.STAGES` — ``queue``, ``cache``,
``compile``, ``window``, ``kernel``, ``wire``, ``reassembly`` — plus
``retry`` (the PR 7 backoff spans).  ``dispatch`` is *reserved*: it is the
synthetic fill stage the breakdown charges uncovered instants to, and no
instrumented span may ever carry it (it would double-charge the fill).

In-repo example (``service/server.py``)::

    with trace_span("cache:lookup", stage="cache"):
        cached = self.cache.get(key)

and the shapes this rule flags::

    probe = trace_span("cache:lookup", stage="cache")   # never closed
    with trace_span("respond", stage="respond"):        # not a stage
    add_span("fill", "dispatch", started, ended)        # reserved stage

Checked calls: ``span(...)``/``trace_span(...)`` (must be a ``with`` item;
stage must be in the taxonomy), ``add_span(...)`` (already-measured spans
— stage checked, no ``with`` required), and ``<...>tracer.request(...)``
(must be a ``with`` item).  Stages passed as variables are not checked
(the dynamic case is the exporter's job); ``event(..., stage=...)`` passes
``stage`` as a span *attribute*, not a latency stage, and is ignored.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.context import ModuleContext, dotted
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

try:  # the live taxonomy, so the rule cannot drift from the tracer
    from repro.obs.trace import FILL_STAGE as _FILL_STAGE
    from repro.obs.trace import STAGES as _STAGES
except Exception:  # pragma: no cover - analysis usable without the service
    _STAGES = ("queue", "cache", "compile", "window", "kernel", "wire", "reassembly")
    _FILL_STAGE = "dispatch"

#: stages instrumentation may use: the tracer's taxonomy + the retry stage
ALLOWED_STAGES: Set[str] = set(_STAGES) | {"retry"}

#: the synthetic fill stage no instrumented span may carry
RESERVED_STAGE = _FILL_STAGE

_SPAN_OPENERS = frozenset({"span", "trace_span"})


def _span_opener(call: ast.Call) -> Optional[str]:
    """'span' for span/trace_span calls, 'request' for tracer.request."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in _SPAN_OPENERS:
        return "span"
    if isinstance(func, ast.Attribute) and func.attr == "request":
        receiver = dotted(func.value)
        if receiver is not None and receiver.split(".")[-1].endswith("tracer"):
            return "request"
    return None


def _stage_argument(call: ast.Call, positional_index: int) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == "stage":
            return keyword.value
    if len(call.args) > positional_index:
        return call.args[positional_index]
    return None


@register
class SpanDisciplineRule(Rule):
    __doc__ = __doc__

    id = "span-discipline"
    summary = (
        "tracer span opened outside a with-statement, or staged outside the"
        " queue/cache/compile/window/kernel/wire/reassembly/retry taxonomy"
    )
    hint = (
        "open spans with `with trace_span(...)`; pick the stage from"
        " repro.obs.trace.STAGES (+ 'retry'); 'dispatch' is the reserved"
        " synthetic fill stage"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        with_items = {
            id(item.context_expr)
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            opener = _span_opener(node)
            if opener is not None and id(node) not in with_items:
                what = "tracer.request(...)" if opener == "request" else "span"
                yield module.finding(
                    self,
                    node,
                    f"{what} opened outside a with-statement — an exception"
                    f" (or early return) leaves the span open and its time"
                    f" vanishes from the request's breakdown",
                )
            if opener == "span":
                yield from self._check_stage(module, node, positional_index=1)
            elif _is_add_span(node):
                yield from self._check_stage(module, node, positional_index=1)

    def _check_stage(
        self, module: ModuleContext, call: ast.Call, positional_index: int
    ) -> Iterator[Finding]:
        stage = _stage_argument(call, positional_index)
        if not isinstance(stage, ast.Constant) or stage.value is None:
            return  # unstaged or dynamic: nothing to check statically
        value = stage.value
        if value == RESERVED_STAGE:
            yield module.finding(
                self,
                stage,
                f"stage {value!r} is the reserved synthetic fill stage — the"
                f" breakdown charges uncovered instants to it; an"
                f" instrumented span carrying it double-charges the fill",
            )
        elif value not in ALLOWED_STAGES:
            yield module.finding(
                self,
                stage,
                f"stage {value!r} is outside the taxonomy"
                f" ({', '.join(sorted(ALLOWED_STAGES))}) — it would rank"
                f" after every known stage in the precedence sweep and start"
                f" a new dashboard category silently",
            )


def _is_add_span(call: ast.Call) -> bool:
    func = call.func
    return isinstance(func, ast.Name) and func.id == "add_span"
