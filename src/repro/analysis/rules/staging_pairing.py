"""staging-pairing: every counter snapshot restores (or commits) on every path.

The exactly-once traffic-accounting protocol from PR 7: a retried site
round stages its accounting — ``site.snapshot_counters()`` before the
attempt, ``site.restore_counters(snapshot)`` on *every* failure path,
commit by simply not restoring on success.  A failure path that skips the
restore double-counts the failed attempt's visits and traffic units, and
the differential verification harnesses (bench-chaos, bench-fairness)
flag the run as an accounting loss.

In-repo example (``service/evaluator.py`` ``_resilient_round``)::

    snapshot = site.snapshot_counters()
    try:
        result = await attempt_body(buffer)
    except TransportError as error:
        site.restore_counters(snapshot)
        ...retry or raise...
    except BaseException:
        # Cancellation or an unexpected error: this attempt's accounting
        # must not outlive it.
        site.restore_counters(snapshot)
        raise
    ...commit...

This rule flags a ``snapshot_counters()`` call when:

* its result is discarded (nothing to restore from), or
* no ``try`` follows it before a suspension point, or
* some ``except`` handler of that ``try`` lacks a ``restore_counters``
  call (that failure path keeps the partial counters), or
* the ``try`` has no ``except BaseException``/bare handler and no
  ``finally`` restore — a cancellation mid-attempt would commit the
  half-run accounting.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.context import (
    ModuleContext,
    call_method,
    contains_suspension,
    function_bodies,
    iter_functions,
    walk_skipping_functions,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register


def _snapshot_call(stmt: ast.stmt) -> Optional[ast.Call]:
    value = getattr(stmt, "value", None)
    if isinstance(value, ast.Await):
        value = value.value
    if isinstance(value, ast.Call) and call_method(value) == "snapshot_counters":
        return value
    return None


def _suite_restores(suite: List[ast.stmt]) -> bool:
    for stmt in suite:
        for node in walk_skipping_functions(stmt):
            if isinstance(node, ast.Call) and call_method(node) == "restore_counters":
                return True
    return False


def _catches_base_exception(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    return any(
        isinstance(node, ast.Name) and node.id == "BaseException" for node in types
    )


@register
class StagingPairingRule(Rule):
    __doc__ = __doc__

    id = "staging-pairing"
    summary = (
        "snapshot_counters() without a restore_counters on every failure path"
        " of the following try"
    )
    hint = (
        "wrap the attempt in try/except where every handler (including an"
        " except BaseException for cancellation) calls"
        " site.restore_counters(snapshot); commit by not restoring on success"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for function, _ in iter_functions(module.tree):
            for body in function_bodies(function):
                yield from self._scan_body(module, body)

    def _scan_body(
        self, module: ModuleContext, body: List[ast.stmt]
    ) -> Iterator[Finding]:
        for index, stmt in enumerate(body):
            call = _snapshot_call(stmt)
            if call is None:
                continue
            if isinstance(stmt, ast.Expr):
                yield module.finding(
                    self,
                    call,
                    "snapshot_counters() result discarded — nothing can ever"
                    " restore this staging point",
                )
                continue
            yield from self._check_pairing(module, body, index, call)

    def _check_pairing(
        self,
        module: ModuleContext,
        body: List[ast.stmt],
        index: int,
        call: ast.Call,
    ) -> Iterator[Finding]:
        guard: Optional[ast.Try] = None
        for follower in body[index + 1 :]:
            if isinstance(follower, ast.Try):
                guard = follower
                break
            if (
                isinstance(follower, (ast.Raise, ast.Return))
                or contains_suspension(follower)
            ):
                break
        if guard is None:
            yield module.finding(
                self,
                call,
                "snapshot_counters() is not followed by a try guarding the"
                " attempt — a failure (or cancellation) commits the partial"
                " accounting",
            )
            return
        for handler in guard.handlers:
            if not _suite_restores(handler.body):
                yield module.finding(
                    self,
                    handler,
                    "this except handler exits the staged attempt without"
                    " restore_counters — that failure path double-counts the"
                    " attempt's traffic",
                )
        if not any(_catches_base_exception(h) for h in guard.handlers) and not (
            guard.finalbody and _suite_restores(guard.finalbody)
        ):
            yield module.finding(
                self,
                guard,
                "staged attempt has no except BaseException (or finally)"
                " restore — a cancellation mid-attempt commits half-run"
                " accounting",
            )
