"""shed-discipline: sheds are typed, staged, and never latency samples.

PR 8's overload contract: a request the host refuses (overload budget
blown, deadline dead in the queue) is *shed* — it raises a typed error
(:class:`~repro.service.server.OverloadShedError`,
:class:`~repro.service.resilience.DeadlineExceededError`), it is counted
per document and per stage via ``record_shed``, and it must **never**
produce a latency sample: a flood of instant rejections would otherwise
drag the victim tenant's p95 *down* and hide the overload it measures.

In-repo example (``service/server.py`` ``_admit_and_evaluate``)::

    reason = admission.overload_reason(session.name)
    if reason is not None:
        self._record_shed(session.name, "overload", resilience)
        raise OverloadShedError(f"document {session.name!r} overloaded: {reason}")

This rule flags:

* a ``raise`` of a shed-typed error (class name ending in ``ShedError``,
  or ``DeadlineExceededError``) whose immediately preceding sibling
  statement is not a ``record_shed`` call — the shed would be invisible to
  the per-stage metrics (re-raises of a caught shed error, bare ``raise``,
  and ``raise ... from error`` inside an except handler that *caught* the
  shed type are exempt: the original raise site already recorded it);
* a latency-recording call (``.record(...)``/``.record_latency(...)``)
  inside an ``except`` handler that catches a shed-typed error — a shed
  path recording a sample.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.context import (
    ModuleContext,
    call_method,
    function_bodies,
    iter_functions,
    walk_skipping_functions,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

_LATENCY_RECORDERS = frozenset({"record", "record_latency"})


def _is_shed_type_name(name: str) -> bool:
    return name.endswith("ShedError") or name == "DeadlineExceededError"


def _shed_error_name(node: Optional[ast.expr]) -> Optional[str]:
    """The shed-typed class a raise/handler expression names, if any."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute) and _is_shed_type_name(node.attr):
        return node.attr
    if isinstance(node, ast.Name) and _is_shed_type_name(node.id):
        return node.id
    return None


def _handler_catches_shed(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return False
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    return any(_shed_error_name(node) is not None for node in types)


def _records_shed(stmt: ast.stmt) -> bool:
    for node in walk_skipping_functions(stmt):
        if isinstance(node, ast.Call):
            method = call_method(node)
            if method is not None and "record_shed" in method:
                return True
    return False


@register
class ShedDisciplineRule(Rule):
    __doc__ = __doc__

    id = "shed-discipline"
    summary = (
        "shed error raised without a record_shed stage label, or a latency"
        " sample recorded on a shed path"
    )
    hint = (
        "call metrics.record_shed(document, stage) immediately before raising"
        " the typed shed error; never call .record() while handling one"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for function, _ in iter_functions(module.tree):
            for body in function_bodies(function):
                yield from self._scan_raises(module, body)
            yield from self._scan_handlers(module, function)

    def _scan_raises(
        self, module: ModuleContext, body: List[ast.stmt]
    ) -> Iterator[Finding]:
        for index, stmt in enumerate(body):
            if not isinstance(stmt, ast.Raise):
                continue
            # A fresh construction is a shed site; `raise error` re-raising a
            # caught shed error is accounted where it was first raised.
            if not isinstance(stmt.exc, ast.Call):
                continue
            name = _shed_error_name(stmt.exc)
            if name is None:
                continue
            if index > 0 and _records_shed(body[index - 1]):
                continue
            yield module.finding(
                self,
                stmt,
                f"{name} raised without a preceding record_shed(document,"
                f" stage) — this shed is invisible to the per-stage shed"
                f" metrics",
            )

    def _scan_handlers(
        self, module: ModuleContext, function: ast.AST
    ) -> Iterator[Finding]:
        for node in walk_skipping_functions(function):
            if not isinstance(node, ast.ExceptHandler) or not _handler_catches_shed(node):
                continue
            for inner in node.body:
                for call in walk_skipping_functions(inner):
                    if (
                        isinstance(call, ast.Call)
                        and call_method(call) in _LATENCY_RECORDERS
                    ):
                        yield module.finding(
                            self,
                            call,
                            "latency sample recorded while handling a shed"
                            " error — sheds are explicit fast-fails, never"
                            " latency samples",
                        )
