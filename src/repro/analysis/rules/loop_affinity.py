"""loop-affinity: asyncio primitives must be built under the loop that uses them.

``asyncio`` locks, semaphores, events, queues and futures bind to an event
loop.  The blocking facade of this codebase runs *each* call under a fresh
``asyncio.run`` loop, so a primitive constructed at import time, in a class
body, or in ``__init__`` is bound to whatever loop existed first (or none)
— and the next call either deadlocks on a dead loop's semaphore or raises
"attached to a different loop" from deep inside a request.

The codebase's loop-rebinding pattern (``service/actors.py``
``SiteActor._bound_semaphore``) builds the primitive lazily, keyed on the
*running* loop, and rebuilds it when the loop changes::

    def _bound_semaphore(self) -> asyncio.Semaphore:
        loop_id = id(asyncio.get_running_loop())
        if self._semaphore is None or self._loop_id != loop_id:
            self._semaphore = asyncio.Semaphore(self.parallelism)
            self._loop_id = loop_id
            self.in_flight = 0
        return self._semaphore

This rule flags ``asyncio.<Primitive>(...)`` constructions at module or
class level, and in sync functions that never consult the running loop.
Construction inside an ``async def`` is always fine (a coroutine only runs
under the loop it will use the primitive on); a sync function that calls
``asyncio.get_running_loop``/``get_event_loop`` is treated as a rebinding
helper and exempted.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.context import ModuleContext, dotted, walk_skipping_functions
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

#: the loop-bound asyncio constructors
PRIMITIVES = frozenset(
    {
        "Lock",
        "Semaphore",
        "BoundedSemaphore",
        "Event",
        "Condition",
        "Queue",
        "LifoQueue",
        "PriorityQueue",
        "Barrier",
        "Future",
    }
)

_LOOP_GETTERS = frozenset({"asyncio.get_running_loop", "asyncio.get_event_loop"})


def _primitive_call(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in PRIMITIVES
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "asyncio"
    ):
        return f"asyncio.{node.func.attr}"
    return None


def _consults_running_loop(function: ast.AST) -> bool:
    for node in walk_skipping_functions(function):
        if isinstance(node, ast.Call) and dotted(node.func) in _LOOP_GETTERS:
            return True
    return False


@register
class LoopAffinityRule(Rule):
    __doc__ = __doc__

    id = "loop-affinity"
    summary = (
        "asyncio primitive constructed at import/class/__init__ time instead"
        " of under the running loop"
    )
    hint = (
        "store None in __init__ and build the primitive in a rebinding helper"
        " keyed on id(asyncio.get_running_loop()), or construct it inside the"
        " coroutine that uses it"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        yield from self._scan(module, module.tree, scope="module scope")

    def _scan(self, module: ModuleContext, node: ast.AST, scope: str) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.AsyncFunctionDef):
                continue  # built under the loop that will use it
            if isinstance(child, ast.FunctionDef):
                if not _consults_running_loop(child):
                    yield from self._scan(
                        module, child, scope=f"sync function {child.name!r}"
                    )
                continue
            if isinstance(child, ast.Lambda):
                continue
            if isinstance(child, ast.ClassDef):
                yield from self._scan(
                    module, child, scope=f"class body of {child.name!r}"
                )
                continue
            primitive = _primitive_call(child)
            if primitive is not None:
                yield module.finding(
                    self,
                    child,
                    f"{primitive} constructed in {scope}: the primitive binds"
                    f" to whatever loop exists now, not the one that will"
                    f" await it",
                )
            yield from self._scan(module, child, scope)
