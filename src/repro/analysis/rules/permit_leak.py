"""permit-leak: an acquired slot must be released on every path.

The PR 7/8 cancellation-safety class: code acquires a permit-like resource
(a gate, the admission scheduler, a semaphore slot, an MVCC snapshot pin)
and then suspends — an ``await`` or ``yield`` — before a ``try/finally``
guarantees the handback.  A ``CancelledError`` landing at that suspension
point leaks the permit: capacity shrinks by one forever, and under a
bounded admission scheduler the host eventually serves nobody.

In-repo example (the accepted shape, ``service/server.py``
``_evaluate_gated``)::

    await admission.acquire(session.name, timeout=...)
    try:
        ...
        stats = await self._evaluate(...)
        return stats, evaluated_version
    finally:
        admission.release(session.name)

and the shape this rule flags::

    await admission.acquire(session.name)
    stats = await self._evaluate(...)   # cancelled here -> slot leaked
    admission.release(session.name)

Accepted shapes:

* the acquire statement immediately followed by a ``try`` whose ``finally``
  calls a release (method name containing ``release`` or ``handback``);
  statements *without suspension points* may sit between the acquire and
  the ``try`` (synchronous bookkeeping cannot be cancelled);
* the acquire wrapped in its own ``try`` whose handlers all end in
  ``raise`` (the shed-on-timeout idiom — a failed acquire holds nothing),
  with the guarded ``try/finally`` as the next statement;
* the acquire as the *last* risky statement of the function: the function's
  contract is "returns holding the permit" and the caller owns the release
  (``ReadWriteGate.acquire_read`` is exactly this);
* ``async with``/``with`` context managers (the acquire never appears as a
  statement).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.context import (
    ModuleContext,
    call_method,
    contains_suspension,
    function_bodies,
    iter_functions,
    walk_skipping_functions,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

#: method names that take a permit-like resource
ACQUIRE_METHODS = frozenset({"acquire", "acquire_read", "acquire_write", "pin"})


def _is_release_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    method = call_method(node)
    return method is not None and ("release" in method or "handback" in method)


def _suite_releases(suite: List[ast.stmt]) -> bool:
    for stmt in suite:
        for node in walk_skipping_functions(stmt):
            if _is_release_call(node):
                return True
    return False


def _acquire_call(stmt: ast.stmt) -> Optional[ast.Call]:
    """The acquire call a plain statement performs, if any.

    Matches ``[x =] [await] recv.acquire*(...)`` — expression statements and
    single-target assignments; anything fancier is not the codebase idiom.
    """
    if isinstance(stmt, (ast.Expr, ast.Assign, ast.AnnAssign)):
        value = stmt.value
        if isinstance(value, ast.Await):
            value = value.value
        if isinstance(value, ast.Call):
            method = call_method(value)
            if method in ACQUIRE_METHODS and isinstance(value.func, ast.Attribute):
                return value
    return None


def _handlers_all_terminate(try_stmt: ast.Try) -> bool:
    """Every handler ends by raising — the failed-acquire shed idiom."""
    for handler in try_stmt.handlers:
        if not handler.body or not isinstance(handler.body[-1], ast.Raise):
            return False
    return True


@register
class PermitLeakRule(Rule):
    __doc__ = __doc__

    id = "permit-leak"
    summary = (
        "a gate/admission/semaphore/snapshot acquire followed by a suspension"
        " point without a try/finally release"
    )
    hint = (
        "move the acquire directly before a try whose finally releases the"
        " permit (or use the primitive's context manager); only synchronous"
        " statements may sit between acquire and try"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for function, _ in iter_functions(module.tree):
            for body in function_bodies(function):
                yield from self._scan_body(module, body)

    def _scan_body(
        self, module: ModuleContext, body: List[ast.stmt]
    ) -> Iterator[Finding]:
        for index, stmt in enumerate(body):
            call = _acquire_call(stmt)
            if call is None:
                # The shed-on-timeout idiom: a try whose body *ends* with the
                # acquire and whose handlers all re-raise holds the permit
                # exactly when the try exits normally.
                if (
                    isinstance(stmt, ast.Try)
                    and not stmt.finalbody
                    and stmt.body
                    and _acquire_call(stmt.body[-1]) is not None
                    and _handlers_all_terminate(stmt)
                ):
                    call = _acquire_call(stmt.body[-1])
                else:
                    continue
            finding = self._check_guard(module, body, index, call)
            if finding is not None:
                yield finding

    def _check_guard(
        self,
        module: ModuleContext,
        body: List[ast.stmt],
        index: int,
        call: ast.Call,
    ) -> Optional[Finding]:
        method = call_method(call)
        for follower in body[index + 1 :]:
            if isinstance(follower, ast.Try) and follower.finalbody:
                if _suite_releases(follower.finalbody):
                    return None
                return module.finding(
                    self,
                    call,
                    f"permit taken via .{method}() but the guarding try's"
                    f" finally never releases it",
                )
            if isinstance(follower, ast.Return):
                # Ownership transfer: the caller receives the held permit.
                return None
            if isinstance(follower, ast.Raise) or contains_suspension(follower):
                return module.finding(
                    self,
                    call,
                    f"permit taken via .{method}() reaches a suspension point"
                    f" (or raise) before any try/finally release — a"
                    f" cancellation landing there leaks the permit",
                )
        # Ran off the end over synchronous statements only: the function
        # returns holding the permit; the caller owns the release.
        return None
