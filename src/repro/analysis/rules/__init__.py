"""The six project-specific checkers.  Importing this package registers them.

Each module holds one rule; the module docstring (shared with the rule
class) documents the invariant with a real in-repo example and is what
``repro lint --list-rules`` prints.
"""

from repro.analysis.rules import blocking_in_async  # noqa: F401
from repro.analysis.rules import loop_affinity  # noqa: F401
from repro.analysis.rules import permit_leak  # noqa: F401
from repro.analysis.rules import shed_discipline  # noqa: F401
from repro.analysis.rules import span_discipline  # noqa: F401
from repro.analysis.rules import staging_pairing  # noqa: F401
