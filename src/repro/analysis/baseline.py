"""Baseline files: adopt pre-existing findings without blessing new ones.

A baseline is a JSON file listing findings that existed when it was
written; ``repro lint --baseline FILE`` marks matching findings as
``baselined`` so they do not fail the gate, while any *new* finding still
does.  Matching is by ``(rule, path, fingerprint)`` — the fingerprint
hashes the normalized flagged line, not its number, so a baseline entry
survives edits elsewhere in the file (see
:func:`repro.analysis.findings.fingerprint`).

The project's own ``src/`` tree carries **no** baseline: every finding
there is either fixed or suppressed inline with a justification.  The
baseline mechanism exists for adopting the gate onto trees you do not
control yet (vendored code, a branch mid-migration).

Schema::

    {"version": 1,
     "entries": [{"rule": "...", "path": "...", "fingerprint": "...",
                  "line": 123}, ...]}

``line`` is informational (where the finding was when baselined); it is
not used for matching.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Set, Tuple

from repro.analysis.findings import Finding

__all__ = ["Baseline", "load_baseline", "save_baseline"]

_VERSION = 1


class Baseline:
    """The set of adopted findings, keyed by ``(rule, path, fingerprint)``."""

    def __init__(self, keys: Iterable[Tuple[str, str, str]] = ()) -> None:
        self._keys: Set[Tuple[str, str, str]] = set(keys)

    def __len__(self) -> int:
        return len(self._keys)

    def contains(self, finding: Finding) -> bool:
        return (finding.rule, finding.path, finding.fingerprint) in self._keys

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(
            (finding.rule, finding.path, finding.fingerprint)
            for finding in findings
        )


def load_baseline(path: str) -> Baseline:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"baseline {path!r} has version {payload.get('version')!r},"
            f" expected {_VERSION}"
        )
    return Baseline(
        (entry["rule"], entry["path"], entry["fingerprint"])
        for entry in payload.get("entries", [])
    )


def save_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write every unsuppressed finding as a baseline entry; returns the count."""
    entries: List[dict] = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "fingerprint": finding.fingerprint,
            "line": finding.line,
        }
        for finding in sorted(findings)
        if not finding.suppressed
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": _VERSION, "entries": entries}, handle, indent=2)
        handle.write("\n")
    return len(entries)
