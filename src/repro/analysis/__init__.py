"""repro lint: AST-based concurrency & invariant analysis for the service stack.

Six checkers grounded in this repo's own past bugs — permit leaks across
await points, blocking calls in coroutines, loop-bound primitives built
under the wrong loop, unbalanced counter staging, unlabeled sheds, and
off-taxonomy tracer spans.  See ``repro lint --list-rules`` and the
"Static analysis" section of the README.

Public API::

    from repro.analysis import run, analyze_source, all_rules
    report = run(["src"])           # -> Report; report.exit_code gates CI
"""

from repro.analysis.baseline import Baseline, load_baseline, save_baseline
from repro.analysis.findings import Finding, fingerprint
from repro.analysis.registry import Rule, all_rules, get_rule, register
from repro.analysis.report import Report, render_json, render_text
from repro.analysis.runner import (
    PARSE_ERROR_RULE,
    analyze_file,
    analyze_source,
    iter_python_files,
    run,
)

__all__ = [
    "Baseline",
    "Finding",
    "PARSE_ERROR_RULE",
    "Report",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_source",
    "fingerprint",
    "get_rule",
    "iter_python_files",
    "load_baseline",
    "register",
    "render_json",
    "render_text",
    "run",
    "save_baseline",
]
