"""The rule registry: every checker ``repro lint`` knows about.

A rule is a class with a stable ``id`` (the suppression token), a one-line
``summary`` for ``--list-rules`` and the report header, a ``hint`` telling
the author how to fix the finding, and a ``check(module)`` generator
yielding :class:`~repro.analysis.findings.Finding`.  The class docstring
documents the invariant with a real in-repo example — it is what
``repro lint --list-rules`` prints, so keep it true.

Rules register themselves at import time via :func:`register`; the rule
modules are imported by :mod:`repro.analysis.rules`, so importing
:mod:`repro.analysis` is enough to populate the registry.  ``all_rules``
returns them sorted by id — the registry is a dict keyed by id, so
registration order never leaks into report order.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding

__all__ = ["Rule", "all_rules", "get_rule", "register"]


class Rule:
    """Base class of every checker (see module docstring for the contract)."""

    #: stable identifier: the suppression token and the JSON ``rule`` field
    id: str = ""
    #: one-line invariant statement for listings and report headers
    summary: str = ""
    #: how to fix a finding of this rule (attached to every finding)
    hint: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def doc(cls) -> str:
        """The rule's full documentation (its class docstring)."""
        return (cls.__doc__ or "").strip()


_REGISTRY: Dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of *rule_class* to the registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class()
    return rule_class


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id (stable report order)."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    return _REGISTRY[rule_id]


def _ensure_loaded() -> None:
    # Import the rule modules lazily so `registry` itself stays importable
    # from them without a cycle.
    if not _REGISTRY:
        import repro.analysis.rules  # noqa: F401  (imports register the rules)
