"""Report objects and the text/JSON renderers of ``repro lint``.

Findings render sorted by ``(path, line, col, rule)``; rule listings sort
by id.  The JSON schema (version 1, documented in README under "Static
analysis") is::

    {"version": 1,
     "analyzer": "repro-lint",
     "files_analyzed": 42,
     "rules": [{"id": "...", "summary": "..."}, ...],
     "findings": [Finding.to_dict(), ...],
     "counts": {"total": n, "unsuppressed": n, "suppressed": n,
                "baselined": n}}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.analysis.findings import Finding
from repro.analysis.registry import all_rules

__all__ = ["Report", "render_json", "render_text"]

JSON_VERSION = 1


@dataclass
class Report:
    """The outcome of one ``repro lint`` run."""

    findings: List[Finding] = field(default_factory=list)
    files_analyzed: int = 0

    def __post_init__(self) -> None:
        self.findings.sort()

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.counts_against_gate]

    @property
    def exit_code(self) -> int:
        """0 when the gate passes, 1 when unsuppressed findings remain."""
        return 1 if self.unsuppressed else 0

    def counts(self) -> Dict[str, int]:
        return {
            "total": len(self.findings),
            "unsuppressed": len(self.unsuppressed),
            "suppressed": sum(1 for f in self.findings if f.suppressed),
            "baselined": sum(1 for f in self.findings if f.baselined),
        }


def render_text(report: Report, *, verbose_suppressed: bool = False) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per finding."""
    out: List[str] = []
    for finding in report.findings:
        if not finding.counts_against_gate and not verbose_suppressed:
            continue
        mark = ""
        if finding.suppressed:
            mark = " (suppressed)"
        elif finding.baselined:
            mark = " (baselined)"
        out.append(
            f"{finding.path}:{finding.line}:{finding.col}:"
            f" {finding.rule}{mark} {finding.message}"
        )
        if finding.snippet:
            out.append(f"    {finding.snippet}")
        if finding.hint and finding.counts_against_gate:
            out.append(f"    fix: {finding.hint}")
    counts = report.counts()
    summary = (
        f"{counts['unsuppressed']} finding(s)"
        f" ({counts['suppressed']} suppressed, {counts['baselined']} baselined)"
        f" in {report.files_analyzed} file(s)"
    )
    if out:
        out.append("")
    out.append(summary)
    return "\n".join(out)


def render_json(report: Report) -> str:
    payload: Dict[str, Any] = {
        "version": JSON_VERSION,
        "analyzer": "repro-lint",
        "files_analyzed": report.files_analyzed,
        "rules": [{"id": rule.id, "summary": rule.summary} for rule in all_rules()],
        "findings": [finding.to_dict() for finding in report.findings],
        "counts": report.counts(),
    }
    return json.dumps(payload, indent=2)
