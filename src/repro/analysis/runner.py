"""The driver: file discovery, per-file analysis, suppression and baseline.

``run(paths)`` walks the targets in sorted order, parses each ``.py`` file,
runs every registered rule over it, applies in-source suppressions and the
optional baseline, and returns a :class:`~repro.analysis.report.Report`.

Failure taxonomy (the CLI's exit-code contract):

* a target file that does not parse yields a ``parse-error`` pseudo-rule
  finding — broken source *fails the gate* (exit 1), it does not crash it;
* any other exception propagates out of :func:`run` — the CLI reports it
  as an analyzer crash (exit 2), distinct from "findings exist" so CI can
  tell a red gate from a broken linter.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Iterator, List, Optional

from repro.analysis.baseline import Baseline
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import all_rules
from repro.analysis.report import Report
from repro.analysis.suppress import is_suppressed

__all__ = ["PARSE_ERROR_RULE", "analyze_file", "analyze_source", "iter_python_files", "run"]

#: pseudo-rule id for targets that fail to parse (suppressible like any other)
PARSE_ERROR_RULE = "parse-error"


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under *paths*, each exactly once, sorted."""
    seen = set()
    for target in sorted(paths):
        if os.path.isfile(target):
            candidates: List[str] = [target]
        else:
            candidates = []
            for root, dirs, files in os.walk(target):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                candidates.extend(
                    os.path.join(root, name)
                    for name in sorted(files)
                    if name.endswith(".py")
                )
        for path in candidates:
            normalized = os.path.normpath(path)
            if normalized not in seen:
                seen.add(normalized)
                yield normalized


def analyze_source(source: str, path: str) -> List[Finding]:
    """All findings for one source blob (the unit tests' entry point)."""
    lines = source.splitlines()
    try:
        module = ModuleContext.parse(source, path)
    except SyntaxError as error:
        lineno = error.lineno or 1
        finding = Finding(
            path=path,
            line=lineno,
            col=(error.offset or 1) - 1,
            rule=PARSE_ERROR_RULE,
            message=f"file does not parse: {error.msg}",
            hint="fix the syntax error; the analyzer cannot vouch for this file",
            snippet=(lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""),
        )
        if is_suppressed(lines, finding.line, PARSE_ERROR_RULE):
            finding = finding.with_marks(suppressed=True)
        return [finding]
    findings: List[Finding] = []
    for rule in all_rules():
        for finding in rule.check(module):
            if is_suppressed(lines, finding.line, finding.rule):
                finding = finding.with_marks(suppressed=True)
            findings.append(finding)
    return sorted(findings)


def analyze_file(path: str) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return analyze_source(source, path)


def run(paths: Iterable[str], baseline: Optional[Baseline] = None) -> Report:
    """Analyze every python file under *paths*; apply *baseline* if given."""
    findings: List[Finding] = []
    files_analyzed = 0
    for path in iter_python_files(paths):
        files_analyzed += 1
        for finding in analyze_file(path):
            if (
                baseline is not None
                and not finding.suppressed
                and baseline.contains(finding)
            ):
                finding = finding.with_marks(baselined=True)
            findings.append(finding)
    return Report(findings=findings, files_analyzed=files_analyzed)
