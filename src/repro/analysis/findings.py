"""Findings: what a checker reports, and how findings are identified.

A :class:`Finding` is one violation of one rule at one source location.
Findings sort by ``(path, line, col, rule)`` so reports are stable across
runs and across checker registration order — the CI gate diffs reports, so
nondeterministic ordering would read as churn.

The :func:`fingerprint` of a finding is a stable digest of the rule id, the
file path and the *normalized* flagged line (whitespace collapsed, so a
re-indent does not invalidate it) — deliberately **not** the line number, so
a baseline entry survives unrelated edits above the finding.  The same
blake2b-over-stable-text approach the fragment version tags use
(:func:`repro.service.cache.version_tag`): never builtin ``hash``, which
varies per process under PYTHONHASHSEED.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict

__all__ = ["Finding", "fingerprint"]


def fingerprint(rule: str, path: str, snippet: str) -> str:
    """Stable identity of a finding, independent of its line number."""
    normalized = " ".join(snippet.split())
    digest = hashlib.blake2b(
        f"{rule}\x00{path}\x00{normalized}".encode("utf-8"), digest_size=8
    )
    return digest.hexdigest()


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Field order defines the sort order of a report: by file, then line,
    then column, then rule id — stable regardless of which checker ran
    first.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    hint: str = field(compare=False, default="")
    snippet: str = field(compare=False, default="")
    suppressed: bool = field(compare=False, default=False)
    baselined: bool = field(compare=False, default=False)

    @property
    def fingerprint(self) -> str:
        return fingerprint(self.rule, self.path, self.snippet or str(self.line))

    @property
    def counts_against_gate(self) -> bool:
        """Does this finding fail ``repro lint`` (exit 1)?"""
        return not (self.suppressed or self.baselined)

    def with_marks(self, *, suppressed: bool = False, baselined: bool = False) -> "Finding":
        return replace(self, suppressed=suppressed, baselined=baselined)

    def to_dict(self) -> Dict[str, Any]:
        """One entry of the ``--json`` report (schema documented in README)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "fingerprint": self.fingerprint,
        }
