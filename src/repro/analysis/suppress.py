"""In-source suppressions: ``# repro: allow[rule-id] optional justification``.

A finding is suppressed when an allow-comment naming its rule sits on the
flagged line itself, or on the immediately preceding line as a standalone
comment (nothing but whitespace before the ``#``) — the same two shapes
``noqa``-style tools accept, so multi-line statements can carry the
justification above them::

    probe = tracer.request("warmup")  # repro: allow[span-discipline] closed in shutdown()

    # repro: allow[permit-leak] ownership transfers to the wave batcher
    permit = await gate.acquire_read(timeout)

Several rules may share one comment: ``# repro: allow[permit-leak, span-discipline]``.
Suppressions are per-line and deliberate — the gate counts them (they show
in the report marked ``suppressed``) but they do not fail it.
"""

from __future__ import annotations

import re
from typing import List, Set

__all__ = ["allowed_rules_for_line", "is_suppressed"]

_ALLOW = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\-\s]+)\]")
_STANDALONE_COMMENT = re.compile(r"^\s*#")


def _rules_in(line: str) -> Set[str]:
    rules: Set[str] = set()
    for match in _ALLOW.finditer(line):
        rules.update(token.strip() for token in match.group(1).split(","))
    rules.discard("")
    return rules


def allowed_rules_for_line(lines: List[str], lineno: int) -> Set[str]:
    """Rule ids an allow-comment suppresses at 1-based *lineno*.

    Looks at the line itself, then at the previous line if that line is a
    standalone comment.
    """
    rules: Set[str] = set()
    if 1 <= lineno <= len(lines):
        rules |= _rules_in(lines[lineno - 1])
    if lineno >= 2:
        previous = lines[lineno - 2]
        if _STANDALONE_COMMENT.match(previous):
            rules |= _rules_in(previous)
    return rules


def is_suppressed(lines: List[str], lineno: int, rule_id: str) -> bool:
    return rule_id in allowed_rules_for_line(lines, lineno)
