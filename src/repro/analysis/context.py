"""Per-module analysis context and the small AST vocabulary rules share.

Every checker gets a :class:`ModuleContext` — the parsed tree plus the raw
source lines — and builds findings through :meth:`ModuleContext.finding`,
which fills in the location and the flagged source line.  The helpers here
are the vocabulary the six rules are written in:

* :func:`dotted` — the ``a.b.c`` text of a Name/Attribute chain (or ``None``
  for anything dynamic), used to match receivers like ``session.snapshots``.
* :func:`call_method` — the final attribute/function name of a call.
* :func:`contains_suspension` — does a statement contain an ``await`` or a
  ``yield`` *in the enclosing function's own frame*?  Suspension points are
  where cancellation lands, so they are the boundary every
  acquired-but-unguarded resource check cares about.  Nested ``def``/
  ``async def``/``lambda`` bodies are skipped: their suspensions belong to a
  different frame.
* :func:`function_bodies` — every statement list of a function, including
  the bodies of its ``if``/``try``/``with``/loop statements, so sequential
  checkers (acquire followed by try/finally) can scan sibling statements.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from repro.analysis.findings import Finding

__all__ = [
    "FunctionDef",
    "ModuleContext",
    "call_method",
    "contains_suspension",
    "dotted",
    "function_bodies",
    "iter_functions",
    "walk_skipping_functions",
]

FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass
class ModuleContext:
    """One parsed source file, as the checkers see it."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str]

    @classmethod
    def parse(cls, source: str, path: str) -> "ModuleContext":
        return cls(
            path=path,
            source=source,
            tree=ast.parse(source, filename=path),
            lines=source.splitlines(),
        )

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(
        self,
        rule: "object",
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> Finding:
        """A :class:`Finding` anchored at *node*, carrying its source line."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.path,
            line=line,
            col=col,
            rule=getattr(rule, "id", str(rule)),
            message=message,
            hint=hint if hint is not None else getattr(rule, "hint", ""),
            snippet=self.line_at(line).strip(),
        )


def dotted(node: ast.AST) -> Optional[str]:
    """``"a.b.c"`` for a Name/Attribute chain; ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_method(call: ast.Call) -> Optional[str]:
    """The method/function name a call resolves through (``foo`` or ``x.foo``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def contains_suspension(node: ast.AST) -> bool:
    """Whether *node* holds a suspension point of the enclosing frame.

    ``await`` and ``yield`` are where a ``CancelledError`` (or a generator's
    early close) can enter; nested function definitions are skipped because
    their suspensions run in another frame at another time.
    """
    for child in walk_skipping_functions(node):
        if isinstance(child, (ast.Await, ast.Yield, ast.YieldFrom)):
            return True
    return False


def walk_skipping_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Pre-order walk of *node* that does not descend into nested functions.

    The root itself is yielded (even if it is a function definition — the
    caller decided to look at it); only *nested* definitions are opaque.
    """
    yield node
    stack: List[ast.AST] = [
        child
        for child in ast.iter_child_nodes(node)
        if not isinstance(child, _FUNCTION_NODES)
    ]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if not isinstance(child, _FUNCTION_NODES):
                stack.append(child)


def iter_functions(tree: ast.Module) -> Iterator[Tuple[FunctionDef, bool]]:
    """Every function in the module with its *effective* async-ness.

    Yields ``(node, is_async)`` where ``is_async`` reflects the function's
    own kind — a sync helper nested in an ``async def`` is sync (it cannot
    await, and it may legitimately run in an executor).
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(tree))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, isinstance(node, ast.AsyncFunctionDef)
        stack.extend(ast.iter_child_nodes(node))


def function_bodies(function: FunctionDef) -> Iterator[List[ast.stmt]]:
    """Every statement sequence of *function*'s own frame.

    The function body plus each nested ``if``/``else``/``try``/``except``/
    ``finally``/``with``/loop suite — but not the bodies of nested function
    definitions.  Sequential rules (acquire→guard, snapshot→restore,
    record→raise) scan these lists for sibling-statement patterns.
    """
    stack: List[List[ast.stmt]] = [function.body]
    while stack:
        body = stack.pop()
        yield body
        for stmt in body:
            if isinstance(stmt, _FUNCTION_NODES):
                continue
            for field_name in ("body", "orelse", "finalbody"):
                suite = getattr(stmt, field_name, None)
                if suite:
                    stack.append(suite)
            for handler in getattr(stmt, "handlers", ()) or ():
                stack.append(handler.body)
