"""Prometheus text-format exposition of one service host's metrics.

:func:`render_prometheus` walks a :class:`~repro.service.server.ServiceHost`
(duck-typed — anything with ``metrics``/``cache``/``sessions``/``actors``/
``tracer`` works, including the single-document ``ServiceEngine``) and
renders every counter the serving stack keeps into the text exposition
format (version 0.0.4) a Prometheus scraper, ``curl`` or ``repro stats``
can consume:

* ``repro_requests_total`` / ``…_evaluated`` / ``…_cache_hits`` /
  ``…_coalesced`` and per-document variants (label ``document``);
* update counters by kind and document, plus node/invalidation totals;
* result-cache counters host-wide and per document;
* fused-scan batching counters per document;
* per-site actor gauges (requests, busy/queued seconds, peak concurrency);
* when tracing is enabled: ``repro_request_latency_seconds`` /
  ``repro_update_latency_seconds`` histograms, one
  ``repro_stage_latency_seconds{stage=…}`` histogram per attribution stage,
  traced-request and guarantee-checker counters.

Latency quantiles from the exact sample window are exposed as gauges
(``repro_request_latency_quantile_seconds{quantile="0.95"}``) so a host
without tracing still exports latency; the histograms add the cross-scrape
aggregatable view when a tracer is attached.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.histogram import Histogram

__all__ = ["render_prometheus"]


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Lines:
    """Accumulates exposition lines, emitting HELP/TYPE once per metric."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._declared: Dict[str, str] = {}

    def add(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, Any]] = None,
        metric_type: str = "counter",
        help_text: str = "",
    ) -> None:
        declared = self._declared.get(name)
        if declared is None:
            if help_text:
                self._lines.append(f"# HELP {name} {help_text}")
            self._lines.append(f"# TYPE {name} {metric_type}")
            self._declared[name] = metric_type
        if labels:
            rendered = ",".join(
                f'{key}="{_escape(str(item))}"' for key, item in sorted(labels.items())
            )
            self._lines.append(f"{name}{{{rendered}}} {_fmt(value)}")
        else:
            self._lines.append(f"{name} {_fmt(value)}")

    def add_histogram(
        self,
        name: str,
        histogram: Histogram,
        labels: Optional[Mapping[str, Any]] = None,
        help_text: str = "",
    ) -> None:
        base = dict(labels) if labels else {}
        declared = name + "_bucket"
        if declared not in self._declared:
            if help_text:
                self._lines.append(f"# HELP {name} {help_text}")
            self._lines.append(f"# TYPE {name} histogram")
            self._declared[declared] = "histogram"
        for bound, cumulative in histogram.cumulative():
            bucket_labels = dict(base)
            bucket_labels["le"] = "+Inf" if bound == math.inf else _fmt(bound)
            rendered = ",".join(
                f'{key}="{_escape(str(item))}"'
                for key, item in sorted(bucket_labels.items())
            )
            self._lines.append(f"{name}_bucket{{{rendered}}} {cumulative}")
        suffix = (
            "{" + ",".join(
                f'{key}="{_escape(str(item))}"' for key, item in sorted(base.items())
            ) + "}"
            if base
            else ""
        )
        self._lines.append(f"{name}_sum{suffix} {_fmt(histogram.sum)}")
        self._lines.append(f"{name}_count{suffix} {histogram.count}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def render_prometheus(host: Any) -> str:
    """The text-format exposition of *host*'s full metrics surface."""
    lines = _Lines()
    metrics = host.metrics

    # -- request totals ----------------------------------------------------
    lines.add("repro_requests_total", metrics.total_requests,
              help_text="Requests served (evaluated + cache hits + coalesced).")
    lines.add("repro_requests_evaluated_total", metrics.total_evaluated,
              help_text="Requests answered by running an evaluation.")
    lines.add("repro_requests_cache_hits_total", metrics.total_cache_hits,
              help_text="Requests answered from the result cache.")
    lines.add("repro_requests_coalesced_total", metrics.total_coalesced,
              help_text="Requests answered by joining an identical in-flight query.")
    lines.add("repro_throughput_qps", metrics.throughput_qps, metric_type="gauge",
              help_text="Requests per second over the measurement window.")
    for quantile, value in (("0.5", metrics.p50), ("0.95", metrics.p95), ("0.99", metrics.p99)):
        lines.add(
            "repro_request_latency_quantile_seconds", value,
            labels={"quantile": quantile}, metric_type="gauge",
            help_text="Exact request-latency quantiles from the retained sample window.",
        )

    # -- degradation & shedding --------------------------------------------
    lines.add("repro_requests_degraded_total", getattr(metrics, "total_degraded", 0),
              help_text="Requests answered with a partial (degraded) answer.")
    lines.add("repro_requests_shed_total", getattr(metrics, "total_shed", 0),
              help_text="Requests shed before evaluation (deadline expired while queued).")
    for stage, count in sorted(getattr(metrics, "shed_by_stage", {}).items()):
        lines.add("repro_requests_shed_by_stage_total", count,
                  labels={"stage": stage},
                  help_text="Requests shed, by the queue the budget expired in.")

    # -- resilience --------------------------------------------------------
    resilience = getattr(host, "resilience", None)
    if resilience is not None:
        rstats = resilience.stats
        lines.add("repro_retries_total", rstats.retries,
                  help_text="Site rounds retried after a transport failure.")
        for site, count in sorted(rstats.retries_by_site.items()):
            lines.add("repro_site_retries_total", count, labels={"site": site},
                      help_text="Site rounds retried, by site.")
        lines.add("repro_hedged_sends_total", rstats.hedged_sends,
                  help_text="Duplicate messages raced against stragglers.")
        lines.add("repro_breaker_trips_total", rstats.breaker_trips,
                  help_text="Circuit breakers tripped open.")
        lines.add("repro_breaker_rejections_total", rstats.breaker_rejections,
                  help_text="Rounds rejected fast by an open circuit breaker.")
        lines.add("repro_breaker_probes_total", rstats.breaker_probes,
                  help_text="Half-open probe rounds admitted through a breaker.")
        lines.add("repro_degraded_answers_total", rstats.degraded_answers,
                  help_text="Evaluations that degraded to a partial answer.")
        lines.add("repro_deadline_failures_total", rstats.deadline_failures,
                  help_text="Site rounds abandoned because the request budget ran out.")
        for site, breaker in sorted(resilience.breakers().items()):
            lines.add("repro_breaker_open", 1.0 if breaker.state != "closed" else 0.0,
                      labels={"site": site}, metric_type="gauge",
                      help_text="1 when the site's circuit breaker is open or half-open.")

    # -- fault injection ---------------------------------------------------
    injector = getattr(getattr(host, "config", None), "fault_injector", None)
    if injector is not None:
        fstats = injector.stats
        lines.add("repro_faults_dropped_total", fstats.drops,
                  help_text="Messages dropped by the fault injector.")
        lines.add("repro_faults_blackout_dropped_total", fstats.blackout_drops,
                  help_text="Messages dropped inside injected blackout windows.")
        lines.add("repro_faults_duplicated_total", fstats.duplicates,
                  help_text="Duplicate deliveries injected.")
        lines.add("repro_faults_delayed_total", fstats.delays,
                  help_text="Messages given an injected delay spike.")

    # -- updates -----------------------------------------------------------
    lines.add("repro_updates_total", metrics.total_updates,
              help_text="Document mutations applied.")
    for kind, count in sorted(metrics.updates_by_kind.items()):
        lines.add("repro_updates_by_kind_total", count, labels={"kind": kind},
                  help_text="Document mutations applied, by mutation kind.")
    lines.add("repro_update_nodes_added_total", metrics.total_nodes_added,
              help_text="Nodes added by mutations.")
    lines.add("repro_update_nodes_removed_total", metrics.total_nodes_removed,
              help_text="Nodes removed by mutations.")
    lines.add("repro_update_cache_retirements_total", metrics.total_update_invalidations,
              help_text="Cache entries retired by mutations.")

    # -- per document ------------------------------------------------------
    lines.add("repro_documents", len(getattr(host, "sessions", {}) or {}),
              metric_type="gauge", help_text="Documents currently served.")
    for name, totals in sorted(metrics.documents.items()):
        labels = {"document": name}
        lines.add("repro_document_requests_total", totals.requests, labels=labels,
                  help_text="Requests served, by document.")
        lines.add("repro_document_evaluated_total", totals.evaluated, labels=labels,
                  help_text="Requests evaluated, by document.")
        lines.add("repro_document_cache_hits_total", totals.cache_hits, labels=labels,
                  help_text="Cache hits, by document.")
        lines.add("repro_document_updates_total", totals.updates, labels=labels,
                  help_text="Mutations applied, by document.")
        lines.add("repro_document_shed_total", getattr(totals, "shed", 0),
                  labels=labels,
                  help_text="Requests shed, by document.")
        for stage, count in sorted(getattr(totals, "shed_by_stage", {}).items()):
            lines.add("repro_document_shed_by_stage_total", count,
                      labels={"document": name, "stage": stage},
                      help_text="Requests shed, by document and shed stage.")
        quantiles = getattr(metrics, "queue_wait_quantiles", None)
        if quantiles is not None:
            for quantile, value in sorted(quantiles(name).items()):
                # "p95" -> the conventional "0.95" quantile label.
                label = "0." + quantile.lstrip("p").rstrip("0") if quantile != "p50" else "0.5"
                lines.add(
                    "repro_document_queue_wait_quantile_seconds", value,
                    labels={"document": name, "quantile": label},
                    metric_type="gauge",
                    help_text="Admission queue wait quantiles, by document.",
                )

    # -- snapshots ---------------------------------------------------------
    for name, session in sorted((getattr(host, "sessions", {}) or {}).items()):
        manager = getattr(session, "snapshots", None)
        if manager is None:
            continue
        sstats = manager.stats
        labels = {"document": name}
        lines.add("repro_snapshot_pins_total", sstats.pins, labels=labels,
                  help_text="Reads admitted against a pinned version snapshot.")
        lines.add("repro_snapshot_reclaimed_total", sstats.snapshots_reclaimed,
                  labels=labels,
                  help_text="Version snapshots reclaimed after the last pin drained.")
        lines.add("repro_snapshot_writer_stalls_total", sstats.writer_stalls,
                  labels=labels,
                  help_text="Writers stalled on the retained-version watermark.")
        lines.add("repro_snapshot_retained", manager.retained, labels=labels,
                  metric_type="gauge",
                  help_text="Version snapshots currently retained.")
        lines.add("repro_snapshot_peak_retained", sstats.peak_retained,
                  labels=labels, metric_type="gauge",
                  help_text="Peak retained version snapshots.")

    # -- result cache ------------------------------------------------------
    cache = getattr(host, "cache", None)
    if cache is not None:
        stats = cache.stats
        lines.add("repro_cache_entries", len(cache), metric_type="gauge",
                  help_text="Live result-cache entries.")
        lines.add("repro_cache_capacity", cache.capacity, metric_type="gauge",
                  help_text="Result-cache capacity.")
        lines.add("repro_cache_hits_total", stats.hits,
                  help_text="Result-cache hits.")
        lines.add("repro_cache_misses_total", stats.misses,
                  help_text="Result-cache misses.")
        lines.add("repro_cache_stores_total", stats.stores,
                  help_text="Result-cache stores.")
        lines.add("repro_cache_evictions_total", stats.evictions,
                  help_text="Result-cache LRU evictions.")
        lines.add("repro_cache_invalidations_total", stats.invalidations,
                  help_text="Result-cache invalidations (version retirement included).")
        lines.add("repro_cache_rekeyed_total", stats.rekeyed,
                  help_text="Entries carried across a version roll untouched.")
        for name, slice_ in sorted(stats.documents.items()):
            labels = {"document": name}
            lines.add("repro_document_cache_hits_detail_total", slice_.hits,
                      labels=labels, help_text="Cache hits charged per document.")
            lines.add("repro_document_cache_evictions_total", slice_.evictions,
                      labels=labels,
                      help_text="Evictions charged to the evicted entry's document.")

    # -- batching ----------------------------------------------------------
    sessions = getattr(host, "sessions", None) or {}
    for name, session in sorted(sessions.items()):
        batcher = getattr(session, "batcher", None)
        if batcher is None:
            continue
        labels = {"document": name}
        lines.add("repro_batch_fused_scans_total", batcher.stats.fused_scans,
                  labels=labels, help_text="Fused per-fragment scans executed.")
        lines.add("repro_batch_queries_total", batcher.stats.batched_queries,
                  labels=labels, help_text="Per-query passes served by fused scans.")
        lines.add("repro_batch_dedup_hits_total", batcher.stats.dedup_hits,
                  labels=labels, help_text="Requests sharing another request's kernel slot.")

    # -- site actors -------------------------------------------------------
    actors = getattr(host, "actors", None)
    if actors is not None:
        for site_id in actors.site_ids():
            actor = actors[site_id]
            labels = {"site": site_id}
            lines.add("repro_site_requests_total", actor.requests, labels=labels,
                      help_text="Evaluation rounds served per site actor.")
            lines.add("repro_site_busy_seconds_total", actor.busy_seconds, labels=labels,
                      help_text="Seconds spent serving rounds per site actor.")
            lines.add("repro_site_queued_seconds_total", actor.queued_seconds,
                      labels=labels,
                      help_text="Seconds rounds waited for a site slot.")
            lines.add("repro_site_peak_in_flight", actor.peak_in_flight, labels=labels,
                      metric_type="gauge",
                      help_text="Highest concurrency observed per site actor.")

    # -- tracing -----------------------------------------------------------
    tracer = getattr(host, "tracer", None)
    if tracer is not None and getattr(tracer, "enabled", False):
        lines.add("repro_traced_requests_total", tracer.requests_traced,
                  help_text="Root spans finished by the tracer.")
        lines.add("repro_guarantee_violations_total", tracer.violation_count,
                  help_text="Per-site visit-bound violations observed on traced requests.")
        if tracer.guarantees is not None:
            lines.add("repro_guarantee_checked_total", tracer.guarantees.checked,
                      help_text="Traced evaluations checked against the visit bounds.")
        for key, histogram in sorted(tracer.histograms.items()):
            if key.startswith("stage:"):
                lines.add_histogram(
                    "repro_stage_latency_seconds", histogram,
                    labels={"stage": key.split(":", 1)[1]},
                    help_text="Per-request attributed seconds, by latency stage.",
                )
            elif key == "update":
                lines.add_histogram(
                    "repro_update_latency_seconds", histogram,
                    help_text="Traced update latency.",
                )
            else:
                lines.add_histogram(
                    "repro_request_latency_seconds", histogram,
                    labels={"kind": key} if key != "request" else None,
                    help_text="Traced request latency.",
                )
    return lines.render()
