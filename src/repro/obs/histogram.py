"""Fixed-bucket latency histograms for the Prometheus exposition.

The service's latency quantiles (:func:`repro.service.metrics.percentile`)
are computed from a bounded sample window — exact but re-sorted on demand
and meaningless to merge across processes.  Prometheus wants the opposite
trade: fixed cumulative buckets that cost O(1) per observation, O(buckets)
memory forever, and aggregate across scrapes and instances.  One
:class:`Histogram` per stage/kind lives on the tracer; the renderer in
:mod:`repro.obs.prometheus` turns them into standard ``_bucket``/``_sum``/
``_count`` series.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["DEFAULT_BUCKETS", "Histogram"]

#: upper bounds in seconds, log-spaced from 50µs to 10s — wide enough for a
#: cache hit and a cold multi-fragment evaluation on the same axis
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Histogram:
    """Cumulative fixed-bucket histogram (Prometheus semantics).

    ``counts[i]`` is the number of observations ``<= buckets[i]``-th bound's
    bucket (non-cumulative internally; cumulated when rendered); ``+Inf`` is
    implicit via :attr:`count`.
    """

    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        # falls through: counted only in the implicit +Inf bucket

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            running += bucket_count
            pairs.append((bound, running))
        pairs.append((math.inf, self.count))
        return pairs

    def quantile(self, fraction: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket.

        Coarse by construction (bucket resolution); the exact sample-window
        quantiles in :class:`~repro.service.metrics.ServiceMetrics` remain
        the precise source — this exists so the Prometheus payload can carry
        self-contained summary gauges.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        for bound, cumulative in self.cumulative():
            if cumulative >= target:
                return bound if math.isfinite(bound) else self.buckets[-1]
        return self.buckets[-1]

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum_seconds": round(self.sum, 9),
            "mean_seconds": round(self.mean, 9),
            "p50_le_seconds": self.quantile(0.50),
            "p95_le_seconds": self.quantile(0.95),
        }

    def __repr__(self) -> str:
        return f"<Histogram count={self.count} mean={self.mean * 1000:.3f}ms>"
