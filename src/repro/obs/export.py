"""Span exporters: JSON-lines, Chrome trace events (Perfetto), slow-query log.

Every exporter receives finished **root** spans from a
:class:`~repro.obs.trace.Tracer` via ``export(span)``; ``close()`` flushes
and releases the sink.  All three write plain text a human (or Perfetto, or
``jq``) can read without this codebase:

:class:`JsonLinesExporter`
    One JSON object per request — the nested span tree of
    :meth:`~repro.obs.trace.Span.to_dict` — appended per line.  The grep-able
    archival format.
:class:`ChromeTraceExporter`
    The Chrome trace-event format: one complete (``"ph": "X"``) event per
    span, timestamps in microseconds on the process-wide ``perf_counter``
    base.  Load the written file at https://ui.perfetto.dev (or
    ``chrome://tracing``) to see requests as nested flame slices.  Requests
    are assigned round-robin to a small set of virtual threads so concurrent
    requests render side by side instead of stacking into one unreadable
    track.
:class:`SlowQueryLog`
    JSON-lines like the first, but only for requests at or above a latency
    threshold — and those records additionally carry the full
    :class:`~repro.distributed.stats.RunStats` dump, because for a slow
    query you want the paper-model accounting (visits, units, per-stage
    seconds) next to the wall-clock tree.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Union

from repro.obs.trace import Span

__all__ = ["ChromeTraceExporter", "JsonLinesExporter", "SlowQueryLog"]

Sink = Union[str, Path, IO[str]]


class _LineSink:
    """Shared line-oriented sink: a path (opened/append) or a file object."""

    def __init__(self, sink: Sink):
        if isinstance(sink, (str, Path)):
            self._handle: IO[str] = open(sink, "a", encoding="utf-8")
            self._owns = True
        else:
            self._handle = sink
            self._owns = False

    def write_line(self, line: str) -> None:
        self._handle.write(line + "\n")

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        self.flush()
        if self._owns:
            self._handle.close()


class JsonLinesExporter:
    """Append every finished request as one JSON line (the full span tree)."""

    def __init__(self, sink: Sink):
        self._sink = _LineSink(sink)
        self.exported = 0

    def export(self, span: Span) -> None:
        self._sink.write_line(json.dumps(span.to_dict(), sort_keys=True))
        self.exported += 1

    def close(self) -> None:
        self._sink.close()


class ChromeTraceExporter:
    """Collect spans as Chrome trace events; :meth:`save`/:meth:`close` writes.

    Events are buffered (bounded) rather than streamed because the format is
    one JSON document; ``tid`` cycles over ``lanes`` virtual threads so
    overlapping requests get separate tracks in Perfetto.
    """

    #: process/thread names shown by the viewer
    PROCESS_NAME = "repro-service"

    def __init__(self, path: Union[str, Path], lanes: int = 8, max_events: int = 200_000):
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.path = Path(path)
        self.lanes = lanes
        self.max_events = max_events
        self.events: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "name": "process_name",
                "args": {"name": self.PROCESS_NAME},
            }
        ]
        self.dropped = 0
        self._next_lane = 0

    def export(self, span: Span) -> None:
        lane = self._next_lane + 1  # tid 0 is metadata
        self._next_lane = (self._next_lane + 1) % self.lanes
        for node in span.walk():
            if len(self.events) >= self.max_events:
                self.dropped += 1
                continue
            args: Dict[str, Any] = dict(node._attributes) if node._attributes else {}
            if node.stage is not None:
                args["stage"] = node.stage
            event: Dict[str, Any] = {
                "ph": "X",
                "pid": 1,
                "tid": lane,
                "name": node.name,
                "cat": node.stage or node.kind,
                "ts": round(node.start * 1_000_000, 3),
                "dur": round(node.duration * 1_000_000, 3),
            }
            if args:
                event["args"] = _jsonable(args)
            self.events.append(event)

    def save(self) -> Path:
        """Write the buffered events as one Chrome trace JSON document."""
        payload = {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
        }
        self.path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        return self.path

    def close(self) -> None:
        self.save()


class SlowQueryLog:
    """JSON-lines log of requests at or above ``threshold_seconds``.

    Each record: the request's span tree, its stage breakdown, and — when
    the request carried one — the full ``RunStats`` dump
    (:meth:`~repro.distributed.stats.RunStats.to_dict`).
    """

    def __init__(self, sink: Sink, threshold_seconds: float = 0.1):
        if threshold_seconds < 0.0:
            raise ValueError("threshold_seconds must be >= 0")
        self._sink = _LineSink(sink)
        self.threshold_seconds = threshold_seconds
        self.logged = 0

    def export(self, span: Span) -> None:
        if span.duration < self.threshold_seconds:
            return
        record: Dict[str, Any] = {
            "slow_query": True,
            "threshold_seconds": self.threshold_seconds,
            "duration_seconds": round(span.duration, 9),
            "span": span.to_dict(),
        }
        if span.stats is not None:
            record["run_stats"] = span.stats.to_dict()
        self._sink.write_line(json.dumps(record, sort_keys=True))
        self.logged += 1

    def close(self) -> None:
        self._sink.close()


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of span attributes for the trace viewers."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
