"""Request tracing: contextvar-propagated spans over the service request path.

The serving stack reports aggregate qps and latency percentiles
(:mod:`repro.service.metrics`), but aggregates cannot answer *where one slow
request spent its time* — admission queue, batching window, kernel walk,
simulated wire, reassembly — nor verify the paper's per-site visit bounds on
live traffic.  This module provides the span substrate those answers are
built from:

* A :class:`Span` is one timed section of one request, with a name,
  structured attributes, children, and an optional *stage* — the latency
  category it accounts to (``queue``, ``cache``, ``compile``, ``window``,
  ``kernel``, ``wire``, ``reassembly``).  Staged spans are the leaves of the
  per-request latency attribution: summing them per stage reconstructs the
  request's wall-clock latency (see :meth:`Span.breakdown`).
* A :class:`Tracer` opens one **root span per request** (query or update),
  propagates it through a :class:`contextvars.ContextVar` — ``asyncio``
  tasks copy the context at creation, so the per-site rounds a request fans
  out via ``asyncio.gather`` attribute to the right request automatically —
  and on completion runs the finish pipeline: stage breakdown, guarantee
  check (:mod:`repro.obs.guarantees`), per-stage histograms, exporters and
  the slow-query log (:mod:`repro.obs.export`).
* The instrumentation points call the **module-level helpers**
  (:func:`span`, :func:`event`, :func:`add_span`, :func:`set_attributes`,
  :func:`set_stats`): when no request is being traced — the default, every
  host starts with :data:`NULL_TRACER` — each helper is one
  ``ContextVar.get`` returning ``None`` plus a shared, pre-allocated no-op
  context manager.  Nothing is allocated on the disabled path; ``repro
  bench-obs`` measures its cost at well under the 2% budget.

Timestamps are ``time.perf_counter()`` seconds throughout (one consistent
monotonic base per process — exactly what the Chrome trace format wants);
each root span additionally records the wall-clock epoch it started at.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.guarantees import GuaranteeChecker, GuaranteeViolation
from repro.obs.histogram import Histogram

__all__ = [
    "DEFAULT_KEEP_SPANS",
    "FILL_STAGE",
    "NEGLIGIBLE_WAIT_SECONDS",
    "NULL_TRACER",
    "NullTracer",
    "STAGES",
    "Span",
    "Tracer",
    "add_span",
    "current_span",
    "event",
    "set_attributes",
    "set_stats",
    "span",
]

#: the latency-attribution categories a staged span may account to;
#: open-ended by design (the breakdown sums whatever stages appear), but the
#: instrumentation sticks to these so dashboards stay stable
STAGES = ("queue", "cache", "compile", "window", "kernel", "wire", "reassembly")

#: when concurrent spans of *different* stages cover the same instant (a
#: request waiting in the batching window while its other fragment's fused
#: scan runs), the instant is charged to the earliest stage listed here —
#: work beats waiting, so ``window``/``queue`` absorb only otherwise-idle
#: time; stages outside the list rank after all of these
_STAGE_PRECEDENCE = ("kernel", "reassembly", "compile", "cache", "wire", "window", "queue")
_STAGE_RANK = {stage: rank for rank, stage in enumerate(_STAGE_PRECEDENCE)}

#: the synthetic stage a request root's *uncovered* instants are charged to:
#: span entry/exit, metric recording, coalescing bookkeeping, waits too short
#: for their guarded spans (:data:`NEGLIGIBLE_WAIT_SECONDS`) — the
#: per-request framework overhead between staged sections.  No instrumented
#: span ever carries it; :meth:`Span.breakdown` computes it for root spans so
#: the attribution always reconciles to the request's wall clock instead of
#: leaking an unexplained residue.
FILL_STAGE = "dispatch"

#: finished root spans a :class:`Tracer` retains for inspection by default.
#: Deliberately much smaller than the service's per-record sample window
#: (:data:`repro.service.metrics.DEFAULT_SAMPLE_WINDOW`): a retained request
#: is a whole span *tree* (tens of objects), and a large resident set of
#: them measurably slows the collector — the dominant cost of tracing.
DEFAULT_KEEP_SPANS = 512

#: waits shorter than this are not worth a span: an uncontended semaphore
#: or gate acquisition "waits" a few microseconds, and recording one span
#: per such non-event at every queueing point would double a request's span
#: count while moving its attribution by well under the reconciliation
#: tolerance.  Call sites guard with this before ``add_span``.
NEGLIGIBLE_WAIT_SECONDS = 2e-5

#: the active span of the current task (None = tracing disabled / no request)
_ACTIVE: ContextVar[Optional["Span"]] = ContextVar("repro_obs_active_span", default=None)


class Span:
    """One timed, attributed section of one traced request.

    ``start``/``end`` are ``perf_counter`` seconds; ``end`` is ``None``
    while the span is open.  ``stage`` marks the span as contributing to the
    per-request latency attribution (see module docstring and
    :meth:`breakdown`); purely structural spans leave it ``None``.
    """

    __slots__ = (
        "name",
        "kind",
        "stage",
        "start",
        "end",
        "wall_start",
        "_attributes",
        "_children",
        "stats",
        "_token",
        "_aggregated",
    )

    def __init__(
        self,
        name: str,
        kind: str = "internal",
        stage: Optional[str] = None,
        start: Optional[float] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.kind = kind
        self.stage = stage
        self.start = time.perf_counter() if start is None else start
        self.end: Optional[float] = None
        # The wall-clock epoch only matters on root (request/update) spans;
        # internal spans skip the second clock read on the hot path.
        self.wall_start = 0.0 if kind == "internal" else time.time()
        # Attribute dict and child list are lazy: the dominant tracing cost
        # is not the code here but the garbage collector scanning what it
        # allocates, so a leaf span with no attributes must stay a single
        # GC-tracked object, not three.
        self._attributes: Optional[Dict[str, Any]] = attributes
        self._children: Optional[List[Span]] = None
        #: the RunStats of the evaluation this span covers (root spans of
        #: evaluated queries only; cache hits and updates carry none)
        self.stats = None
        self._token = None
        #: True once the tracer has folded this (root) span's breakdown
        #: into its stage histograms — see :meth:`Tracer._aggregate`
        self._aggregated = False

    @property
    def attributes(self) -> Dict[str, Any]:
        """Structured span attributes (allocated on first touch)."""
        attributes = self._attributes
        if attributes is None:
            attributes = self._attributes = {}
        return attributes

    @property
    def children(self) -> List["Span"]:
        """Child spans, oldest first (allocated on first touch)."""
        children = self._children
        if children is None:
            children = self._children = []
        return children

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "Span":
        """Install this span as the task's active span (used by :func:`span`)."""
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        _ACTIVE.reset(self._token)
        self._token = None
        if exc_value is not None and "error" not in (self._attributes or ()):
            self.attributes["error"] = repr(exc_value)
        if self.end is None:
            self.end = time.perf_counter()
        return False

    def finish(self, end: Optional[float] = None) -> None:
        if self.end is None:
            self.end = time.perf_counter() if end is None else end

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return max(self.end - self.start, 0.0)

    # -- structure ---------------------------------------------------------

    def child(
        self,
        name: str,
        stage: Optional[str] = None,
        start: Optional[float] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> "Span":
        """Create, attach and return a child span (not yet finished)."""
        child = Span(name, stage=stage, start=start, attributes=attributes)
        children = self._children
        if children is None:
            self._children = [child]
        else:
            children.append(child)
        return child

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        if self._children:
            for child in self._children:
                yield from child.walk()

    def span_count(self) -> int:
        """How many spans this tree holds (the root included)."""
        return sum(1 for _ in self.walk())

    # -- latency attribution ----------------------------------------------

    def breakdown(self) -> Dict[str, float]:
        """Per-stage seconds of this span's subtree.

        Every wall-clock instant covered by at least one staged span is
        charged to **exactly one** stage: concurrent same-stage spans
        (parallel site rounds, several fragments sharing one fused scan)
        merge, and where different stages overlap the instant goes to the
        one ranking earliest in the work-beats-waiting precedence
        (:data:`_STAGE_PRECEDENCE` — so a request parked in the batching
        window while one of its own scans runs counts that time as
        ``kernel``, not twice).  Nesting staged spans is therefore safe and
        deliberate: wide low-precedence spans (the ``queue``-staged
        ``evaluate`` and per-site round wrappers) act as fillers whose time
        is reclaimed wherever a more specific child covers it, so scheduler
        hops between a request's awaits surface as queueing delay instead
        of vanishing.  On request/update roots (``kind != "internal"``)
        the instants no staged span covers are charged to
        :data:`FILL_STAGE` (``dispatch``): per-request framework overhead —
        span entry/exit, metric recording, waits under the
        :data:`NEGLIGIBLE_WAIT_SECONDS` guard — is real time an operator
        should see, not an unexplained residue, so a closed root's
        breakdown sums to its wall-clock duration by construction (the
        ``repro bench-obs`` reconciliation criterion holds it within 5%).
        """
        # One boundary sweep: +1/-1 events per staged interval, sorted by
        # time, a small active-count per precedence rank, and every segment
        # between consecutive boundaries charged to the smallest active rank.
        # O(E log E + E * ranks) with E = 2 * staged spans — this runs in
        # every traced request's finish pipeline, so it must stay cheap.
        events: List[tuple] = []
        ranks = dict(_STAGE_RANK)  # stages outside the list rank after all
        stage_of_rank: Dict[int, str] = {}
        stack = list(self._children) if self._children else []
        while stack:
            node = stack.pop()
            if (
                node.stage is not None
                and node.end is not None
                and node.end > node.start
            ):
                rank = ranks.setdefault(node.stage, len(ranks))
                stage_of_rank[rank] = node.stage
                events.append((node.start, 1, rank))
                events.append((node.end, -1, rank))
            if node._children:
                stack.extend(node._children)
        fillable = self.kind != "internal" and self.end is not None
        if not events:
            return {FILL_STAGE: self.duration} if fillable and self.duration > 0.0 else {}
        events.sort()
        top_rank = len(ranks) - 1
        counts = [0] * len(ranks)
        seconds_by_rank = [0.0] * len(ranks)
        active_rank = -1  # -1 = nothing active
        previous = events[0][0]
        for at, delta, rank in events:
            if active_rank >= 0 and at > previous:
                seconds_by_rank[active_rank] += at - previous
            previous = at
            counts[rank] += delta
            if delta > 0:
                if active_rank < 0 or rank < active_rank:
                    active_rank = rank
            elif rank == active_rank and counts[rank] == 0:
                active_rank = -1
                for candidate in range(rank, top_rank + 1):
                    if counts[candidate]:
                        active_rank = candidate
                        break
        result = {
            stage_of_rank[rank]: seconds
            for rank, seconds in enumerate(seconds_by_rank)
            if seconds > 0.0
        }
        if fillable:
            fill = self.duration - sum(seconds_by_rank)
            if fill > 0.0:
                result[FILL_STAGE] = fill
        return result

    def attributed_seconds(self) -> float:
        """Total seconds the stage breakdown accounts for."""
        return sum(self.breakdown().values())

    # -- presentation ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested snapshot of the span tree."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "start": round(self.start, 9),
            "duration_seconds": round(self.duration, 9),
        }
        if self.kind != "internal":
            payload["wall_start"] = round(self.wall_start, 6)
        if self.stage is not None:
            payload["stage"] = self.stage
        if self._attributes:
            payload["attributes"] = dict(self._attributes)
        if self._children:
            payload["children"] = [child.to_dict() for child in self._children]
        return payload

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} stage={self.stage}"
            f" duration={self.duration * 1000:.3f}ms"
            f" children={len(self._children) if self._children else 0}>"
        )


# ---------------------------------------------------------------------------
# module-level helpers: the instrumentation surface
# ---------------------------------------------------------------------------


class _NoopContext:
    """Shared, allocation-free context manager for the untraced path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP = _NoopContext()


def current_span() -> Optional[Span]:
    """The active span of the current task, or ``None`` when untraced."""
    return _ACTIVE.get()


def span(name: str, stage: Optional[str] = None, **attributes: Any):
    """Open a child span of the active span for the enclosed work.

    No-op (one shared context manager, nothing allocated) when the current
    task is not being traced.  Usable across ``await`` points; child tasks
    spawned inside inherit it as their parent.  The returned child span is
    its own context manager (``__enter__`` activates it, ``__exit__``
    finishes it) — one allocation per traced span.
    """
    parent = _ACTIVE.get()
    if parent is None:
        return _NOOP
    return parent.child(name, stage=stage, attributes=attributes or None)


def add_span(
    name: str,
    stage: Optional[str],
    start: float,
    end: float,
    **attributes: Any,
) -> None:
    """Attach an already-measured span to the active span.

    For sections timed outside the request's own context — the fused-scan
    batcher flushes in whatever task context first scheduled the flush
    callback, so its per-waiter window/kernel times are recorded by the
    waiter afterwards, with explicit timestamps.
    """
    parent = _ACTIVE.get()
    if parent is None:
        return
    child = parent.child(name, stage=stage, start=start, attributes=attributes or None)
    child.end = end


def event(name: str, **attributes: Any) -> None:
    """Attach a zero-duration marker span (e.g. one wire message) if traced."""
    parent = _ACTIVE.get()
    if parent is None:
        return
    now = time.perf_counter()
    child = parent.child(name, start=now, attributes=attributes or None)
    child.end = now


def set_attributes(**attributes: Any) -> None:
    """Merge *attributes* into the active span (no-op when untraced)."""
    active = _ACTIVE.get()
    if active is not None:
        active.attributes.update(attributes)


def set_stats(stats: Any) -> None:
    """Attach the evaluation's RunStats to the active span (no-op untraced).

    The tracer's finish pipeline reads it for the guarantee check and copies
    the headline accounting (visits per site, communication units) into the
    span attributes.
    """
    active = _ACTIVE.get()
    if active is not None:
        active.stats = stats


# ---------------------------------------------------------------------------
# tracers
# ---------------------------------------------------------------------------


class NullTracer:
    """The default tracer: traces nothing, allocates nothing.

    Its :meth:`request` returns the shared no-op context manager without
    touching the context variable, so every downstream helper sees an
    untraced task and short-circuits.
    """

    enabled = False

    def request(self, name: str, kind: str = "request", **attributes: Any):
        return _NOOP

    def to_dict(self) -> Dict[str, Any]:
        return {"enabled": False}

    def __repr__(self) -> str:
        return "<NullTracer>"


#: process-wide shared instance; hosts default to it
NULL_TRACER = NullTracer()


class Tracer:
    """Collect, check and export one root span per served request.

    Parameters
    ----------
    exporters:
        Objects with an ``export(span)`` method, called with every finished
        root span (see :mod:`repro.obs.export`); exporter errors propagate —
        an operator turning tracing on wants to know their sink is broken.
    check_guarantees:
        Verify the paper's per-site visit bound on every evaluated request
        (:class:`~repro.obs.guarantees.GuaranteeChecker`); violations are
        counted, kept (bounded), and flagged on the offending span.
    keep_spans:
        Finished root spans retained in :attr:`finished` for inspection
        (oldest dropped first) — :data:`DEFAULT_KEEP_SPANS` by default.
    """

    enabled = True

    def __init__(
        self,
        exporters: Optional[List[Any]] = None,
        check_guarantees: bool = True,
        keep_spans: Optional[int] = None,
    ):
        if keep_spans is None:
            keep_spans = DEFAULT_KEEP_SPANS
        if keep_spans < 1:
            raise ValueError("keep_spans must be >= 1")
        self.exporters: List[Any] = list(exporters) if exporters else []
        self.guarantees: Optional[GuaranteeChecker] = (
            GuaranteeChecker() if check_guarantees else None
        )
        self.keep_spans = keep_spans
        self._finished: List[Span] = []
        self._histograms: Dict[str, Histogram] = {}
        #: root spans finished since construction (unbounded counter)
        self.requests_traced = 0

    # -- recording ---------------------------------------------------------

    @contextmanager
    def request(self, name: str, kind: str = "request", **attributes: Any):
        """Open the root span of one request for the enclosed work."""
        root = Span(name, kind=kind, attributes=attributes or None)
        token = _ACTIVE.set(root)
        try:
            yield root
        except BaseException as error:
            root.attributes.setdefault("error", repr(error))
            raise
        finally:
            _ACTIVE.reset(token)
            root.finish()
            self._finish_root(root)

    def _finish_root(self, root: Span) -> None:
        """The per-request finish pipeline — this runs on the serving hot
        path, so it does only the work that must be *online*: the guarantee
        check (a violation should be flagged when it happens, not when a
        dashboard looks), the headline stats attributes, the per-kind
        duration histogram and retention.  The O(E log E) attribution sweep
        and the per-stage histograms are deferred to :meth:`_aggregate`,
        which runs when a consumer reads (or an exporter serializes) —
        tracing's steady-state price is recording, not aggregating.
        """
        self.requests_traced += 1
        if root.stats is not None:
            stats = root.stats
            root.attributes.setdefault("algorithm", stats.algorithm)
            root.attributes["answer_count"] = stats.answer_count
            root.attributes["communication_units"] = stats.communication_units
            root.attributes["message_count"] = stats.message_count
            root.attributes["site_visits"] = stats.visits_by_site()
            root.attributes["max_site_visits"] = stats.max_site_visits
            if self.guarantees is not None:
                violations = self.guarantees.check(stats)
                if violations:
                    root.attributes["guarantee_violations"] = [
                        violation.to_dict() for violation in violations
                    ]
        self._histogram(root.kind).observe(root.duration)
        finished = self._finished
        finished.append(root)
        if len(finished) > self.keep_spans:
            del finished[: len(finished) - self.keep_spans]
        if self.exporters:
            self._aggregate()
            for exporter in self.exporters:
                exporter.export(root)

    def _aggregate(self) -> None:
        """Fold retained-but-unaggregated roots into the stage histograms.

        Roots trimmed out of retention before any consumer read are never
        aggregated: the per-kind duration histograms stay exact over every
        request, while the ``stage:*`` histograms cover the retained sample
        (the ``keep_spans`` most recent roots per read — plenty for a
        scrape-interval dashboard, free for requests nobody looks at).
        """
        for root in self._finished:
            if root._aggregated:
                continue
            root._aggregated = True
            breakdown = root.breakdown()
            if breakdown:
                root.attributes["breakdown_seconds"] = {
                    stage: round(seconds, 9)
                    for stage, seconds in sorted(breakdown.items())
                }
                for stage, seconds in breakdown.items():
                    self._histogram(f"stage:{stage}").observe(seconds)

    def _histogram(self, key: str) -> Histogram:
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram()
        return histogram

    # -- maintenance -------------------------------------------------------

    def close(self) -> None:
        """Aggregate retained roots, then flush/close every exporter."""
        self._aggregate()
        for exporter in self.exporters:
            close = getattr(exporter, "close", None)
            if close is not None:
                close()

    # -- presentation ------------------------------------------------------

    @property
    def finished(self) -> List[Span]:
        """Finished root spans, oldest first, bounded by ``keep_spans``.

        Reading drains the deferred aggregation, so every returned root
        carries its ``breakdown_seconds`` attribute.
        """
        self._aggregate()
        return self._finished

    @property
    def histograms(self) -> Dict[str, Histogram]:
        """Duration histograms per root kind (exact over every request)
        plus ``stage:*`` attributed-seconds histograms (over the retained
        sample — see :meth:`_aggregate`)."""
        self._aggregate()
        return self._histograms

    @property
    def violation_count(self) -> int:
        return self.guarantees.violation_count if self.guarantees is not None else 0

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "enabled": True,
            "requests_traced": self.requests_traced,
            "retained_spans": len(self.finished),
            "guarantee_violations": self.violation_count,
            "histograms": {
                key: histogram.to_dict()
                for key, histogram in sorted(self.histograms.items())
            },
        }
        return payload

    def __repr__(self) -> str:
        return (
            f"<Tracer traced={self.requests_traced}"
            f" violations={self.violation_count}"
            f" exporters={len(self.exporters)}>"
        )
