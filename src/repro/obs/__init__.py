"""Observability: request tracing, latency attribution, exportable metrics.

The paper's claims are performance *guarantees* — bounded per-site visits,
communication independent of document size — and the serving stack built on
top of them (admission, caching, batching, updates, multi-tenancy) adds
wall-clock stages the paper's cost model never sees.  This package makes
both observable on live traffic:

:mod:`~repro.obs.trace`
    Contextvar-propagated :class:`~repro.obs.trace.Tracer`/
    :class:`~repro.obs.trace.Span`: one root span per request, threaded
    through admission wait, cache, plan compile, the batching window, the
    per-site evaluator rounds, fragment kernel scans, the simulated wire and
    reassembly — and the write path.  Staged spans reconstruct each
    request's latency per category; the default
    :data:`~repro.obs.trace.NULL_TRACER` keeps the untraced path
    allocation-free.
:mod:`~repro.obs.guarantees`
    The online guarantee checker: every traced evaluation is verified
    against the paper's per-site visit bounds (PaX2 ≤ 2, PaX3 ≤ 3,
    ParBoX = 1, naive = 1); violations are counted and flagged on the span.
:mod:`~repro.obs.export`
    Exporters — JSON-lines span log, Chrome trace events (open in
    Perfetto), slow-query log with full ``RunStats`` dumps.
:mod:`~repro.obs.histogram` / :mod:`~repro.obs.prometheus` / :mod:`~repro.obs.http`
    Fixed-bucket latency histograms, the Prometheus text-format renderer
    over the host's whole metrics surface, and the tiny asyncio HTTP
    endpoint behind ``repro serve --metrics-port`` / ``repro stats``.

Quickstart::

    from repro.obs import ChromeTraceExporter, Tracer
    from repro.service import ServiceEngine

    tracer = Tracer(exporters=[ChromeTraceExporter("trace.json")])
    service = ServiceEngine(fragmentation, tracer=tracer)
    service.serve_batch(["//person/name"] * 100, concurrency=16)
    tracer.close()                       # writes trace.json for Perfetto
    print(tracer.finished[-1].breakdown())   # {'queue': ..., 'kernel': ...}
"""

from repro.obs.export import ChromeTraceExporter, JsonLinesExporter, SlowQueryLog
from repro.obs.guarantees import VISIT_BOUNDS, GuaranteeChecker, GuaranteeViolation
from repro.obs.histogram import DEFAULT_BUCKETS, Histogram
from repro.obs.http import MetricsServer, stats_payload
from repro.obs.prometheus import render_prometheus
from repro.obs.trace import (
    NULL_TRACER,
    STAGES,
    NullTracer,
    Span,
    Tracer,
    add_span,
    current_span,
    event,
    set_attributes,
    set_stats,
    span,
)

__all__ = [
    "ChromeTraceExporter",
    "JsonLinesExporter",
    "SlowQueryLog",
    "VISIT_BOUNDS",
    "GuaranteeChecker",
    "GuaranteeViolation",
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsServer",
    "stats_payload",
    "render_prometheus",
    "NULL_TRACER",
    "STAGES",
    "NullTracer",
    "Span",
    "Tracer",
    "add_span",
    "current_span",
    "event",
    "set_attributes",
    "set_stats",
    "span",
]
