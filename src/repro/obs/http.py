"""A tiny asyncio HTTP endpoint serving the host's live metrics.

No web framework, no dependency: a line-oriented HTTP/1.0-style responder on
``asyncio.start_server``, just enough for a Prometheus scraper, ``curl`` or
``repro stats`` to pull three routes:

``/metrics``
    Prometheus text exposition (:func:`repro.obs.prometheus.render_prometheus`).
``/stats.json``
    One JSON document: service metrics, cache stats, per-document batching
    stats and the tracer's state (:func:`stats_payload`).
``/healthz``
    ``ok`` with the served document count — a liveness probe.

Started from ``repro serve --metrics-port`` (live during — and optionally
after — the workload) or programmatically::

    server = MetricsServer(host, port=0)       # port=0 picks a free port
    await server.start()
    ... scrape http://127.0.0.1:{server.port}/metrics ...
    await server.stop()
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from repro.obs.prometheus import render_prometheus

__all__ = ["MetricsServer", "stats_payload"]


def stats_payload(host: Any) -> Dict[str, Any]:
    """The ``/stats.json`` document: every stats surface the host keeps."""
    payload: Dict[str, Any] = {
        "documents": list(host.documents()) if hasattr(host, "documents") else [],
        "metrics": host.metrics.to_dict(),
    }
    cache = getattr(host, "cache", None)
    if cache is not None:
        payload["cache"] = cache.stats.to_dict()
        payload["cache_entries"] = len(cache)
    batching: Dict[str, Any] = {}
    for name, session in sorted((getattr(host, "sessions", None) or {}).items()):
        batcher = getattr(session, "batcher", None)
        if batcher is not None:
            batching[name] = batcher.stats.to_dict()
    if batching:
        payload["batching"] = batching
    tracer = getattr(host, "tracer", None)
    if tracer is not None:
        payload["tracing"] = tracer.to_dict()
    return payload


class MetricsServer:
    """Serve ``/metrics``, ``/stats.json`` and ``/healthz`` for one host."""

    def __init__(self, host: Any, port: int = 0, address: str = "127.0.0.1"):
        self.host = host
        self.address = address
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "MetricsServer":
        """Bind and start serving; resolves :attr:`port` when it was 0."""
        self._server = await asyncio.start_server(self._handle, self.address, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.address}:{self.port}"

    # -- request handling --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else "/"
            # Drain headers; we route on the path alone.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if not line or line in (b"\r\n", b"\n"):
                    break
            status, content_type, body = self._route(path.split("?", 1)[0])
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            writer.write(payload)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    def _route(self, path: str) -> tuple:
        if path == "/metrics":
            return (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(self.host),
            )
        if path == "/stats.json":
            return (
                "200 OK",
                "application/json; charset=utf-8",
                json.dumps(stats_payload(self.host), indent=2, sort_keys=True) + "\n",
            )
        if path == "/healthz":
            documents = list(self.host.documents()) if hasattr(self.host, "documents") else []
            return ("200 OK", "text/plain; charset=utf-8", f"ok {len(documents)} document(s)\n")
        return (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; routes: /metrics /stats.json /healthz\n",
        )

    def __repr__(self) -> str:
        state = "listening" if self._server is not None else "stopped"
        return f"<MetricsServer {self.url} {state}>"
