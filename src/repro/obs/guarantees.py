"""Live verification of the paper's per-site visit bounds (Section 3.4).

The paper's headline guarantee is that partial evaluation visits each site a
*bounded* number of times per query, independent of the document: PaX3 at
most three times (qualifier, selection, answer rounds), PaX2 at most twice
(combined round, answer round), ParBoX exactly once (it is PaX3's first
stage alone), and the naive baseline once (it ships every fragment to the
coordinator in one round).  ``repro.bench.guarantees`` tabulates this
offline; :class:`GuaranteeChecker` enforces it *online*: the tracer runs it
against every evaluated request's :class:`~repro.distributed.stats.RunStats`
and any site whose visit count exceeds its algorithm's bound becomes a
recorded :class:`GuaranteeViolation` — a regression in the request path
(e.g. an orchestration change visiting a site per fragment instead of per
round) surfaces on the first traced request instead of in a quarterly
benchmark run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

__all__ = ["VISIT_BOUNDS", "GuaranteeChecker", "GuaranteeViolation"]

#: maximum visits any one site may receive per query, by the algorithm name
#: recorded in RunStats.algorithm (Section 3.4 of the paper)
VISIT_BOUNDS: Dict[str, int] = {
    "PaX2": 2,
    "PaX3": 3,
    "ParBoX": 1,
    "NaiveCentralized": 1,
}


@dataclass(frozen=True)
class GuaranteeViolation:
    """One site of one run exceeding its algorithm's visit bound."""

    algorithm: str
    query: str
    site_id: str
    visits: int
    bound: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "query": self.query,
            "site_id": self.site_id,
            "visits": self.visits,
            "bound": self.bound,
        }

    def __str__(self) -> str:
        return (
            f"{self.algorithm} visited site {self.site_id} {self.visits}x"
            f" on {self.query!r} (bound: {self.bound})"
        )


class GuaranteeChecker:
    """Check evaluated runs against the per-site visit bounds.

    Violations are counted for the tracer's lifetime and the most recent
    ones retained (bounded by ``keep``).  Unknown algorithm names pass
    unchecked — a new algorithm must opt into a bound, not inherit one.
    """

    def __init__(self, bounds: Optional[Mapping[str, int]] = None, keep: int = 100):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.bounds: Dict[str, int] = dict(bounds) if bounds is not None else dict(VISIT_BOUNDS)
        self.keep = keep
        self.checked = 0
        self.violation_count = 0
        #: most recent violations, oldest first (bounded by ``keep``)
        self.violations: List[GuaranteeViolation] = []

    def check(self, stats) -> List[GuaranteeViolation]:
        """Check one run; record and return its violations (usually empty)."""
        bound = self.bounds.get(stats.algorithm)
        if bound is None:
            return []
        self.checked += 1
        found: List[GuaranteeViolation] = []
        for site_id, visits in stats.visits_by_site().items():
            if visits > bound:
                found.append(
                    GuaranteeViolation(
                        algorithm=stats.algorithm,
                        query=stats.query,
                        site_id=site_id,
                        visits=visits,
                        bound=bound,
                    )
                )
        if found:
            self.violation_count += len(found)
            self.violations.extend(found)
            if len(self.violations) > self.keep:
                del self.violations[: len(self.violations) - self.keep]
        return found

    def to_dict(self) -> Dict[str, object]:
        return {
            "checked": self.checked,
            "violations": self.violation_count,
            "recent": [violation.to_dict() for violation in self.violations[-10:]],
        }

    def __repr__(self) -> str:
        return f"<GuaranteeChecker checked={self.checked} violations={self.violation_count}>"
