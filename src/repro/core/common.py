"""Shared helpers for the algorithm orchestrators (PaX3, PaX2, ParBoX, naive)."""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.booleans.formula import FormulaLike, formula_size
from repro.distributed.network import Network
from repro.distributed.placement import one_site_per_fragment
from repro.distributed.stats import StageStats
from repro.fragments.fragment_tree import Fragmentation
from repro.xmltree.nodes import XMLTree
from repro.xpath.ast import PathExpr
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import QueryPlan, compile_plan

__all__ = [
    "QueryInput",
    "ensure_plan",
    "build_network",
    "vector_units",
    "binding_units",
    "plan_units",
    "answer_subtree_nodes",
    "stage_timer",
    "stage_site_times",
]

QueryInput = Union[str, PathExpr, QueryPlan]


def ensure_plan(query: QueryInput) -> QueryPlan:
    """Accept a query string, a parsed path or a compiled plan."""
    if isinstance(query, QueryPlan):
        return query
    if isinstance(query, PathExpr):
        return compile_plan(query)
    return compile_plan(parse_xpath(query), source=query)


def build_network(
    fragmentation: Fragmentation,
    placement: Optional[Mapping[str, str]] = None,
) -> Network:
    """Create a network for a fragmentation (one site per fragment by default)."""
    if placement is None:
        placement = one_site_per_fragment(fragmentation)
    return Network(fragmentation, placement)


def vector_units(vectors: Iterable[Sequence[FormulaLike]]) -> int:
    """Traffic units of a collection of vectors (formula atoms per entry)."""
    total = 0
    for vector in vectors:
        for entry in vector:
            total += formula_size(entry)
    return total


def binding_units(bindings: Mapping[str, object]) -> int:
    """Traffic units of a resolved variable binding payload."""
    return len(bindings)


def plan_units(plan: QueryPlan) -> int:
    """Traffic units of shipping the query plan itself (the paper's |Q|)."""
    return plan.n_steps + plan.n_items + 1


def answer_subtree_nodes(tree: XMLTree, answer_ids: Sequence[int]) -> int:
    """Number of tree nodes shipped when answers are materialized as subtrees."""
    return sum(tree.node(node_id).subtree_size() for node_id in answer_ids)


def stage_site_times(
    network: Network, site_ids: Sequence[str], stage_key: str
) -> tuple[float, float]:
    """(parallel, total) seconds of one stage over the participating sites.

    Parallel time is the slowest site (sites work independently within a
    stage), total time the sum over sites — the paper's two time measures.
    """
    times = [network.sites[site_id].stage_seconds.get(stage_key, 0.0) for site_id in site_ids]
    if not times:
        return 0.0, 0.0
    return max(times), sum(times)


@contextmanager
def stage_timer(stage: StageStats) -> Iterator[StageStats]:
    """Measure coordinator-side work (``evalFT``) attached to a stage.

    As in :meth:`repro.distributed.site.Site.visit`, the cyclic garbage
    collector is paused inside the timing window so a multi-ms gen-2
    collection is not charged to whichever stage happened to trigger it.
    """
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    started = time.perf_counter()
    try:
        yield stage
    finally:
        stage.coordinator_seconds += time.perf_counter() - started
        if gc_was_enabled:
            gc.enable()
