"""The XPath-annotation optimization (Section 5 of the paper).

Given an annotated fragment tree, the coordinator knows — for every fragment
— the label path from the document root down to the fragment's root.  Two
uses are made of that information:

1. **Pruning**: a fragment is skipped entirely when (a) no match of the
   selection path can lie in its subtree *and* (b) no node carrying a
   qualifier can be an ancestor-or-self of its root.  Both conditions are
   decided conservatively by simulating the selection prefix automaton along
   the label path with qualifiers assumed true, so pruning never changes the
   answer.  Ancestors of kept fragments are also kept so the coordinator can
   still resolve initialization variables along the fragment tree.

2. **Concrete initialization**: when the query has no qualifiers, the prefix
   vector of a fragment root's parent is fully determined by the label path,
   so the selection stack can be initialized with concrete values instead of
   variables — every answer is then identified with certainty and the final
   answer-retrieval stage is skipped (the paper's Experiment 1/2 effect).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.fragments.annotations import root_label_path
from repro.fragments.fragment_tree import Fragmentation
from repro.xpath.plan import CHILD, DESC, SELFQUAL, QueryPlan
from repro.xpath.runtime import root_context_init_vector

__all__ = [
    "prefix_vectors_along_path",
    "relevant_fragments",
    "initial_vector_from_labels",
    "annotation_init_vector",
    "stage1_init_vector",
    "PruningDecision",
]


def _advance(
    plan: QueryPlan,
    previous: Sequence[bool],
    label: str,
    is_relative_context: bool,
    assume_qualifiers: bool,
) -> List[bool]:
    """One step of the prefix automaton along a label chain.

    ``previous`` is the vector of the node's parent (or the document-node
    vector for the root element of an absolute plan); ``is_relative_context``
    marks the root element of a relative plan, which *is* the query context.
    With ``assume_qualifiers`` the automaton over-approximates (qualifiers
    treated as true); without it the result is exact for qualifier-free
    plans.
    """
    n_steps = plan.n_steps
    vector: List[bool] = [False] * (n_steps + 1)
    vector[0] = is_relative_context
    for position, step in enumerate(plan.selection, start=1):
        if step.kind == CHILD:
            matches = step.tag is None or step.tag == label
            vector[position] = bool(previous[position - 1]) and matches
        elif step.kind == DESC:
            vector[position] = bool(previous[position]) or vector[position - 1]
        elif step.kind == SELFQUAL:
            vector[position] = vector[position - 1] and assume_qualifiers
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown selection step kind {step.kind!r}")
    return vector


def prefix_vectors_along_path(
    plan: QueryPlan,
    labels_from_root: Sequence[str],
    assume_qualifiers: bool = True,
) -> List[List[bool]]:
    """Prefix vectors for the nodes along a root-to-fragment label chain.

    ``labels_from_root[0]`` must be the root element's label; index ``d`` of
    the result is the vector of the node at depth ``d``.
    """
    if not labels_from_root:
        raise ValueError("the label chain must start with the root element's label")
    vectors: List[List[bool]] = []
    previous: Sequence[bool] = [bool(value) for value in root_context_init_vector(plan)]
    for depth, label in enumerate(labels_from_root):
        is_relative_context = depth == 0 and not plan.absolute
        vector = _advance(plan, previous, label, is_relative_context, assume_qualifiers)
        vectors.append(vector)
        previous = vector
    return vectors


class PruningDecision:
    """Outcome of the annotation-based pruning for one fragmentation/query."""

    def __init__(self, kept: Set[str], pruned: Set[str], reasons: Dict[str, str]):
        self.kept = kept
        self.pruned = pruned
        self.reasons = reasons

    def keeps(self, fragment_id: str) -> bool:
        return fragment_id in self.kept

    def __repr__(self) -> str:
        return f"<PruningDecision kept={sorted(self.kept)} pruned={sorted(self.pruned)}>"


def relevant_fragments(fragmentation: Fragmentation, plan: QueryPlan) -> PruningDecision:
    """Decide which fragments must participate in the evaluation of *plan*."""
    qualifier_prefixes = [
        position - 1
        for position in range(1, plan.n_steps + 1)
        if plan.selection[position - 1].kind == SELFQUAL
    ]
    root_label = fragmentation.tree.root.label
    kept: Set[str] = set()
    reasons: Dict[str, str] = {}

    for fragment_id in fragmentation.fragment_ids():
        if fragment_id == fragmentation.root_fragment_id:
            kept.add(fragment_id)
            reasons[fragment_id] = "root fragment"
            continue
        labels = [root_label] + root_label_path(fragmentation, fragment_id)
        vectors = prefix_vectors_along_path(plan, labels, assume_qualifiers=True)
        if any(vectors[-1]):
            kept.add(fragment_id)
            reasons[fragment_id] = "may contain selection matches"
            continue
        qualifier_hit = any(
            vectors[depth][prefix]
            for depth in range(len(vectors))
            for prefix in qualifier_prefixes
        )
        if qualifier_hit:
            kept.add(fragment_id)
            reasons[fragment_id] = "inside the scope of a qualifier"

    # Keep fragment-tree ancestors of every kept fragment so initialization
    # variables can be resolved along an unbroken chain.
    closure = set(kept)
    for fragment_id in kept:
        for ancestor in fragmentation.ancestors(fragment_id):
            if ancestor not in closure:
                closure.add(ancestor)
                reasons.setdefault(ancestor, "ancestor of a relevant fragment")
    pruned = set(fragmentation.fragment_ids()) - closure
    for fragment_id in pruned:
        reasons[fragment_id] = "no selection match or qualifier scope can reach it"
    return PruningDecision(closure, pruned, reasons)


def initial_vector_from_labels(plan: QueryPlan, labels_from_root: Sequence[str]) -> List[bool]:
    """Concrete initialization vector of a fragment from its annotation path.

    Only valid for qualifier-free plans (otherwise the vector would have to
    carry the unknown qualifier outcomes of ancestor nodes).

    ``labels_from_root`` is the label chain from the document root element
    (inclusive) to the fragment's root (inclusive); the returned vector is
    the prefix vector of the fragment root's *parent*, i.e. the stack
    initialization for the fragment.
    """
    if plan.has_qualifiers:
        raise ValueError("concrete initialization requires a qualifier-free query")
    if len(labels_from_root) < 2:
        # The fragment root is the document root element: its "parent" is the
        # query context itself.
        return [bool(value) for value in root_context_init_vector(plan)]
    vectors = prefix_vectors_along_path(plan, labels_from_root, assume_qualifiers=False)
    return vectors[len(labels_from_root) - 2]


def annotation_init_vector(
    fragmentation: Fragmentation, plan: QueryPlan, fragment_id: str
) -> List[bool]:
    """Convenience wrapper: concrete initialization vector for one fragment."""
    labels = [fragmentation.tree.root.label] + root_label_path(fragmentation, fragment_id)
    return initial_vector_from_labels(plan, labels)


def stage1_init_vector(
    fragmentation: Fragmentation,
    plan: QueryPlan,
    fragment_id: str,
    use_annotations: bool,
):
    """The initialization vector a stage-1 pass starts *fragment_id* with.

    The one dispatch every orchestrator (PaX2 sync, PaX2 batch, the async
    service evaluator, the benches) must agree on: the root fragment gets
    the concrete context vector, annotated qualifier-free queries get the
    concrete label-path vector, everything else starts from per-fragment
    ``sv:`` variables.
    """
    # Imported here: selection sits below pruning for the pruner's own
    # imports, and this helper is the only place the two meet.
    from repro.core.selection import concrete_root_init_vector, variable_init_vector

    if fragment_id == fragmentation.root_fragment_id:
        return concrete_root_init_vector(plan)
    if use_annotations and not plan.has_qualifiers:
        return annotation_init_vector(fragmentation, plan, fragment_id)
    return variable_init_vector(plan, fragment_id)
