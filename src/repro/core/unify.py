"""Coordinator-side unification over the fragment tree (Procedure ``evalFT``).

After the parallel per-fragment passes, the coordinator holds, per fragment,

* the qualifier HEAD/DESC vectors of its root (with variables referring to
  its sub-fragments), and
* the selection vectors computed at the parents of its virtual nodes (with
  variables referring to its own initialization and to its sub-fragments'
  qualifier values).

``evalFT`` resolves all variables by two linear traversals of the fragment
tree: qualifier variables bottom-up (leaf fragments carry no variables), and
selection variables top-down (the root fragment's initialization is
concrete).  The result is an :class:`~repro.booleans.env.Environment`
binding every exchanged variable to a concrete truth value.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.booleans.env import Environment
from repro.booleans.formula import FormulaLike, variables_of
from repro.core.variables import desc_var_name, head_var_name, selection_var_name
from repro.fragments.fragment_tree import Fragmentation
from repro.xpath.plan import QueryPlan

__all__ = [
    "UnificationError",
    "unify_qualifier_vectors",
    "unify_selection_vectors",
    "require_concrete",
]


class UnificationError(Exception):
    """Raised when a vector cannot be resolved to concrete truth values."""


def require_concrete(value: FormulaLike, context: str) -> bool:
    """Assert that a resolved value is a constant and return it as a bool."""
    if isinstance(value, bool):
        return value
    free = ", ".join(sorted(variables_of(value)))
    raise UnificationError(f"{context} still depends on unresolved variables: {free}")


def unify_qualifier_vectors(
    fragmentation: Fragmentation,
    plan: QueryPlan,
    root_vectors: Mapping[str, tuple[Sequence[FormulaLike], Sequence[FormulaLike]]],
    environment: Environment | None = None,
) -> Environment:
    """Bottom-up unification of the qualifier variables (``qh:`` / ``qd:``).

    ``root_vectors`` maps a fragment id to the (HEAD, DESC) vectors of its
    root.  Fragments missing from the mapping (pruned by the optimizer) are
    skipped: the soundness of the pruner guarantees their variables never
    influence an answer, and strict resolution downstream will flag any
    violation of that guarantee.
    """
    env = environment if environment is not None else Environment()
    for fragment_id in fragmentation.bottom_up_order():
        vectors = root_vectors.get(fragment_id)
        if vectors is None:
            continue
        head, desc = vectors
        for item_id in plan.head_item_ids:
            env.bind(head_var_name(fragment_id, item_id), env.resolve(head[item_id]))
        for item_id in plan.desc_item_ids:
            env.bind(desc_var_name(fragment_id, item_id), env.resolve(desc[item_id]))
    return env


def unify_selection_vectors(
    fragmentation: Fragmentation,
    plan: QueryPlan,
    virtual_parent_vectors: Mapping[str, Mapping[str, Sequence[FormulaLike]]],
    environment: Environment,
) -> Environment:
    """Top-down unification of the selection variables (``sv:``).

    ``virtual_parent_vectors`` maps a fragment id to the vectors it computed
    for its sub-fragments (keyed by sub-fragment id).  The environment must
    already contain the qualifier bindings (PaX2 vectors mix both families).
    """
    for fragment_id in fragmentation.top_down_order():
        produced = virtual_parent_vectors.get(fragment_id)
        if not produced:
            continue
        for child_id, vector in produced.items():
            for entry, value in enumerate(vector):
                environment.bind(selection_var_name(child_id, entry), environment.resolve(value))
    return environment


def _concrete_binding(environment: Environment, name: str, bindings: Dict[str, bool]) -> None:
    """Add ``name`` to *bindings* when its resolved value is a constant.

    When the annotation optimizer pruned a fragment, a value exchanged by one
    of its (evaluated) ancestors may still mention the pruned fragment's
    variables; the pruner guarantees such a value can never influence an
    answer, so it is simply not shipped.  The strict concreteness check at
    the final answer-resolution step (:func:`require_concrete`) remains in
    place and would surface any violation of that guarantee.
    """
    if name not in environment:
        return
    value = environment.resolve(environment[name])
    if isinstance(value, bool):
        bindings[name] = value


def resolved_child_qualifier_bindings(
    fragmentation: Fragmentation,
    plan: QueryPlan,
    fragment_id: str,
    environment: Environment,
) -> Dict[str, bool]:
    """Concrete ``qh:`` / ``qd:`` bindings for the sub-fragments of a fragment.

    This is the payload the coordinator ships back to a site before Stage 2
    of PaX3 (and before answer retrieval in PaX2): ``O(|Q|)`` booleans per
    fragment-tree edge.
    """
    bindings: Dict[str, bool] = {}
    for child_id in fragmentation.children(fragment_id):
        for item_id in plan.head_item_ids:
            _concrete_binding(environment, head_var_name(child_id, item_id), bindings)
        for item_id in plan.desc_item_ids:
            _concrete_binding(environment, desc_var_name(child_id, item_id), bindings)
    return bindings


def resolved_init_bindings(
    plan: QueryPlan,
    fragment_id: str,
    environment: Environment,
) -> Dict[str, bool]:
    """Concrete ``sv:`` bindings for one fragment's initialization vector."""
    bindings: Dict[str, bool] = {}
    for entry in range(plan.n_steps + 1):
        _concrete_binding(environment, selection_var_name(fragment_id, entry), bindings)
    return bindings
