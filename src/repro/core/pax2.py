"""Algorithm PaX2 (Section 4 of the paper).

PaX2 folds the qualifier stage and the selection stage of PaX3 into one
combined pre/post-order pass per fragment, so every participating site is
visited at most twice:

1. **Combined pass** — every site runs the pre/post-order traversal of
   :func:`repro.core.combined.evaluate_fragment_combined` over each of its
   fragments; the coordinator unifies qualifier vectors bottom-up and
   selection vectors top-down over the fragment tree.
2. **Answer retrieval** — sites holding candidates receive the resolved
   bindings (their own initialization variables plus the qualifier values of
   their sub-fragments), decide the candidates and ship the answers.

With XPath-annotations the combined pass is only executed over fragments
that can matter for the query (the pruner is conservative with respect to
both answers and qualifier scopes), and for qualifier-free queries the
initialization is concrete so the second visit disappears.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.booleans.env import Environment
from repro.booleans.formula import FormulaLike, formula_size
from repro.core.combined import FragmentCombinedOutput
from repro.core.kernel.dispatch import combined_pass, prewarm_fragments
from repro.core.common import (
    QueryInput,
    answer_subtree_nodes,
    build_network,
    ensure_plan,
    plan_units,
    stage_site_times,
    stage_timer,
)
from repro.core.pruning import relevant_fragments, stage1_init_vector
from repro.core.unify import (
    require_concrete,
    resolved_child_qualifier_bindings,
    resolved_init_bindings,
    unify_qualifier_vectors,
    unify_selection_vectors,
)
from repro.distributed.messages import MessageKind
from repro.distributed.network import Network
from repro.distributed.stats import RunStats, StageStats
from repro.fragments.fragment_tree import Fragmentation
from repro.xpath.plan import QueryPlan

__all__ = ["run_pax2"]


def _output_units(plan: QueryPlan, output: FragmentCombinedOutput) -> int:
    # formula_size reads the memoized size of the (hash-consed) entries, so
    # re-accounting the same residual vector in a later stage is O(1) per item.
    units = 0
    for item_id in plan.head_item_ids:
        units += formula_size(output.root_head[item_id])
    for item_id in plan.desc_item_ids:
        units += formula_size(output.root_desc[item_id])
    for vector in output.virtual_parent_vectors.values():
        units += sum(formula_size(entry) for entry in vector)
    return units


def run_pax2(
    fragmentation: Fragmentation,
    query: QueryInput,
    placement: Optional[Mapping[str, str]] = None,
    use_annotations: bool = False,
    network: Optional[Network] = None,
    engine: Optional[str] = None,
) -> RunStats:
    """Evaluate *query* over a fragmented tree with algorithm PaX2.

    ``engine`` selects the per-fragment pass implementation (``"kernel"``
    columnar arrays, ``"reference"`` object-tree traversal; ``None`` uses
    the process default — see :mod:`repro.core.kernel.dispatch`).
    """
    plan = ensure_plan(query)
    if network is None:
        network = build_network(fragmentation, placement)
    coordinator_id = network.coordinator_id
    root_fragment_id = fragmentation.root_fragment_id

    stats = RunStats(algorithm="PaX2", query=plan.source, use_annotations=use_annotations)

    if use_annotations:
        decision = relevant_fragments(fragmentation, plan)
        evaluated = [fid for fid in fragmentation.fragment_ids() if decision.keeps(fid)]
        stats.fragments_pruned = sorted(decision.pruned)
    else:
        evaluated = fragmentation.fragment_ids()
    stats.fragments_evaluated = list(evaluated)

    answers: set[int] = set()
    prewarm_fragments(fragmentation, evaluated, engine=engine)

    # ------------------------------------------------------------------ stage 1
    stage1 = StageStats(name="combined")
    stage1_sites = network.sites_holding(evaluated)
    outputs: Dict[str, FragmentCombinedOutput] = {}
    candidate_sites: Dict[str, List[str]] = {}

    for site_id in stage1_sites:
        site = network.sites[site_id]
        fragment_ids = [fid for fid in network.fragments_on(site_id) if fid in evaluated]
        network.send(
            coordinator_id, site_id, MessageKind.EXEC_REQUEST,
            units=plan_units(plan) * len(fragment_ids),
            description="stage 1: combined qualifier + selection pass",
        )
        site_answers: List[int] = []
        site_units = 0
        with site.visit("pax2:combined"):
            for fragment_id in fragment_ids:
                init_vector: Sequence[FormulaLike] = stage1_init_vector(
                    fragmentation, plan, fragment_id, use_annotations
                )
                output = combined_pass(
                    fragmentation,
                    fragment_id,
                    plan,
                    init_vector,
                    is_root_fragment=(fragment_id == root_fragment_id),
                    engine=engine,
                )
                outputs[fragment_id] = output
                site.add_operations(output.operations)
                site_answers.extend(output.answers)
                if output.candidates:
                    site.storage[fragment_id]["candidates"] = output.candidates
                    candidate_sites.setdefault(site_id, []).append(fragment_id)
                site_units += _output_units(plan, output)
        answers.update(site_answers)
        if site_units:
            network.send(
                site_id, coordinator_id, MessageKind.SELECTION_VECTORS, site_units,
                description="stage 1: root qualifier vectors and virtual-node vectors",
            )
        if site_answers:
            network.send(
                site_id, coordinator_id, MessageKind.ANSWERS, len(site_answers),
                description="stage 1: definite answers",
            )

    stage1.parallel_seconds, stage1.total_seconds = stage_site_times(
        network, stage1_sites, "pax2:combined"
    )
    stage1.sites_involved = len(stage1_sites)
    with stage_timer(stage1):
        environment = Environment()
        if plan.has_qualifiers:
            environment = unify_qualifier_vectors(
                fragmentation,
                plan,
                {fid: (out.root_head, out.root_desc) for fid, out in outputs.items()},
                environment,
            )
        environment = unify_selection_vectors(
            fragmentation,
            plan,
            {fid: out.virtual_parent_vectors for fid, out in outputs.items()},
            environment,
        )
    stats.stages.append(stage1)

    # ------------------------------------------------------------------ stage 2
    if candidate_sites:
        stage2 = StageStats(name="answers")
        for site_id, fragment_ids in sorted(candidate_sites.items()):
            site = network.sites[site_id]
            per_fragment_bindings: Dict[str, Dict[str, bool]] = {}
            total_units = 0
            for fragment_id in fragment_ids:
                bindings = resolved_init_bindings(plan, fragment_id, environment)
                if plan.has_qualifiers:
                    bindings.update(
                        resolved_child_qualifier_bindings(
                            fragmentation, plan, fragment_id, environment
                        )
                    )
                per_fragment_bindings[fragment_id] = bindings
                total_units += len(bindings)
            network.send(
                coordinator_id, site_id, MessageKind.RESOLVED_BINDINGS, total_units,
                description="stage 2: resolved initialization and qualifier values",
            )
            resolved_answers: List[int] = []
            with site.visit("pax2:answers"):
                for fragment_id in fragment_ids:
                    candidates = site.storage[fragment_id].get("candidates", {})
                    fragment_env = Environment(per_fragment_bindings[fragment_id])
                    for node_id, formula in candidates.items():
                        value = require_concrete(
                            fragment_env.resolve(formula),
                            f"candidate answer {node_id} in {fragment_id}",
                        )
                        if value:
                            resolved_answers.append(node_id)
            answers.update(resolved_answers)
            if resolved_answers:
                network.send(
                    site_id, coordinator_id, MessageKind.ANSWERS, len(resolved_answers),
                    description="stage 2: resolved candidate answers",
                )
        candidate_site_ids = sorted(candidate_sites)
        stage2.parallel_seconds, stage2.total_seconds = stage_site_times(
            network, candidate_site_ids, "pax2:answers"
        )
        stage2.sites_involved = len(candidate_site_ids)
        stats.stages.append(stage2)

    # ------------------------------------------------------------------ results
    stats.answer_ids = sorted(answers)
    stats.answer_nodes_shipped = answer_subtree_nodes(fragmentation.tree, stats.answer_ids)
    network.collect_stats(stats)
    return stats
