"""Algorithm PaX3 (Section 3 of the paper).

Three stages, each visiting a participating site at most once:

1. **Qualifier evaluation** — every site partially evaluates the qualifiers
   of the query over each of its fragments, bottom-up and in parallel; the
   coordinator unifies the resulting vectors over the fragment tree
   (``evalFT``).  Skipped entirely when the query has no qualifiers.
2. **Selection-path evaluation** — the coordinator ships the resolved
   qualifier values of each sub-fragment back to the owning site; every site
   partially evaluates the selection path top-down; definite answers are
   shipped immediately, undecided nodes become candidates kept at the site,
   and the vectors computed at virtual nodes return to the coordinator,
   which resolves the initialization variables top-down.
3. **Answer retrieval** — only sites holding candidates are visited again:
   they receive the resolved initialization values, decide their candidates
   and ship the remaining answers.

With XPath-annotations (``use_annotations=True``), fragments that can neither
contain answers nor fall inside a qualifier scope are excluded from stages 2
and 3, and — when the query has no qualifiers — the selection stack is
initialized with concrete values so stage 3 vanishes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.booleans.env import Environment
from repro.booleans.formula import FormulaLike, formula_size
from repro.core.common import (
    QueryInput,
    answer_subtree_nodes,
    build_network,
    ensure_plan,
    plan_units,
    stage_timer,
)
from repro.core.kernel.dispatch import prewarm_fragments, qualifier_pass, selection_pass
from repro.core.pruning import annotation_init_vector, relevant_fragments
from repro.core.qualifiers import FragmentQualifierOutput
from repro.core.selection import concrete_root_init_vector, variable_init_vector
from repro.core.unify import (
    require_concrete,
    resolved_child_qualifier_bindings,
    resolved_init_bindings,
    unify_qualifier_vectors,
    unify_selection_vectors,
)
from repro.distributed.messages import MessageKind
from repro.distributed.network import Network
from repro.distributed.stats import RunStats, StageStats
from repro.fragments.fragment_tree import Fragmentation
from repro.xpath.plan import QueryPlan

__all__ = ["run_pax3"]


def _root_vector_units(plan: QueryPlan, output: FragmentQualifierOutput) -> int:
    # formula_size reads the memoized size of the (hash-consed) entries, so
    # re-accounting the same residual vector in a later stage is O(1) per item.
    units = 0
    for item_id in plan.head_item_ids:
        units += formula_size(output.root_head[item_id])
    for item_id in plan.desc_item_ids:
        units += formula_size(output.root_desc[item_id])
    return units


def _virtual_vector_units(vectors: Mapping[str, Sequence[FormulaLike]]) -> int:
    return sum(formula_size(entry) for vector in vectors.values() for entry in vector)


def _stage_site_times(network: Network, site_ids: Sequence[str], stage_key: str) -> tuple[float, float]:
    times = [network.sites[site_id].stage_seconds.get(stage_key, 0.0) for site_id in site_ids]
    if not times:
        return 0.0, 0.0
    return max(times), sum(times)


def run_pax3(
    fragmentation: Fragmentation,
    query: QueryInput,
    placement: Optional[Mapping[str, str]] = None,
    use_annotations: bool = False,
    network: Optional[Network] = None,
    engine: Optional[str] = None,
) -> RunStats:
    """Evaluate *query* over a fragmented tree with algorithm PaX3.

    ``engine`` selects the per-fragment pass implementation (``"kernel"``
    columnar arrays, ``"reference"`` object-tree traversal; ``None`` uses
    the process default — see :mod:`repro.core.kernel.dispatch`).
    """
    plan = ensure_plan(query)
    if network is None:
        network = build_network(fragmentation, placement)
    coordinator_id = network.coordinator_id
    root_fragment_id = fragmentation.root_fragment_id

    stats = RunStats(algorithm="PaX3", query=plan.source, use_annotations=use_annotations)

    # Annotation-based pruning applies to the selection stages only; the
    # qualifier stage must see every fragment (a qualifier may look anywhere
    # below the node it is attached to).
    if use_annotations:
        decision = relevant_fragments(fragmentation, plan)
        selection_fragments = [
            fid for fid in fragmentation.fragment_ids() if decision.keeps(fid)
        ]
        stats.fragments_pruned = sorted(decision.pruned)
    else:
        selection_fragments = fragmentation.fragment_ids()
    stats.fragments_evaluated = list(selection_fragments)

    answers: set[int] = set()
    qual_env = Environment()
    prewarm_fragments(fragmentation, engine=engine)

    # ------------------------------------------------------------------ stage 1
    if plan.has_qualifiers:
        stage1 = StageStats(name="qualifiers")
        qual_outputs: Dict[str, FragmentQualifierOutput] = {}
        stage1_sites = network.sites_holding(fragmentation.fragment_ids())
        for site_id in stage1_sites:
            site = network.sites[site_id]
            fragment_ids = network.fragments_on(site_id)
            network.send(
                coordinator_id, site_id, MessageKind.EXEC_REQUEST,
                units=plan_units(plan) * len(fragment_ids),
                description="stage 1: evaluate qualifiers",
            )
            with site.visit("pax3:qualifiers"):
                for fragment_id in fragment_ids:
                    output = qualifier_pass(fragmentation, fragment_id, plan, engine=engine)
                    qual_outputs[fragment_id] = output
                    site.storage[fragment_id]["qual_values"] = output.qual_values
                    site.add_operations(output.operations)
            units = sum(_root_vector_units(plan, qual_outputs[fid]) for fid in fragment_ids)
            network.send(
                site_id, coordinator_id, MessageKind.QUALIFIER_VECTORS, units,
                description="stage 1: root qualifier vectors",
            )
        stage1.parallel_seconds, stage1.total_seconds = _stage_site_times(
            network, stage1_sites, "pax3:qualifiers"
        )
        stage1.sites_involved = len(stage1_sites)
        with stage_timer(stage1):
            qual_env = unify_qualifier_vectors(
                fragmentation,
                plan,
                {fid: (out.root_head, out.root_desc) for fid, out in qual_outputs.items()},
            )
        stats.stages.append(stage1)

    # ------------------------------------------------------------------ stage 2
    stage2 = StageStats(name="selection")
    stage2_sites = network.sites_holding(selection_fragments)
    virtual_vectors: Dict[str, Dict[str, List[FormulaLike]]] = {}
    candidate_sites: Dict[str, List[str]] = {}

    for site_id in stage2_sites:
        site = network.sites[site_id]
        fragment_ids = [fid for fid in network.fragments_on(site_id) if fid in selection_fragments]
        network.send(
            coordinator_id, site_id, MessageKind.EXEC_REQUEST,
            units=plan_units(plan) * len(fragment_ids),
            description="stage 2: evaluate selection path",
        )
        per_fragment_bindings: Dict[str, Dict[str, bool]] = {}
        if plan.has_qualifiers:
            for fragment_id in fragment_ids:
                bindings = resolved_child_qualifier_bindings(
                    fragmentation, plan, fragment_id, qual_env
                )
                per_fragment_bindings[fragment_id] = bindings
            total_binding_units = sum(len(b) for b in per_fragment_bindings.values())
            if total_binding_units:
                network.send(
                    coordinator_id, site_id, MessageKind.RESOLVED_BINDINGS, total_binding_units,
                    description="stage 2: resolved sub-fragment qualifier values",
                )

        site_answers: List[int] = []
        site_vector_units = 0
        with site.visit("pax3:selection"):
            for fragment_id in fragment_ids:
                provider = None
                if plan.has_qualifiers:
                    stored = site.storage[fragment_id].get("qual_values", {})
                    fragment_env = Environment(per_fragment_bindings.get(fragment_id, {}))

                    def provider(node_id, stored=stored, fragment_env=fragment_env):
                        values = stored.get(node_id, ())
                        return [fragment_env.resolve(value) for value in values]

                if fragment_id == root_fragment_id:
                    init_vector: Sequence[FormulaLike] = concrete_root_init_vector(plan)
                elif use_annotations and not plan.has_qualifiers:
                    init_vector = annotation_init_vector(fragmentation, plan, fragment_id)
                else:
                    init_vector = variable_init_vector(plan, fragment_id)

                output = selection_pass(
                    fragmentation,
                    fragment_id,
                    plan,
                    provider,
                    init_vector,
                    is_root_fragment=(fragment_id == root_fragment_id),
                    engine=engine,
                )
                site.add_operations(output.operations)
                site_answers.extend(output.answers)
                if output.candidates:
                    site.storage[fragment_id]["candidates"] = output.candidates
                    candidate_sites.setdefault(site_id, []).append(fragment_id)
                virtual_vectors[fragment_id] = output.virtual_parent_vectors
                site_vector_units += _virtual_vector_units(output.virtual_parent_vectors)

        answers.update(site_answers)
        if site_vector_units:
            network.send(
                site_id, coordinator_id, MessageKind.SELECTION_VECTORS, site_vector_units,
                description="stage 2: vectors at virtual nodes",
            )
        if site_answers:
            network.send(
                site_id, coordinator_id, MessageKind.ANSWERS, len(site_answers),
                description="stage 2: definite answers",
            )

    stage2.parallel_seconds, stage2.total_seconds = _stage_site_times(
        network, stage2_sites, "pax3:selection"
    )
    stage2.sites_involved = len(stage2_sites)
    with stage_timer(stage2):
        selection_env = unify_selection_vectors(fragmentation, plan, virtual_vectors, qual_env)
    stats.stages.append(stage2)

    # ------------------------------------------------------------------ stage 3
    if candidate_sites:
        stage3 = StageStats(name="answers")
        for site_id, fragment_ids in sorted(candidate_sites.items()):
            site = network.sites[site_id]
            all_bindings: Dict[str, Dict[str, bool]] = {}
            total_units = 0
            for fragment_id in fragment_ids:
                bindings = resolved_init_bindings(plan, fragment_id, selection_env)
                all_bindings[fragment_id] = bindings
                total_units += len(bindings)
            network.send(
                coordinator_id, site_id, MessageKind.RESOLVED_BINDINGS, total_units,
                description="stage 3: resolved initialization vectors",
            )
            resolved_answers: List[int] = []
            with site.visit("pax3:answers"):
                for fragment_id in fragment_ids:
                    candidates = site.storage[fragment_id].get("candidates", {})
                    fragment_env = Environment(all_bindings[fragment_id])
                    for node_id, formula in candidates.items():
                        value = require_concrete(
                            fragment_env.resolve(formula),
                            f"candidate answer {node_id} in {fragment_id}",
                        )
                        if value:
                            resolved_answers.append(node_id)
            answers.update(resolved_answers)
            if resolved_answers:
                network.send(
                    site_id, coordinator_id, MessageKind.ANSWERS, len(resolved_answers),
                    description="stage 3: resolved candidate answers",
                )
        candidate_site_ids = sorted(candidate_sites)
        stage3.parallel_seconds, stage3.total_seconds = _stage_site_times(
            network, candidate_site_ids, "pax3:answers"
        )
        stage3.sites_involved = len(candidate_site_ids)
        stats.stages.append(stage3)

    # ------------------------------------------------------------------ results
    stats.answer_ids = sorted(answers)
    stats.answer_nodes_shipped = answer_subtree_nodes(fragmentation.tree, stats.answer_ids)
    network.collect_stats(stats)
    return stats
