"""Stage 2 of PaX3: partial evaluation of the selection path over one fragment.

A single top-down pass over the fragment computes the selection prefix
vector of every element node (Procedure ``topDown`` of the paper).  A
non-root fragment does not know the vector of its root's parent, so the
traversal stack is initialized with fresh ``sv:`` variables (or, when
XPath-annotations are available and the query has no qualifiers, with the
concrete vector derived from the annotation path).

The pass classifies nodes into definite answers (final entry ``True``),
candidate answers (final entry is a residual formula) and non-answers, and
records — for every virtual node — the vector of its parent, which is what
the coordinator needs to resolve the ``sv:`` variables of the corresponding
sub-fragment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.booleans.formula import FormulaLike, is_false, is_true
from repro.core.variables import selection_var
from repro.fragments.fragment import Fragment
from repro.xmltree.nodes import NodeId, XMLNode
from repro.xpath.plan import QueryPlan
from repro.xpath.runtime import root_context_init_vector, selection_vector

__all__ = [
    "FragmentSelectionOutput",
    "evaluate_fragment_selection",
    "variable_init_vector",
]

#: Callable giving, for an element node, the values of its SELFQUAL qualifiers.
QualProvider = Callable[[XMLNode], Sequence[FormulaLike]]

_NO_QUALS: Tuple[FormulaLike, ...] = tuple()


@dataclass
class FragmentSelectionOutput:
    """Result of the selection pass over one fragment."""

    fragment_id: str
    #: node ids whose final prefix entry is concretely true
    answers: List[NodeId] = field(default_factory=list)
    #: node id -> residual formula, for nodes whose membership is undecided
    candidates: Dict[NodeId, FormulaLike] = field(default_factory=dict)
    #: sub-fragment id -> selection vector of the parent of that sub-fragment's root
    virtual_parent_vectors: Dict[str, List[FormulaLike]] = field(default_factory=dict)
    #: coarse operation count
    operations: int = 0


def variable_init_vector(plan: QueryPlan, fragment_id: str) -> List[FormulaLike]:
    """The all-variables initialization vector of a non-root fragment."""
    return [selection_var(fragment_id, entry) for entry in range(plan.n_steps + 1)]


def concrete_root_init_vector(plan: QueryPlan) -> List[FormulaLike]:
    """The initialization vector of the root fragment.

    For absolute plans this is the document node's prefix vector; for
    relative plans everything above the root element is false (the root
    element itself is the context).
    """
    return root_context_init_vector(plan)


def evaluate_fragment_selection(
    fragment: Fragment,
    plan: QueryPlan,
    qual_provider: Optional[QualProvider],
    init_vector: Sequence[FormulaLike],
    is_root_fragment: bool,
) -> FragmentSelectionOutput:
    """Top-down partial evaluation of the selection path over *fragment*.

    ``qual_provider`` supplies the (already resolved) qualifier values per
    node; pass ``None`` for qualifier-free plans.  ``init_vector`` is the
    vector of the fragment root's parent — concrete for the root fragment or
    under XPath-annotations, variables otherwise.
    """
    output = FragmentSelectionOutput(fragment_id=fragment.fragment_id)
    n_steps = plan.n_steps
    elements_processed = 0

    stack: list[tuple[XMLNode, Sequence[FormulaLike]]] = [(fragment.root, list(init_vector))]
    while stack:
        node, parent_vector = stack.pop()
        elements_processed += 1
        if qual_provider is not None:
            qual_values = qual_provider(node)
        else:
            qual_values = _NO_QUALS
        vector = selection_vector(
            plan,
            node,
            parent_vector,
            is_context_root=(
                is_root_fragment and not plan.absolute and node is fragment.root
            ),
            qual_values=qual_values,
        )
        final = vector[n_steps]
        if is_true(final):
            output.answers.append(node.node_id)
        elif not is_false(final):
            output.candidates[node.node_id] = final

        for virtual in fragment.virtual_children_of(node):
            output.virtual_parent_vectors[virtual.fragment_id] = list(vector)

        for child in reversed(fragment.real_element_children(node)):
            stack.append((child, vector))

    output.operations = elements_processed * (n_steps + 1)
    return output
