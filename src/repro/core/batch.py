"""Algorithm PaX2 over a *wave* of queries: shared site rounds, fused scans.

:func:`run_pax2` evaluates one query; under many in-flight queries every
site re-walks the same fragments once per query.  :func:`run_pax2_batch`
evaluates a whole list of queries in shared site rounds instead: stage 1
visits each participating site once for the wave, and inside that visit each
fragment is scanned **once** by the fused batch kernel
(:func:`repro.core.kernel.batch.evaluate_fragment_combined_batch`), with
exact-duplicate plans (same normalized fingerprint) deduplicated to a single
kernel slot before fusion.

Accounting stays strictly per query: every query gets its own simulated
:class:`~repro.distributed.network.Network`, records exactly the messages,
units, visits and operation counts its solo :func:`run_pax2` run would
record, and returns its own :class:`~repro.distributed.stats.RunStats` — the
differential tests pin the batch path, the single-query kernel and the
object-tree reference to identical answers *and* identical traffic
accounting.  What the wave shares is the physical work: one walk of each
fragment's flat arrays per round, regardless of how many queries are in
flight.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Dict, List, Mapping, Optional, Sequence

from repro.booleans.env import Environment
from repro.core.combined import FragmentCombinedOutput
from repro.core.common import (
    QueryInput,
    answer_subtree_nodes,
    ensure_plan,
    plan_units,
    stage_site_times,
    stage_timer,
)
from repro.core.kernel.dispatch import combined_pass_batch, prewarm_fragments
from repro.core.pax2 import _output_units
from repro.core.pruning import relevant_fragments, stage1_init_vector
from repro.core.unify import (
    require_concrete,
    resolved_child_qualifier_bindings,
    resolved_init_bindings,
    unify_qualifier_vectors,
    unify_selection_vectors,
)
from repro.distributed.messages import MessageKind
from repro.distributed.network import Network
from repro.distributed.placement import one_site_per_fragment
from repro.distributed.stats import RunStats, StageStats
from repro.fragments.fragment_tree import Fragmentation
from repro.xpath.plan import QueryPlan

__all__ = ["run_pax2_batch", "dedup_slots"]


def dedup_slots(plans: Sequence[QueryPlan]) -> tuple[List[int], List[QueryPlan]]:
    """Collapse a wave to its distinct plans.

    Returns ``(slot_of, slot_plans)``: ``slot_of[i]`` is the kernel slot of
    query ``i``, and ``slot_plans`` the representative plan per slot, in
    first-appearance order.  Two queries share a slot exactly when their
    normalized fingerprints agree, i.e. when they are the same query no
    matter how they were spelled.
    """
    slot_of: List[int] = []
    slot_plans: List[QueryPlan] = []
    by_fingerprint: Dict[str, int] = {}
    for plan in plans:
        key = plan.fingerprint
        slot = by_fingerprint.get(key)
        if slot is None:
            slot = len(slot_plans)
            by_fingerprint[key] = slot
            slot_plans.append(plan)
        slot_of.append(slot)
    return slot_of, slot_plans


def run_pax2_batch(
    fragmentation: Fragmentation,
    queries: Sequence[QueryInput],
    placement: Optional[Mapping[str, str]] = None,
    use_annotations: bool = False,
    engine: Optional[str] = None,
) -> List[RunStats]:
    """Evaluate a wave of queries with PaX2, one fused scan per fragment.

    Returns one :class:`RunStats` per query, index-aligned with *queries*;
    each is identical (answers and traffic accounting) to what
    :func:`repro.core.pax2.run_pax2` would return for that query alone.
    ``engine`` selects the per-fragment pass implementation; the fused scan
    requires the kernel engine, the reference engine evaluates the wave
    plan-by-plan (see :func:`repro.core.kernel.dispatch.combined_pass_batch`).
    """
    plans = [ensure_plan(query) for query in queries]
    n_queries = len(plans)
    if n_queries == 0:
        return []
    slot_of, slot_plans = dedup_slots(plans)

    if placement is None:
        placement = one_site_per_fragment(fragmentation)
    networks = [Network(fragmentation, placement) for _ in plans]
    coordinator_id = networks[0].coordinator_id
    root_fragment_id = fragmentation.root_fragment_id

    stats_list = [
        RunStats(algorithm="PaX2", query=plan.source, use_annotations=use_annotations)
        for plan in plans
    ]

    # ---------------------------------------------------------------- pruning
    slot_evaluated: List[List[str]] = []
    slot_pruned: List[List[str]] = []
    for plan in slot_plans:
        if use_annotations:
            decision = relevant_fragments(fragmentation, plan)
            slot_evaluated.append(
                [fid for fid in fragmentation.fragment_ids() if decision.keeps(fid)]
            )
            slot_pruned.append(sorted(decision.pruned))
        else:
            slot_evaluated.append(fragmentation.fragment_ids())
            slot_pruned.append([])
    slot_eval_set = [set(evaluated) for evaluated in slot_evaluated]
    for index in range(n_queries):
        slot = slot_of[index]
        if use_annotations:
            stats_list[index].fragments_pruned = list(slot_pruned[slot])
        stats_list[index].fragments_evaluated = list(slot_evaluated[slot])

    answers: List[set] = [set() for _ in plans]
    prewarm_fragments(
        fragmentation,
        sorted({fid for evaluated in slot_evaluated for fid in evaluated}),
        engine=engine,
    )

    # ---------------------------------------------------------------- stage 1
    # One wave round per site: every participating query records its own
    # EXEC_REQUEST / visit / result messages, but the per-fragment scans run
    # once per distinct plan slot.
    per_query_sites = [
        networks[index].sites_holding(slot_evaluated[slot_of[index]])
        for index in range(n_queries)
    ]
    per_query_site_sets = [set(sites) for sites in per_query_sites]
    wave_sites = sorted({site_id for sites in per_query_sites for site_id in sites})
    slot_outputs: List[Dict[str, FragmentCombinedOutput]] = [{} for _ in slot_plans]
    candidate_sites: List[Dict[str, List[str]]] = [{} for _ in plans]

    for site_id in wave_sites:
        participating = [
            index for index in range(n_queries) if site_id in per_query_site_sets[index]
        ]
        fragment_lists: Dict[int, List[str]] = {}
        for index in participating:
            slot = slot_of[index]
            fragment_ids = [
                fid
                for fid in networks[index].fragments_on(site_id)
                if fid in slot_eval_set[slot]
            ]
            fragment_lists[index] = fragment_ids
            networks[index].send(
                coordinator_id, site_id, MessageKind.EXEC_REQUEST,
                units=plan_units(plans[index]) * len(fragment_ids),
                description="stage 1: combined qualifier + selection pass",
            )
        site_slots: List[int] = []
        for index in participating:
            slot = slot_of[index]
            if slot not in site_slots:
                site_slots.append(slot)
        with ExitStack() as stack:
            for index in participating:
                stack.enter_context(networks[index].sites[site_id].visit("pax2:combined"))
            for fragment_id in networks[participating[0]].fragments_on(site_id):
                wave_slots = [
                    slot for slot in site_slots if fragment_id in slot_eval_set[slot]
                ]
                if not wave_slots:
                    continue
                outputs = combined_pass_batch(
                    fragmentation,
                    fragment_id,
                    [slot_plans[slot] for slot in wave_slots],
                    [
                        stage1_init_vector(
                            fragmentation, slot_plans[slot], fragment_id,
                            use_annotations,
                        )
                        for slot in wave_slots
                    ],
                    is_root_fragment=(fragment_id == root_fragment_id),
                    engine=engine,
                )
                for slot, output in zip(wave_slots, outputs):
                    slot_outputs[slot][fragment_id] = output
            for index in participating:
                site = networks[index].sites[site_id]
                outputs = slot_outputs[slot_of[index]]
                for fragment_id in fragment_lists[index]:
                    output = outputs[fragment_id]
                    site.add_operations(output.operations)
                    if output.candidates:
                        site.storage[fragment_id]["candidates"] = output.candidates
                        candidate_sites[index].setdefault(site_id, []).append(fragment_id)
        for index in participating:
            outputs = slot_outputs[slot_of[index]]
            site_answers: List[int] = []
            site_units = 0
            for fragment_id in fragment_lists[index]:
                output = outputs[fragment_id]
                site_answers.extend(output.answers)
                site_units += _output_units(plans[index], output)
            answers[index].update(site_answers)
            if site_units:
                networks[index].send(
                    site_id, coordinator_id, MessageKind.SELECTION_VECTORS, site_units,
                    description="stage 1: root qualifier vectors and virtual-node vectors",
                )
            if site_answers:
                networks[index].send(
                    site_id, coordinator_id, MessageKind.ANSWERS, len(site_answers),
                    description="stage 1: definite answers",
                )

    # ------------------------------------------- coordinator unification
    environments: List[Environment] = []
    for index in range(n_queries):
        plan = plans[index]
        stage1 = StageStats(name="combined")
        stage1.parallel_seconds, stage1.total_seconds = stage_site_times(
            networks[index], per_query_sites[index], "pax2:combined"
        )
        stage1.sites_involved = len(per_query_sites[index])
        outputs = slot_outputs[slot_of[index]]
        with stage_timer(stage1):
            environment = Environment()
            if plan.has_qualifiers:
                environment = unify_qualifier_vectors(
                    fragmentation,
                    plan,
                    {fid: (out.root_head, out.root_desc) for fid, out in outputs.items()},
                    environment,
                )
            environment = unify_selection_vectors(
                fragmentation,
                plan,
                {fid: out.virtual_parent_vectors for fid, out in outputs.items()},
                environment,
            )
        environments.append(environment)
        stats_list[index].stages.append(stage1)

    # ---------------------------------------------------------------- stage 2
    # Candidate resolution is coordinator-bound bookkeeping, so it stays per
    # query (the fused work — the scans — is behind us).
    for index in range(n_queries):
        if not candidate_sites[index]:
            continue
        plan = plans[index]
        network = networks[index]
        environment = environments[index]
        stage2 = StageStats(name="answers")
        for site_id, fragment_ids in sorted(candidate_sites[index].items()):
            site = network.sites[site_id]
            per_fragment_bindings: Dict[str, Dict[str, bool]] = {}
            total_units = 0
            for fragment_id in fragment_ids:
                bindings = resolved_init_bindings(plan, fragment_id, environment)
                if plan.has_qualifiers:
                    bindings.update(
                        resolved_child_qualifier_bindings(
                            fragmentation, plan, fragment_id, environment
                        )
                    )
                per_fragment_bindings[fragment_id] = bindings
                total_units += len(bindings)
            network.send(
                coordinator_id, site_id, MessageKind.RESOLVED_BINDINGS, total_units,
                description="stage 2: resolved initialization and qualifier values",
            )
            resolved_answers: List[int] = []
            with site.visit("pax2:answers"):
                for fragment_id in fragment_ids:
                    candidates = site.storage[fragment_id].get("candidates", {})
                    fragment_env = Environment(per_fragment_bindings[fragment_id])
                    for node_id, formula in candidates.items():
                        value = require_concrete(
                            fragment_env.resolve(formula),
                            f"candidate answer {node_id} in {fragment_id}",
                        )
                        if value:
                            resolved_answers.append(node_id)
            answers[index].update(resolved_answers)
            if resolved_answers:
                network.send(
                    site_id, coordinator_id, MessageKind.ANSWERS, len(resolved_answers),
                    description="stage 2: resolved candidate answers",
                )
        candidate_site_ids = sorted(candidate_sites[index])
        stage2.parallel_seconds, stage2.total_seconds = stage_site_times(
            network, candidate_site_ids, "pax2:answers"
        )
        stage2.sites_involved = len(candidate_site_ids)
        stats_list[index].stages.append(stage2)

    # ---------------------------------------------------------------- results
    for index in range(n_queries):
        stats = stats_list[index]
        stats.answer_ids = sorted(answers[index])
        stats.answer_nodes_shipped = answer_subtree_nodes(
            fragmentation.tree, stats.answer_ids
        )
        networks[index].collect_stats(stats)
    return stats_list
