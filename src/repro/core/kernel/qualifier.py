"""Columnar rewrite of the qualifier pass (Stage 1 of PaX3 / ParBoX).

Semantically identical to
:func:`repro.core.qualifiers.evaluate_fragment_qualifiers`, but the
traversal is a single reverse walk over the fragment's flat pre-order
arrays: reverse pre-order visits every node after all of its descendants,
so the bottom-up recurrence needs no frame stack at all.  Per element the
pass folds the already-computed child HEAD/DESC rows (document order,
virtual children first — the same fold order as the reference, so residual
formulas come out structurally identical) and interprets the precompiled
``item_prog`` instead of re-reading the plan's dataclasses.

All-false rows are shared tuples instead of fresh lists, so leaf-heavy
fragments allocate almost nothing per node.
"""

from __future__ import annotations

from typing import List, Optional

from repro.booleans.formula import FormulaLike, conj, disj
from repro.core.kernel.tables import (
    ITEM_CHILD,
    ITEM_DESC,
    ITEM_EMPTY_TEXT,
    ITEM_EMPTY_TRUE,
    ITEM_EMPTY_VAL,
    ITEM_SELFQUAL,
    plan_tables,
)
from repro.core.qualifiers import FragmentQualifierOutput
from repro.core.variables import desc_var, head_var
from repro.fragments.fragment import Fragment
from repro.xmltree.flat import KIND_ELEMENT, FlatFragment
from repro.xpath.plan import QueryPlan, evaluate_qual_expr

__all__ = ["evaluate_fragment_qualifiers_flat"]


def evaluate_fragment_qualifiers_flat(
    fragment: Fragment, flat: FlatFragment, plan: QueryPlan
) -> FragmentQualifierOutput:
    """Bottom-up qualifier pass over the columnar encoding of *fragment*."""
    output = FragmentQualifierOutput(fragment_id=fragment.fragment_id)
    n_items = plan.n_items
    if not plan.has_qualifiers:
        output.root_head = [False] * n_items
        output.root_desc = [False] * n_items
        return output

    tables = plan_tables(flat, plan)
    item_prog = tables.item_prog
    sel_quals = tables.sel_quals
    head_item_ids = tables.head_item_ids
    desc_item_ids = tables.desc_item_ids
    head_rest = tables.head_rest
    head_by_tag = tables.head_by_tag
    false_row = tables.false_items

    n = flat.n
    kind = flat.kind
    tag_ids = flat.tag_id
    node_ids = flat.node_ids
    text_norm = flat.text_norm
    numeric = flat.numeric
    virtual_at = flat.virtual_at

    #: per-element HEAD/DESC rows, freed once folded into the parent
    head_at: List[Optional[object]] = [None] * n
    desc_at: List[Optional[object]] = [None] * n
    qual_values = output.qual_values

    for index in range(n - 1, -1, -1):
        if kind[index] != KIND_ELEMENT:
            continue

        # -- aggregate the children's contributions (virtuals first, then
        #    real element children in document order, as the reference does)
        agg_head: Optional[List[FormulaLike]] = None
        agg_desc: Optional[List[FormulaLike]] = None
        virtuals = virtual_at.get(index)
        if virtuals is not None:
            agg_head = [False] * n_items
            agg_desc = [False] * n_items
            for child_fragment_id in virtuals:
                for item_id in head_item_ids:
                    agg_head[item_id] = disj(
                        agg_head[item_id], head_var(child_fragment_id, item_id)
                    )
                for item_id in desc_item_ids:
                    agg_desc[item_id] = disj(
                        agg_desc[item_id], desc_var(child_fragment_id, item_id)
                    )
        for child in flat.element_children(index):
            child_head = head_at[child]
            child_desc = desc_at[child]
            head_at[child] = None
            desc_at[child] = None
            if child_head is not false_row:
                if agg_head is None:
                    agg_head = [False] * n_items
                    agg_desc = [False] * n_items
                for item_id in head_item_ids:
                    value = child_head[item_id]
                    if value is not False:
                        agg_head[item_id] = disj(agg_head[item_id], value)
            if child_desc is not false_row:
                if agg_head is None:
                    agg_head = [False] * n_items
                    agg_desc = [False] * n_items
                for item_id in desc_item_ids:
                    value = child_desc[item_id]
                    if value is not False:
                        agg_desc[item_id] = disj(agg_desc[item_id], value)
        agg_h = false_row if agg_head is None else agg_head
        agg_d = false_row if agg_desc is None else agg_desc

        # -- EX vector via the precompiled item program
        ex: List[FormulaLike] = [False] * n_items
        for instr in item_prog:
            code = instr[0]
            if code == ITEM_CHILD:
                ex[instr[1]] = agg_h[instr[1]]
            elif code == ITEM_DESC:
                rest = instr[2]
                ex[instr[1]] = disj(ex[rest], agg_d[rest])
            elif code == ITEM_EMPTY_TEXT:
                ex[instr[1]] = text_norm[index] == instr[2]
            elif code == ITEM_EMPTY_TRUE:
                ex[instr[1]] = True
            elif code == ITEM_EMPTY_VAL:
                value = numeric[index]
                ex[instr[1]] = False if value is None else instr[2](value, instr[3])
            else:  # ITEM_SELFQUAL
                ex[instr[1]] = conj(evaluate_qual_expr(instr[2], ex), ex[instr[3]])

        qual_values[node_ids[index]] = tuple(
            evaluate_qual_expr(qual, ex) for qual in sel_quals
        )

        # -- HEAD/DESC rows handed to the parent (shared tuple when all-false)
        head_row: object = false_row
        matching = head_by_tag[tag_ids[index]]
        if matching:
            row: Optional[List[FormulaLike]] = None
            for item_id in matching:
                value = ex[head_rest[item_id]]
                if value is not False:
                    if row is None:
                        row = [False] * n_items
                    row[item_id] = value
            if row is not None:
                head_row = row
        desc_row: object = false_row
        if desc_item_ids:
            row = None
            for item_id in desc_item_ids:
                value = disj(ex[item_id], agg_d[item_id])
                if value is not False:
                    if row is None:
                        row = [False] * n_items
                    row[item_id] = value
            if row is not None:
                desc_row = row
        head_at[index] = head_row
        desc_at[index] = desc_row

    root_head = head_at[0]
    root_desc = desc_at[0]
    output.root_head = list(root_head) if type(root_head) is tuple else root_head
    output.root_desc = list(root_desc) if type(root_desc) is tuple else root_desc
    output.operations = flat.n_elements * max(1, n_items)
    output.root_vector_units = len(head_item_ids) + len(desc_item_ids)
    return output
