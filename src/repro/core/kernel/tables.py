"""Precompiled dispatch tables for the columnar per-fragment kernels.

The object-tree passes re-interpret the :class:`~repro.xpath.plan.QueryPlan`
at every node: each qualifier item re-reads its dataclass attributes, each
CHILD step re-runs ``matches_tag`` against the node's tag string, and each
terminal ``text()``/``val()`` test re-normalizes the node's text.  The
kernels instead compile the plan once per (plan, fragment tag table) pair:

* ``item_prog`` / ``sel_prog`` — the qualifier items and selection steps
  flattened to tuples of ints and payloads, so the inner loop dispatches on
  a small integer instead of string kinds and attribute lookups;
* ``head_by_tag[tag_id]`` — for every tag of the fragment, the qualifier
  item ids whose CHILD step can match that tag (wildcards included), so the
  HEAD loop touches only items that can match the current element;
* ``sel_child_ok[tag_id]`` — per selection position, whether a CHILD step at
  that position matches the tag, replacing per-node tag comparisons with a
  precomputed boolean lookup.

Tables are cached on the :class:`~repro.xmltree.flat.FlatFragment`, keyed by
the plan's *normalized fingerprint* (:attr:`QueryPlan.fingerprint`):
compilation is deterministic from the normalized path, so trivially
different spellings of the same query (``//a/./b`` vs ``//a/b``) share one
set of compiled tables.  The same fingerprint is the dedup key the batch
kernels use to collapse duplicate queries to a single slot.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.xmltree.flat import FlatFragment
from repro.xpath.plan import CHILD, DESC, EMPTY, SELFQUAL, QueryPlan
from repro.xpath.runtime import _NUMERIC_OPS

__all__ = [
    "PlanTables",
    "plan_tables",
    "ITEM_EMPTY_TRUE",
    "ITEM_EMPTY_TEXT",
    "ITEM_EMPTY_VAL",
    "ITEM_CHILD",
    "ITEM_DESC",
    "ITEM_SELFQUAL",
    "SEL_CHILD",
    "SEL_DESC",
    "SEL_SELFQUAL",
]

# Qualifier-item opcodes (``item_prog`` rows).
ITEM_EMPTY_TRUE = 0   # (code, item_id)                EX = True
ITEM_EMPTY_TEXT = 1   # (code, item_id, value)         EX = text_norm == value
ITEM_EMPTY_VAL = 2    # (code, item_id, op, number)    EX = op(numeric, number)
ITEM_CHILD = 3        # (code, item_id)                EX = agg_head[item_id]
ITEM_DESC = 4         # (code, item_id, rest)          EX = ex[rest] | agg_desc[rest]
ITEM_SELFQUAL = 5     # (code, item_id, qual, rest)    EX = eval(qual) & ex[rest]

# Selection-step opcodes (``sel_prog`` rows; position is 1-based).
SEL_CHILD = 0         # (code, position)               gate on sel_child_ok
SEL_DESC = 1          # (code, position)
SEL_SELFQUAL = 2      # (code, position, qual_index)


class PlanTables:
    """One plan compiled against one fragment's tag table."""

    __slots__ = (
        "item_prog",
        "sel_prog",
        "sel_quals",
        "head_item_ids",
        "desc_item_ids",
        "head_rest",
        "false_items",
        "head_by_tag",
        "sel_child_ok",
    )

    def __init__(self, flat: FlatFragment, plan: QueryPlan):
        items = plan.items
        prog: List[tuple] = []
        for item in items:
            if item.kind == EMPTY:
                test = item.test
                if test is None:
                    prog.append((ITEM_EMPTY_TRUE, item.item_id))
                elif test[0] == "text":
                    prog.append((ITEM_EMPTY_TEXT, item.item_id, test[2]))
                else:  # "val"
                    prog.append(
                        (ITEM_EMPTY_VAL, item.item_id, _NUMERIC_OPS[test[1]], test[2])
                    )
            elif item.kind == CHILD:
                prog.append((ITEM_CHILD, item.item_id))
            elif item.kind == DESC:
                prog.append((ITEM_DESC, item.item_id, item.rest))
            elif item.kind == SELFQUAL:
                prog.append((ITEM_SELFQUAL, item.item_id, item.qual, item.rest))
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown item kind {item.kind!r}")
        self.item_prog: Tuple[tuple, ...] = tuple(prog)

        sel_prog: List[tuple] = []
        sel_quals: List[object] = []
        for position, step in enumerate(plan.selection, start=1):
            if step.kind == CHILD:
                sel_prog.append((SEL_CHILD, position))
            elif step.kind == DESC:
                sel_prog.append((SEL_DESC, position))
            elif step.kind == SELFQUAL:
                sel_prog.append((SEL_SELFQUAL, position, len(sel_quals)))
                sel_quals.append(step.qual)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown selection step kind {step.kind!r}")
        self.sel_prog: Tuple[tuple, ...] = tuple(sel_prog)
        self.sel_quals: Tuple[object, ...] = tuple(sel_quals)

        self.head_item_ids: Tuple[int, ...] = tuple(plan.head_item_ids)
        self.desc_item_ids: Tuple[int, ...] = tuple(plan.desc_item_ids)
        #: item id -> its ``rest`` id (HEAD takes EX of the remaining suffix)
        self.head_rest = {item_id: items[item_id].rest for item_id in self.head_item_ids}
        #: shared all-false qualifier row (read-only: a tuple cannot be mutated)
        self.false_items: Tuple[bool, ...] = (False,) * plan.n_items

        tags = flat.tags
        self.head_by_tag: List[Tuple[int, ...]] = [
            tuple(
                item_id
                for item_id in self.head_item_ids
                if items[item_id].tag is None or items[item_id].tag == tag
            )
            for tag in tags
        ]
        n_steps = plan.n_steps
        sel_child_ok: List[Tuple[bool, ...]] = []
        for tag in tags:
            ok = [False] * (n_steps + 1)
            for position, step in enumerate(plan.selection, start=1):
                if step.kind == CHILD:
                    ok[position] = step.tag is None or step.tag == tag
            sel_child_ok.append(tuple(ok))
        self.sel_child_ok = sel_child_ok


#: per-fragment cap on cached PlanTables; the service can see an unbounded
#: stream of distinct queries, so the cache must not grow with it
_MAX_TABLES_PER_FRAGMENT = 256


def plan_tables(flat: FlatFragment, plan: QueryPlan) -> PlanTables:
    """The (cached, bounded) dispatch tables of *plan* over *flat*'s tag table."""
    key = plan.fingerprint
    cache = flat._tables
    tables = cache.get(key)
    if tables is None:
        tables = PlanTables(flat, plan)
        while len(cache) >= _MAX_TABLES_PER_FRAGMENT:
            cache.pop(next(iter(cache)))  # FIFO: oldest query's tables go first
        cache[key] = tables
    return tables
