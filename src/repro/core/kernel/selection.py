"""Columnar rewrite of the selection pass (Stage 2 of PaX3).

Semantically identical to
:func:`repro.core.selection.evaluate_fragment_selection`, but the top-down
recurrence runs as one forward walk over the flat pre-order arrays (a
node's parent always precedes it in pre-order, so ``vectors[parent[i]]`` is
ready when ``i`` is reached).  Two columnar-only optimizations, both
output-preserving:

* per-tag step gates: whether a CHILD step can match is a precomputed
  boolean lookup (``sel_child_ok``) instead of a per-node tag comparison;
* dead-subtree skip: once a node's prefix vector is concretely all-false,
  every descendant's vector is all-false too (nothing below can re-anchor
  the path), so the walk jumps ``subtree_size`` ahead, charging the skipped
  elements to the operation count and emitting the same all-false vectors
  at any virtual nodes inside the skipped range.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.booleans.formula import FormulaLike, conj, is_false, is_true
from repro.core.kernel.tables import SEL_CHILD, SEL_DESC, plan_tables
from repro.core.selection import FragmentSelectionOutput
from repro.fragments.fragment import Fragment
from repro.xmltree.flat import KIND_ELEMENT, FlatFragment
from repro.xmltree.nodes import NodeId
from repro.xpath.plan import QueryPlan

__all__ = ["evaluate_fragment_selection_flat"]

#: Supplies the SELFQUAL qualifier values of an element, by global node id.
QualProviderById = Callable[[NodeId], Sequence[FormulaLike]]


def evaluate_fragment_selection_flat(
    fragment: Fragment,
    flat: FlatFragment,
    plan: QueryPlan,
    qual_provider: Optional[QualProviderById],
    init_vector: Sequence[FormulaLike],
    is_root_fragment: bool,
) -> FragmentSelectionOutput:
    """Top-down selection pass over the columnar encoding of *fragment*."""
    output = FragmentSelectionOutput(fragment_id=fragment.fragment_id)
    tables = plan_tables(flat, plan)
    sel_prog = tables.sel_prog
    sel_child_ok = tables.sel_child_ok

    n = flat.n
    n_steps = plan.n_steps
    vec_len = n_steps + 1
    kind = flat.kind
    tag_ids = flat.tag_id
    parent = flat.parent
    subtree_size = flat.subtree_size
    node_ids = flat.node_ids
    virtual_at = flat.virtual_at
    has_virtuals = bool(virtual_at)

    anchor_at_root = is_root_fragment and not plan.absolute
    answers = output.answers
    candidates = output.candidates
    virtual_parent_vectors = output.virtual_parent_vectors

    vectors: List[Optional[List[FormulaLike]]] = [None] * n
    init_list = list(init_vector)
    elements_processed = 0
    no_quals: Sequence[FormulaLike] = ()

    index = 0
    while index < n:
        if kind[index] != KIND_ELEMENT:
            index += 1
            continue
        elements_processed += 1
        parent_index = parent[index]
        parent_vector = init_list if parent_index < 0 else vectors[parent_index]
        if qual_provider is not None:
            qual_values = qual_provider(node_ids[index])
        else:
            qual_values = no_quals

        vector: List[FormulaLike] = [False] * vec_len
        is_ctx = anchor_at_root and parent_index < 0
        vector[0] = is_ctx
        all_false = not is_ctx
        ok = sel_child_ok[tag_ids[index]]
        qual_index = 0
        for instr in sel_prog:
            code = instr[0]
            position = instr[1]
            if code == SEL_CHILD:
                previous = parent_vector[position - 1]
                if previous is not False and ok[position]:
                    vector[position] = previous
                    all_false = False
            elif code == SEL_DESC:
                value = parent_vector[position]
                below = vector[position - 1]
                if value is False:
                    value = below
                elif below is not False:
                    value = value | below
                if value is not False:
                    vector[position] = value
                    all_false = False
            else:  # SEL_SELFQUAL
                previous = vector[position - 1]
                if not is_false(previous):
                    value = conj(previous, qual_values[qual_index])
                    if value is not False:
                        vector[position] = value
                        all_false = False
                qual_index += 1
        vectors[index] = vector

        final = vector[n_steps]
        if is_true(final):
            answers.append(node_ids[index])
        elif not is_false(final):
            candidates[node_ids[index]] = final

        if has_virtuals:
            virtuals = virtual_at.get(index)
            if virtuals is not None:
                for child_fragment_id in virtuals:
                    virtual_parent_vectors[child_fragment_id] = list(vector)

        if all_false:
            # Dead subtree: every descendant's vector is all-false too.
            end = index + subtree_size[index]
            elements_processed += flat.elements_in(index + 1, end)
            if has_virtuals:
                for at in flat.virtuals_in(index + 1, end):
                    for child_fragment_id in virtual_at[at]:
                        virtual_parent_vectors[child_fragment_id] = [False] * vec_len
            index = end
        else:
            index += 1

    output.operations = elements_processed * vec_len
    return output
