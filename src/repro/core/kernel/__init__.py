"""Columnar per-fragment evaluation kernels.

The modules in this package rewrite the three hot per-fragment passes
(qualifier, selection, combined) as iterative walks over the flat pre-order
arrays of :class:`repro.xmltree.flat.FlatFragment`, with per-tag dispatch
tables precompiled from the :class:`~repro.xpath.plan.QueryPlan`
(:mod:`repro.core.kernel.tables`).  :mod:`repro.core.kernel.dispatch`
selects between these kernels and the object-tree reference passes.
"""

from repro.core.kernel.batch import (
    BatchPlanTables,
    batch_plan_tables,
    evaluate_fragment_combined_batch,
)
from repro.core.kernel.combined import evaluate_fragment_combined_flat
from repro.core.kernel.dispatch import (
    ENGINES,
    KERNEL,
    REFERENCE,
    combined_pass,
    combined_pass_batch,
    fragment_engine,
    qualifier_pass,
    selection_pass,
    set_fragment_engine,
    use_fragment_engine,
)
from repro.core.kernel.qualifier import evaluate_fragment_qualifiers_flat
from repro.core.kernel.selection import evaluate_fragment_selection_flat
from repro.core.kernel.tables import PlanTables, plan_tables

__all__ = [
    "ENGINES",
    "KERNEL",
    "REFERENCE",
    "combined_pass",
    "combined_pass_batch",
    "fragment_engine",
    "qualifier_pass",
    "selection_pass",
    "set_fragment_engine",
    "use_fragment_engine",
    "evaluate_fragment_combined_flat",
    "evaluate_fragment_combined_batch",
    "evaluate_fragment_qualifiers_flat",
    "evaluate_fragment_selection_flat",
    "BatchPlanTables",
    "batch_plan_tables",
    "PlanTables",
    "plan_tables",
]
