"""Engine selection: columnar kernel, numpy vector, or object-tree reference.

Every per-fragment pass in the orchestrators (PaX3, PaX2, ParBoX, the async
service evaluator) goes through the dispatchers below.  The default engine
is the columnar kernel; the ``vector`` tier re-runs the same passes as
whole-column numpy window operations (:mod:`repro.core.vector`, requires
numpy); the object-tree implementations remain as the executable
specification — the differential tests assert all paths produce
bit-identical answers and traffic accounting, and ``repro bench-core``
measures the gaps between them.

Selection, most specific wins:

1. an explicit ``engine=`` argument on the dispatcher / runner /
   ``DistributedQueryEngine`` / ``ServiceConfig``;
2. the process-wide default, settable via :func:`set_fragment_engine` or the
   ``REPRO_FRAGMENT_ENGINE`` environment variable.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Sequence

from repro.booleans.formula import FormulaLike
from repro.core.combined import FragmentCombinedOutput, evaluate_fragment_combined
from repro.core.kernel.batch import evaluate_fragment_combined_batch
from repro.core.kernel.combined import evaluate_fragment_combined_flat
from repro.core.kernel.qualifier import evaluate_fragment_qualifiers_flat
from repro.core.kernel.selection import evaluate_fragment_selection_flat
from repro.core.qualifiers import FragmentQualifierOutput, evaluate_fragment_qualifiers
from repro.core.selection import FragmentSelectionOutput, evaluate_fragment_selection
from repro.core.vector.batch import evaluate_fragment_combined_vector_batch
from repro.core.vector.combined import evaluate_fragment_combined_vector
from repro.core.vector.encode import require_numpy, vector_fragment
from repro.core.vector.qualifier import evaluate_fragment_qualifiers_vector
from repro.core.vector.selection import evaluate_fragment_selection_vector
from repro.fragments.fragment_tree import Fragmentation
from repro.xmltree.nodes import NodeId
from repro.xpath.plan import QueryPlan

__all__ = [
    "ENGINES",
    "KERNEL",
    "REFERENCE",
    "VECTOR",
    "fragment_engine",
    "set_fragment_engine",
    "use_fragment_engine",
    "prewarm_fragments",
    "qualifier_pass",
    "selection_pass",
    "combined_pass",
    "combined_pass_batch",
]

KERNEL = "kernel"
REFERENCE = "reference"
VECTOR = "vector"
ENGINES = (KERNEL, REFERENCE, VECTOR)


def _engine_from_environ() -> str:
    value = os.environ.get("REPRO_FRAGMENT_ENGINE", KERNEL)
    if value not in ENGINES:
        warnings.warn(
            f"ignoring REPRO_FRAGMENT_ENGINE={value!r}: choose from {ENGINES};"
            f" using {KERNEL!r}",
            stacklevel=2,
        )
        return KERNEL
    return value


_default_engine = _engine_from_environ()


def _validated(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(f"unknown fragment engine {engine!r}; choose from {ENGINES}")
    return engine


def fragment_engine() -> str:
    """The process-wide default engine (``"kernel"`` unless overridden)."""
    return _default_engine


def set_fragment_engine(engine: str) -> None:
    """Set the process-wide default engine."""
    global _default_engine
    _default_engine = _validated(engine)


@contextmanager
def use_fragment_engine(engine: str) -> Iterator[str]:
    """Temporarily switch the process-wide default engine."""
    global _default_engine
    previous = _default_engine
    _default_engine = _validated(engine)
    try:
        yield _default_engine
    finally:
        _default_engine = previous


def _resolve(engine: Optional[str]) -> str:
    return _default_engine if engine is None else _validated(engine)


def prewarm_fragments(
    fragmentation: Fragmentation,
    fragment_ids: Optional[Sequence[str]] = None,
    engine: Optional[str] = None,
) -> None:
    """Build the flat encodings the kernel path will need, outside any timer.

    The encodings are one-time indexing work per fragmentation, not per
    query; the orchestrators call this before their timed per-site visits so
    the paper's evaluation-time measurements see steady-state passes.  A
    no-op for the reference engine, and a cache lookup once built.  The
    vector engine additionally builds the numpy window columns (and is where
    a missing numpy surfaces as an actionable error instead of mid-query).
    """
    engine = _resolve(engine)
    if engine == REFERENCE:
        return
    if engine == VECTOR:
        require_numpy()
    for fragment_id in (fragment_ids if fragment_ids is not None
                        else fragmentation.fragment_ids()):
        flat = fragmentation.flat(fragment_id)
        if engine == VECTOR:
            vector_fragment(flat)


def qualifier_pass(
    fragmentation: Fragmentation,
    fragment_id: str,
    plan: QueryPlan,
    engine: Optional[str] = None,
) -> FragmentQualifierOutput:
    """Bottom-up qualifier pass over one fragment (Stage 1 / ParBoX)."""
    fragment = fragmentation[fragment_id]
    engine = _resolve(engine)
    if engine == KERNEL:
        return evaluate_fragment_qualifiers_flat(
            fragment, fragmentation.flat(fragment_id), plan
        )
    if engine == VECTOR:
        return evaluate_fragment_qualifiers_vector(
            fragment, fragmentation.flat(fragment_id), plan
        )
    return evaluate_fragment_qualifiers(fragment, plan)


def selection_pass(
    fragmentation: Fragmentation,
    fragment_id: str,
    plan: QueryPlan,
    qual_provider: Optional[Callable[[NodeId], Sequence[FormulaLike]]],
    init_vector: Sequence[FormulaLike],
    is_root_fragment: bool,
    engine: Optional[str] = None,
) -> FragmentSelectionOutput:
    """Top-down selection pass over one fragment (Stage 2 of PaX3).

    ``qual_provider`` maps a global node id to the node's resolved SELFQUAL
    values (``None`` for qualifier-free plans); both engines consume the
    id-based form.
    """
    fragment = fragmentation[fragment_id]
    engine = _resolve(engine)
    if engine == KERNEL:
        return evaluate_fragment_selection_flat(
            fragment,
            fragmentation.flat(fragment_id),
            plan,
            qual_provider,
            init_vector,
            is_root_fragment,
        )
    if engine == VECTOR:
        return evaluate_fragment_selection_vector(
            fragment,
            fragmentation.flat(fragment_id),
            plan,
            qual_provider,
            init_vector,
            is_root_fragment,
        )
    node_provider = None
    if qual_provider is not None:
        def node_provider(node, _by_id=qual_provider):
            return _by_id(node.node_id)
    return evaluate_fragment_selection(
        fragment, plan, node_provider, init_vector, is_root_fragment
    )


def combined_pass(
    fragmentation: Fragmentation,
    fragment_id: str,
    plan: QueryPlan,
    init_vector: Sequence[FormulaLike],
    is_root_fragment: bool,
    engine: Optional[str] = None,
    flat=None,
) -> FragmentCombinedOutput:
    """Combined pre/post-order pass over one fragment (PaX2 Stage 1).

    ``flat`` overrides the fragmentation's cached encoding — the MVCC
    snapshot path passes a pinned :class:`FlatFragment` so the scan reads a
    frozen version while the live cache moves on.  Columnar engines only
    (kernel and vector — the vector columns hang off the pinned flat, so a
    snapshot pins them too): the reference engine walks the live object
    tree and cannot honour it.
    """
    fragment = fragmentation[fragment_id]
    engine = _resolve(engine)
    if engine == KERNEL:
        return evaluate_fragment_combined_flat(
            fragment,
            flat if flat is not None else fragmentation.flat(fragment_id),
            plan,
            init_vector,
            is_root_fragment,
        )
    if engine == VECTOR:
        return evaluate_fragment_combined_vector(
            fragment,
            flat if flat is not None else fragmentation.flat(fragment_id),
            plan,
            init_vector,
            is_root_fragment,
        )
    if flat is not None:
        raise ValueError("snapshot flats require a columnar engine")
    return evaluate_fragment_combined(fragment, plan, init_vector, is_root_fragment)


def combined_pass_batch(
    fragmentation: Fragmentation,
    fragment_id: str,
    plans: Sequence[QueryPlan],
    init_vectors: Sequence[Sequence[FormulaLike]],
    is_root_fragment: bool,
    engine: Optional[str] = None,
    flat=None,
) -> list[FragmentCombinedOutput]:
    """Combined pass for a whole query wave over one fragment.

    With the kernel engine the wave shares one walk of the fragment's flat
    arrays (:func:`repro.core.kernel.batch.evaluate_fragment_combined_batch`);
    the vector engine stacks the wave over shared mask columns
    (:func:`repro.core.vector.batch.evaluate_fragment_combined_vector_batch`);
    with the reference engine each plan runs its own object-tree pass, so the
    batch orchestrators stay engine-generic and the differential tests can
    pin all paths to identical outputs.  ``flat`` overrides the cached
    encoding for MVCC snapshot reads (columnar engines only).
    """
    fragment = fragmentation[fragment_id]
    engine = _resolve(engine)
    if engine == KERNEL:
        return evaluate_fragment_combined_batch(
            fragment,
            flat if flat is not None else fragmentation.flat(fragment_id),
            plans,
            init_vectors,
            is_root_fragment,
        )
    if engine == VECTOR:
        return evaluate_fragment_combined_vector_batch(
            fragment,
            flat if flat is not None else fragmentation.flat(fragment_id),
            plans,
            init_vectors,
            is_root_fragment,
        )
    if flat is not None:
        raise ValueError("snapshot flats require a columnar engine")
    return [
        evaluate_fragment_combined(fragment, plan, init_vector, is_root_fragment)
        for plan, init_vector in zip(plans, init_vectors)
    ]
