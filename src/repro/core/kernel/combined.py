"""Columnar rewrite of the PaX2 combined pass.

Semantically identical to
:func:`repro.core.combined.evaluate_fragment_combined`, but the single
pre/post-order traversal becomes two flat array walks: a forward walk
computes every element's selection prefix vector (parents precede children
in pre-order), a reverse walk computes the qualifier vectors bottom-up
(descendants precede ancestors in reverse pre-order) and binds the ``qz:``
placeholders the forward walk materialized.  The ``qz:`` environment, the
lazily created placeholders and the local resolution at the end are exactly
the reference's, so answers, candidates and every vector leaving the site
are bit-identical.

Selection work for concretely dead prefixes is shared: once a node's vector
is all-false, its descendants reuse one shared all-false row instead of
recomputing it (the qualifier half still visits them, as it must).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.booleans.env import Environment
from repro.booleans.formula import FormulaLike, conj, disj, is_false, is_true
from repro.core.combined import FragmentCombinedOutput, _LazyPlaceholders
from repro.core.kernel.tables import (
    ITEM_CHILD,
    ITEM_DESC,
    ITEM_EMPTY_TEXT,
    ITEM_EMPTY_TRUE,
    ITEM_EMPTY_VAL,
    ITEM_SELFQUAL,
    SEL_CHILD,
    SEL_DESC,
    plan_tables,
)
from repro.core.variables import desc_var, head_var
from repro.fragments.fragment import Fragment
from repro.xmltree.flat import KIND_ELEMENT, FlatFragment
from repro.xpath.plan import QueryPlan, evaluate_qual_expr

__all__ = ["evaluate_fragment_combined_flat"]


def evaluate_fragment_combined_flat(
    fragment: Fragment,
    flat: FlatFragment,
    plan: QueryPlan,
    init_vector: Sequence[FormulaLike],
    is_root_fragment: bool,
) -> FragmentCombinedOutput:
    """Combined pre/post-order pass over the columnar encoding of *fragment*."""
    output = FragmentCombinedOutput(fragment_id=fragment.fragment_id)
    tables = plan_tables(flat, plan)
    sel_prog = tables.sel_prog
    sel_child_ok = tables.sel_child_ok

    n = flat.n
    n_items = plan.n_items
    n_steps = plan.n_steps
    vec_len = n_steps + 1
    has_quals = plan.has_qualifiers
    kind = flat.kind
    tag_ids = flat.tag_id
    parent = flat.parent
    node_ids = flat.node_ids
    virtual_at = flat.virtual_at
    has_virtuals = bool(virtual_at)

    anchor_at_root = is_root_fragment and not plan.absolute
    local_env = Environment()
    pending_finals: List[tuple] = []
    pending_virtual: Dict[str, List[FormulaLike]] = {}

    vectors: List[Optional[Sequence[FormulaLike]]] = [None] * n
    placeholders_at: List[Optional[_LazyPlaceholders]] = [None] * n
    init_list = list(init_vector)
    false_vector: Sequence[FormulaLike] = (False,) * vec_len
    no_quals: Sequence[FormulaLike] = ()

    # ---------------------------------------------------------- forward walk
    # (the pre-order half: selection prefix vectors, placeholders, virtuals)
    for index in range(n):
        if kind[index] != KIND_ELEMENT:
            continue
        parent_index = parent[index]
        parent_vector = init_list if parent_index < 0 else vectors[parent_index]
        is_ctx = anchor_at_root and parent_index < 0

        if parent_vector is false_vector and not is_ctx:
            # Dead prefix: the vector is all-false without computing it, and
            # no placeholder can be consulted (a false prefix short-circuits
            # every qualifier step).
            vectors[index] = false_vector
            if has_virtuals:
                virtuals = virtual_at.get(index)
                if virtuals is not None:
                    for child_fragment_id in virtuals:
                        pending_virtual[child_fragment_id] = [False] * vec_len
            continue

        if has_quals:
            placeholders: Sequence[FormulaLike] = _LazyPlaceholders(node_ids[index])
            placeholders_at[index] = placeholders
        else:
            placeholders = no_quals

        vector: List[FormulaLike] = [False] * vec_len
        vector[0] = is_ctx
        all_false = not is_ctx
        ok = sel_child_ok[tag_ids[index]]
        qual_index = 0
        for instr in sel_prog:
            code = instr[0]
            position = instr[1]
            if code == SEL_CHILD:
                previous = parent_vector[position - 1]
                if previous is not False and ok[position]:
                    vector[position] = previous
                    all_false = False
            elif code == SEL_DESC:
                value = parent_vector[position]
                below = vector[position - 1]
                if value is False:
                    value = below
                elif below is not False:
                    value = disj(value, below)
                if value is not False:
                    vector[position] = value
                    all_false = False
            else:  # SEL_SELFQUAL
                previous = vector[position - 1]
                if not is_false(previous):
                    value = conj(previous, placeholders[qual_index])
                    if value is not False:
                        vector[position] = value
                        all_false = False
                qual_index += 1

        final = vector[n_steps]
        if final is not False and not is_false(final):
            pending_finals.append((node_ids[index], final))
        if has_virtuals:
            virtuals = virtual_at.get(index)
            if virtuals is not None:
                for child_fragment_id in virtuals:
                    pending_virtual[child_fragment_id] = list(vector)
        vectors[index] = false_vector if all_false else vector

    # ---------------------------------------------------------- reverse walk
    # (the post-order half: qualifier vectors, placeholder bindings)
    if has_quals:
        item_prog = tables.item_prog
        sel_quals = tables.sel_quals
        head_item_ids = tables.head_item_ids
        desc_item_ids = tables.desc_item_ids
        head_rest = tables.head_rest
        head_by_tag = tables.head_by_tag
        false_row = tables.false_items
        text_norm = flat.text_norm
        numeric = flat.numeric

        head_at: List[Optional[object]] = [None] * n
        desc_at: List[Optional[object]] = [None] * n

        for index in range(n - 1, -1, -1):
            if kind[index] != KIND_ELEMENT:
                continue
            agg_head: Optional[List[FormulaLike]] = None
            agg_desc: Optional[List[FormulaLike]] = None
            if has_virtuals:
                virtuals = virtual_at.get(index)
                if virtuals is not None:
                    agg_head = [False] * n_items
                    agg_desc = [False] * n_items
                    for child_fragment_id in virtuals:
                        for item_id in head_item_ids:
                            agg_head[item_id] = disj(
                                agg_head[item_id], head_var(child_fragment_id, item_id)
                            )
                        for item_id in desc_item_ids:
                            agg_desc[item_id] = disj(
                                agg_desc[item_id], desc_var(child_fragment_id, item_id)
                            )
            for child in flat.element_children(index):
                child_head = head_at[child]
                child_desc = desc_at[child]
                head_at[child] = None
                desc_at[child] = None
                if child_head is not false_row:
                    if agg_head is None:
                        agg_head = [False] * n_items
                        agg_desc = [False] * n_items
                    for item_id in head_item_ids:
                        value = child_head[item_id]
                        if value is not False:
                            agg_head[item_id] = disj(agg_head[item_id], value)
                if child_desc is not false_row:
                    if agg_head is None:
                        agg_head = [False] * n_items
                        agg_desc = [False] * n_items
                    for item_id in desc_item_ids:
                        value = child_desc[item_id]
                        if value is not False:
                            agg_desc[item_id] = disj(agg_desc[item_id], value)
            agg_h = false_row if agg_head is None else agg_head
            agg_d = false_row if agg_desc is None else agg_desc

            ex: List[FormulaLike] = [False] * n_items
            for instr in item_prog:
                code = instr[0]
                if code == ITEM_CHILD:
                    ex[instr[1]] = agg_h[instr[1]]
                elif code == ITEM_DESC:
                    rest = instr[2]
                    ex[instr[1]] = disj(ex[rest], agg_d[rest])
                elif code == ITEM_EMPTY_TEXT:
                    ex[instr[1]] = text_norm[index] == instr[2]
                elif code == ITEM_EMPTY_TRUE:
                    ex[instr[1]] = True
                elif code == ITEM_EMPTY_VAL:
                    value = numeric[index]
                    ex[instr[1]] = False if value is None else instr[2](value, instr[3])
                else:  # ITEM_SELFQUAL
                    ex[instr[1]] = conj(evaluate_qual_expr(instr[2], ex), ex[instr[3]])

            lazy = placeholders_at[index]
            if lazy is not None and lazy.created:
                created = lazy.created
                values = tuple(evaluate_qual_expr(qual, ex) for qual in sel_quals)
                for slot in created:
                    local_env.bind(created[slot].name, values[slot])

            head_row: object = false_row
            matching = head_by_tag[tag_ids[index]]
            if matching:
                row: Optional[List[FormulaLike]] = None
                for item_id in matching:
                    value = ex[head_rest[item_id]]
                    if value is not False:
                        if row is None:
                            row = [False] * n_items
                        row[item_id] = value
                if row is not None:
                    head_row = row
            desc_row: object = false_row
            if desc_item_ids:
                row = None
                for item_id in desc_item_ids:
                    value = disj(ex[item_id], agg_d[item_id])
                    if value is not False:
                        if row is None:
                            row = [False] * n_items
                        row[item_id] = value
                if row is not None:
                    desc_row = row
            head_at[index] = head_row
            desc_at[index] = desc_row

        root_head = head_at[0]
        root_desc = desc_at[0]
        output.root_head = list(root_head) if type(root_head) is tuple else root_head
        output.root_desc = list(root_desc) if type(root_desc) is tuple else root_desc
    else:
        output.root_head = [False] * n_items
        output.root_desc = [False] * n_items

    # ---------------------------------------------------------- resolution
    # Eliminate qz: placeholders from everything that leaves the site.
    for node_id, final in pending_finals:
        resolved = local_env.resolve(final) if has_quals else final
        if is_true(resolved):
            output.answers.append(node_id)
        elif not is_false(resolved):
            output.candidates[node_id] = resolved
    for child_fragment_id, vector in pending_virtual.items():
        output.virtual_parent_vectors[child_fragment_id] = (
            local_env.resolve_vector(vector) if has_quals else vector
        )

    output.operations = flat.n_elements * max(1, n_items + n_steps + 1)
    output.root_vector_units = len(plan.head_item_ids) + len(plan.desc_item_ids)
    return output
