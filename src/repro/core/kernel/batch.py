"""Fused multi-query kernels: walk each fragment once per query wave.

The single-query kernels in this package make one pass over a fragment fast;
a serving system runs *many* queries over the same fragments, and N in-flight
queries would still pay N independent walks of the same flat arrays.  The
batch kernel amortizes everything that does not depend on the query across a
whole wave:

* the structural walk itself — node kinds, parent links, subtree sizes,
  virtual-child lookups, the ``element_children`` folds of the reverse walk
  are read **once per node**, not once per node per query;
* the per-tag dispatch — :class:`BatchPlanTables` merges the per-query
  :class:`~repro.core.kernel.tables.PlanTables` into one fused table per
  (wave, fragment): the ``sel_child_ok`` columns of all queries are stacked
  into a single per-tag tuple (indexed through per-query step offsets) and
  the ``head_by_tag`` item ids are unified into one per-tag structure with
  the ``rest`` ids inlined, so each node does one table lookup for the whole
  wave and the results demux by query slot;
* dead subtrees — once **every** query's selection prefix is concretely
  false at a node, the forward walk jumps the whole subtree
  (``subtree_size``), which no per-query pass can do for the wave as a
  whole.

Callers deduplicate exact-duplicate plans (same
:attr:`~repro.xpath.plan.QueryPlan.fingerprint`) to a single kernel slot
before fusion — see :func:`repro.core.batch.run_pax2_batch` and the service
batcher — so a wave of N queries with d distinct forms pays d slots, one
walk.

Per-query semantics are exactly those of
:func:`~repro.core.kernel.combined.evaluate_fragment_combined_flat`: the
same node order, the same fold order, the same lazily materialized ``qz:``
placeholders and local resolution, so every
:class:`~repro.core.combined.FragmentCombinedOutput` in the returned list is
bit-identical to what the single-query kernel produces for that plan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.booleans.env import Environment
from repro.booleans.formula import FormulaLike, conj, disj, is_false, is_true
from repro.core.combined import FragmentCombinedOutput, _LazyPlaceholders
from repro.core.kernel.combined import evaluate_fragment_combined_flat
from repro.core.kernel.tables import (
    ITEM_CHILD,
    ITEM_DESC,
    ITEM_EMPTY_TEXT,
    ITEM_EMPTY_TRUE,
    ITEM_EMPTY_VAL,
    SEL_CHILD,
    SEL_DESC,
    PlanTables,
    plan_tables,
)
from repro.core.variables import desc_var, head_var
from repro.fragments.fragment import Fragment
from repro.xmltree.flat import KIND_ELEMENT, FlatFragment
from repro.xpath.plan import QueryPlan, evaluate_qual_expr

__all__ = ["BatchPlanTables", "batch_plan_tables", "evaluate_fragment_combined_batch"]


class BatchPlanTables:
    """The dispatch tables of a whole query wave, fused per fragment.

    Built on top of the (cached) per-query :class:`PlanTables`; the fused
    structures exist so the inner loops of the batch kernel touch one object
    per node for the entire wave instead of one per node per query.
    """

    __slots__ = (
        "tables",
        "n_queries",
        "item_offsets",
        "step_offsets",
        "total_items",
        "total_steps",
        "sel_child_ok",
        "head_by_tag",
    )

    def __init__(self, flat: FlatFragment, plans: Sequence[QueryPlan]):
        self.tables: Tuple[PlanTables, ...] = tuple(
            plan_tables(flat, plan) for plan in plans
        )
        self.n_queries = len(plans)

        # Per-query offsets into the stacked step/item spaces: slot q's
        # selection position p lives at step_offsets[q] + p, which is how a
        # single per-tag row serves the whole wave and results demux back to
        # their query.
        item_offsets: List[int] = []
        step_offsets: List[int] = []
        items_total = 0
        steps_total = 0
        for plan in plans:
            item_offsets.append(items_total)
            items_total += plan.n_items
            step_offsets.append(steps_total)
            steps_total += plan.n_steps + 1
        self.item_offsets: Tuple[int, ...] = tuple(item_offsets)
        self.step_offsets: Tuple[int, ...] = tuple(step_offsets)
        self.total_items = items_total
        self.total_steps = steps_total

        n_tags = len(flat.tags)
        #: per tag, every query's ``sel_child_ok`` column stacked into one
        #: tuple (one lookup per node for the whole wave)
        self.sel_child_ok: List[Tuple[bool, ...]] = [
            tuple(ok for t in self.tables for ok in t.sel_child_ok[tid])
            for tid in range(n_tags)
        ]
        #: per tag, the union of the queries' HEAD item ids, grouped by query
        #: slot with each item's ``rest`` id inlined: ((item_id, rest_id), ...)
        self.head_by_tag: List[Tuple[Tuple[Tuple[int, int], ...], ...]] = [
            tuple(
                tuple((item_id, t.head_rest[item_id]) for item_id in t.head_by_tag[tid])
                for t in self.tables
            )
            for tid in range(n_tags)
        ]


#: per-fragment cap on cached fused tables; wave compositions vary with
#: traffic timing, so this cache is kept separate from (and smaller than)
#: the single-query PlanTables cache it is built on top of — a churn of
#: one-off waves can never evict a hot per-plan entry
_MAX_BATCH_TABLES_PER_FRAGMENT = 64


def batch_plan_tables(flat: FlatFragment, plans: Sequence[QueryPlan]) -> BatchPlanTables:
    """The (cached) fused tables of a wave of plans over *flat*'s tag table.

    Keyed by the tuple of plan fingerprints, in wave order.  The kernel
    entry point sorts waves into canonical fingerprint order before calling
    in, so the same *set* of in-flight queries hits one cache entry no
    matter the order requests arrived in.
    """
    key = tuple(plan.fingerprint for plan in plans)
    cache = flat._batch_tables
    tables = cache.get(key)
    if tables is None:
        tables = BatchPlanTables(flat, plans)
        while len(cache) >= _MAX_BATCH_TABLES_PER_FRAGMENT:
            cache.pop(next(iter(cache)))  # FIFO: oldest wave's tables go first
        cache[key] = tables
    return tables


def evaluate_fragment_combined_batch(
    fragment: Fragment,
    flat: FlatFragment,
    plans: Sequence[QueryPlan],
    init_vectors: Sequence[Sequence[FormulaLike]],
    is_root_fragment: bool,
) -> List[FragmentCombinedOutput]:
    """Combined pre/post-order pass for a whole wave, one walk of *flat*.

    ``plans[q]`` is evaluated with ``init_vectors[q]``; the returned list is
    index-aligned with the wave.  Callers should deduplicate identical plans
    (same fingerprint and init vector) to one slot first — this function
    evaluates every slot it is given.
    """
    if not plans:
        return []
    if len(plans) == 1:
        # A wave of one is exactly the single-query kernel.
        return [
            evaluate_fragment_combined_flat(
                fragment, flat, plans[0], init_vectors[0], is_root_fragment
            )
        ]
    # Canonicalize the wave to fingerprint order: per-slot evaluation is
    # fully independent, so the result only needs demuxing back, and the
    # fused-table cache key stops depending on the (timing-dependent) order
    # requests reached the batcher in.
    order = sorted(range(len(plans)), key=lambda q: plans[q].fingerprint)
    if order != list(range(len(plans))):
        ordered = _evaluate_wave(
            fragment,
            flat,
            [plans[q] for q in order],
            [init_vectors[q] for q in order],
            is_root_fragment,
        )
        outputs: List[Optional[FragmentCombinedOutput]] = [None] * len(plans)
        for position, q in enumerate(order):
            outputs[q] = ordered[position]
        return outputs
    return _evaluate_wave(fragment, flat, plans, init_vectors, is_root_fragment)


def _evaluate_wave(
    fragment: Fragment,
    flat: FlatFragment,
    plans: Sequence[QueryPlan],
    init_vectors: Sequence[Sequence[FormulaLike]],
    is_root_fragment: bool,
) -> List[FragmentCombinedOutput]:
    """The fused walk proper, over a canonically ordered wave."""
    nq = len(plans)
    batch = batch_plan_tables(flat, plans)
    tables = batch.tables
    step_offsets = batch.step_offsets
    sel_child_ok = batch.sel_child_ok

    outputs = [FragmentCombinedOutput(fragment_id=fragment.fragment_id) for _ in plans]

    n = flat.n
    kind = flat.kind
    tag_ids = flat.tag_id
    parent = flat.parent
    subtree_size = flat.subtree_size
    node_ids = flat.node_ids
    virtual_at = flat.virtual_at
    has_virtuals = bool(virtual_at)

    n_items = [plan.n_items for plan in plans]
    n_steps = [plan.n_steps for plan in plans]
    vec_lens = [plan.n_steps + 1 for plan in plans]
    has_quals = [plan.has_qualifiers for plan in plans]
    anchors = [is_root_fragment and not plan.absolute for plan in plans]
    false_vectors: List[Tuple[bool, ...]] = [(False,) * vl for vl in vec_lens]
    init_lists = [list(vector) for vector in init_vectors]
    local_envs = [Environment() for _ in plans]
    pending_finals: List[List[tuple]] = [[] for _ in plans]
    pending_virtual: List[Dict[str, List[FormulaLike]]] = [{} for _ in plans]
    vectors: List[List[Optional[Sequence[FormulaLike]]]] = [[None] * n for _ in plans]
    placeholders_at: List[Optional[List[Optional[_LazyPlaceholders]]]] = [
        [None] * n if hq else None for hq in has_quals
    ]
    no_quals: Sequence[FormulaLike] = ()
    q_range = tuple(range(nq))

    # ---------------------------------------------------------- forward walk
    # (selection prefix vectors for every query, one pass over the span)
    index = 0
    while index < n:
        if kind[index] != KIND_ELEMENT:
            index += 1
            continue
        parent_index = parent[index]
        at_root = parent_index < 0
        ok_all = sel_child_ok[tag_ids[index]]
        virtuals = virtual_at.get(index) if has_virtuals else None
        all_dead = True
        for q in q_range:
            false_vector = false_vectors[q]
            parent_vector = init_lists[q] if at_root else vectors[q][parent_index]
            is_ctx = anchors[q] and at_root
            if parent_vector is false_vector and not is_ctx:
                # Dead prefix for this query (same short-circuit as the
                # single-query kernel).
                vectors[q][index] = false_vector
                if virtuals is not None:
                    pv = pending_virtual[q]
                    vl = vec_lens[q]
                    for child_fragment_id in virtuals:
                        pv[child_fragment_id] = [False] * vl
                continue
            all_dead = False
            if has_quals[q]:
                placeholders: Sequence[FormulaLike] = _LazyPlaceholders(node_ids[index])
                placeholders_at[q][index] = placeholders
            else:
                placeholders = no_quals
            vector: List[FormulaLike] = [False] * vec_lens[q]
            vector[0] = is_ctx
            all_false = not is_ctx
            base = step_offsets[q]
            qual_index = 0
            for instr in tables[q].sel_prog:
                code = instr[0]
                position = instr[1]
                if code == SEL_CHILD:
                    previous = parent_vector[position - 1]
                    if previous is not False and ok_all[base + position]:
                        vector[position] = previous
                        all_false = False
                elif code == SEL_DESC:
                    value = parent_vector[position]
                    below = vector[position - 1]
                    if value is False:
                        value = below
                    elif below is not False:
                        value = disj(value, below)
                    if value is not False:
                        vector[position] = value
                        all_false = False
                else:  # SEL_SELFQUAL
                    previous = vector[position - 1]
                    if not is_false(previous):
                        value = conj(previous, placeholders[qual_index])
                        if value is not False:
                            vector[position] = value
                            all_false = False
                    qual_index += 1
            final = vector[n_steps[q]]
            if final is not False and not is_false(final):
                pending_finals[q].append((node_ids[index], final))
            if virtuals is not None:
                pv = pending_virtual[q]
                for child_fragment_id in virtuals:
                    pv[child_fragment_id] = list(vector)
            vectors[q][index] = false_vectors[q] if all_false else vector

        if all_dead:
            # Every query's prefix is concretely false here, so every
            # descendant's vector is all-false for every query: jump the
            # subtree, emitting the all-false vectors at any virtual nodes
            # inside the skipped range (exactly what the per-node walk would
            # have produced).
            end = index + subtree_size[index]
            if has_virtuals:
                for at in flat.virtuals_in(index + 1, end):
                    for child_fragment_id in virtual_at[at]:
                        for q in q_range:
                            pending_virtual[q][child_fragment_id] = [False] * vec_lens[q]
            index = end
        else:
            index += 1

    # ---------------------------------------------------------- reverse walk
    # (qualifier vectors bottom-up for the queries that have qualifiers; the
    # structural reads — children, text, numeric, virtuals — are shared)
    qual_qs = tuple(q for q in q_range if has_quals[q])
    head_roots: List[Optional[object]] = [None] * nq
    desc_roots: List[Optional[object]] = [None] * nq
    if qual_qs:
        text_norm = flat.text_norm
        numeric = flat.numeric
        head_by_tag = batch.head_by_tag
        head_at: Dict[int, List[Optional[object]]] = {q: [None] * n for q in qual_qs}
        desc_at: Dict[int, List[Optional[object]]] = {q: [None] * n for q in qual_qs}

        for index in range(n - 1, -1, -1):
            if kind[index] != KIND_ELEMENT:
                continue
            virtuals = virtual_at.get(index) if has_virtuals else None
            children = tuple(flat.element_children(index))
            tn = text_norm[index]
            num = numeric[index]
            head_groups = head_by_tag[tag_ids[index]]
            for q in qual_qs:
                t = tables[q]
                ni = n_items[q]
                head_item_ids = t.head_item_ids
                desc_item_ids = t.desc_item_ids
                false_row = t.false_items
                h_at = head_at[q]
                d_at = desc_at[q]

                agg_head: Optional[List[FormulaLike]] = None
                agg_desc: Optional[List[FormulaLike]] = None
                if virtuals is not None:
                    agg_head = [False] * ni
                    agg_desc = [False] * ni
                    for child_fragment_id in virtuals:
                        for item_id in head_item_ids:
                            agg_head[item_id] = disj(
                                agg_head[item_id], head_var(child_fragment_id, item_id)
                            )
                        for item_id in desc_item_ids:
                            agg_desc[item_id] = disj(
                                agg_desc[item_id], desc_var(child_fragment_id, item_id)
                            )
                for child in children:
                    child_head = h_at[child]
                    child_desc = d_at[child]
                    h_at[child] = None
                    d_at[child] = None
                    if child_head is not false_row:
                        if agg_head is None:
                            agg_head = [False] * ni
                            agg_desc = [False] * ni
                        for item_id in head_item_ids:
                            value = child_head[item_id]
                            if value is not False:
                                agg_head[item_id] = disj(agg_head[item_id], value)
                    if child_desc is not false_row:
                        if agg_head is None:
                            agg_head = [False] * ni
                            agg_desc = [False] * ni
                        for item_id in desc_item_ids:
                            value = child_desc[item_id]
                            if value is not False:
                                agg_desc[item_id] = disj(agg_desc[item_id], value)
                agg_h = false_row if agg_head is None else agg_head
                agg_d = false_row if agg_desc is None else agg_desc

                ex: List[FormulaLike] = [False] * ni
                for instr in t.item_prog:
                    code = instr[0]
                    if code == ITEM_CHILD:
                        ex[instr[1]] = agg_h[instr[1]]
                    elif code == ITEM_DESC:
                        rest = instr[2]
                        ex[instr[1]] = disj(ex[rest], agg_d[rest])
                    elif code == ITEM_EMPTY_TEXT:
                        ex[instr[1]] = tn == instr[2]
                    elif code == ITEM_EMPTY_TRUE:
                        ex[instr[1]] = True
                    elif code == ITEM_EMPTY_VAL:
                        ex[instr[1]] = False if num is None else instr[2](num, instr[3])
                    else:  # ITEM_SELFQUAL
                        ex[instr[1]] = conj(evaluate_qual_expr(instr[2], ex), ex[instr[3]])

                lazy = placeholders_at[q][index]
                if lazy is not None and lazy.created:
                    created = lazy.created
                    values = tuple(evaluate_qual_expr(qual, ex) for qual in t.sel_quals)
                    env = local_envs[q]
                    for slot in created:
                        env.bind(created[slot].name, values[slot])

                head_row: object = false_row
                matching = head_groups[q]
                if matching:
                    row: Optional[List[FormulaLike]] = None
                    for item_id, rest in matching:
                        value = ex[rest]
                        if value is not False:
                            if row is None:
                                row = [False] * ni
                            row[item_id] = value
                    if row is not None:
                        head_row = row
                desc_row: object = false_row
                if desc_item_ids:
                    row = None
                    for item_id in desc_item_ids:
                        value = disj(ex[item_id], agg_d[item_id])
                        if value is not False:
                            if row is None:
                                row = [False] * ni
                            row[item_id] = value
                    if row is not None:
                        desc_row = row
                h_at[index] = head_row
                d_at[index] = desc_row

        for q in qual_qs:
            head_roots[q] = head_at[q][0]
            desc_roots[q] = desc_at[q][0]

    # ---------------------------------------------------------- resolution
    for q in q_range:
        output = outputs[q]
        plan = plans[q]
        hq = has_quals[q]
        if hq:
            root_head = head_roots[q]
            root_desc = desc_roots[q]
            output.root_head = list(root_head) if type(root_head) is tuple else root_head
            output.root_desc = list(root_desc) if type(root_desc) is tuple else root_desc
        else:
            output.root_head = [False] * n_items[q]
            output.root_desc = [False] * n_items[q]
        env = local_envs[q]
        for node_id, final in pending_finals[q]:
            resolved = env.resolve(final) if hq else final
            if is_true(resolved):
                output.answers.append(node_id)
            elif not is_false(resolved):
                output.candidates[node_id] = resolved
        for child_fragment_id, vector in pending_virtual[q].items():
            output.virtual_parent_vectors[child_fragment_id] = (
                env.resolve_vector(vector) if hq else vector
            )
        output.operations = flat.n_elements * max(1, plan.n_items + plan.n_steps + 1)
        output.root_vector_units = len(plan.head_item_ids) + len(plan.desc_item_ids)
    return outputs
