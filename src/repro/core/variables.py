"""Naming scheme of the Boolean variables introduced by partial evaluation.

Three families of variables exist (see DESIGN.md, Section 6):

``qh:<fragment>:<item>`` / ``qd:<fragment>:<item>``
    The unknown HEAD / DESC qualifier values of a sub-fragment's root,
    introduced by a parent fragment at each of its virtual nodes.  Resolved
    bottom-up over the fragment tree.

``sv:<fragment>:<entry>``
    The unknown selection prefix values of the *parent* of a fragment's
    root, used to initialize the selection stack of a non-root fragment.
    Resolved top-down over the fragment tree.

``qz:<node>:<k>``
    PaX2 only: the value of the ``k``-th qualifier expression at a node of
    the *same* fragment, not yet known during the pre-order half of the
    combined pass.  Always resolved locally before anything leaves the site.
"""

from __future__ import annotations

from repro.booleans.formula import Var

__all__ = [
    "head_var",
    "desc_var",
    "selection_var",
    "pending_qual_var",
    "head_var_name",
    "desc_var_name",
    "selection_var_name",
    "pending_qual_var_name",
]


def head_var_name(fragment_id: str, item_id: int) -> str:
    return f"qh:{fragment_id}:{item_id}"


def desc_var_name(fragment_id: str, item_id: int) -> str:
    return f"qd:{fragment_id}:{item_id}"


def selection_var_name(fragment_id: str, entry: int) -> str:
    return f"sv:{fragment_id}:{entry}"


def pending_qual_var_name(node_id: int, qual_index: int) -> str:
    return f"qz:{node_id}:{qual_index}"


def head_var(fragment_id: str, item_id: int) -> Var:
    """HEAD value of qualifier item *item_id* at the root of *fragment_id*."""
    return Var(head_var_name(fragment_id, item_id))


def desc_var(fragment_id: str, item_id: int) -> Var:
    """DESC value of qualifier item *item_id* at the root of *fragment_id*."""
    return Var(desc_var_name(fragment_id, item_id))


def selection_var(fragment_id: str, entry: int) -> Var:
    """Selection prefix *entry* at the parent of *fragment_id*'s root."""
    return Var(selection_var_name(fragment_id, entry))


def pending_qual_var(node_id: int, qual_index: int) -> Var:
    """PaX2 placeholder for a node's own, not-yet-computed qualifier value."""
    return Var(pending_qual_var_name(node_id, qual_index))
