"""ParBoX: partial evaluation of Boolean XPath queries (Buneman et al. [5]).

A Boolean query returns a single truth value — in the paper's formulation it
is a qualifier evaluated at the document root, written here as ``.[q]``.
ParBoX corresponds exactly to Stage 1 of PaX3: every site performs the
bottom-up qualifier pass over its fragments (one visit per site), ships the
root vectors to the coordinator, and a single bottom-up unification over the
fragment tree yields the answer.

The implementation is provided both because the paper uses it as the
baseline its guarantees are measured against and because PaX3 literally
embeds it as its first stage.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.booleans.env import Environment
from repro.core.common import QueryInput, build_network, ensure_plan, plan_units, stage_timer
from repro.core.kernel.dispatch import prewarm_fragments, qualifier_pass
from repro.core.qualifiers import FragmentQualifierOutput
from repro.core.unify import require_concrete, unify_qualifier_vectors
from repro.distributed.messages import MessageKind
from repro.distributed.network import Network
from repro.distributed.stats import RunStats, StageStats
from repro.fragments.fragment_tree import Fragmentation
from repro.xpath.errors import XPathError
from repro.xpath.plan import SELFQUAL

__all__ = ["run_parbox", "as_boolean_query"]


def as_boolean_query(qualifier: str) -> str:
    """Wrap a qualifier expression string into the Boolean query ``.[q]``."""
    stripped = qualifier.strip()
    if stripped.startswith("[") and stripped.endswith("]"):
        return f".{stripped}"
    return f".[{stripped}]"


def run_parbox(
    fragmentation: Fragmentation,
    query: QueryInput,
    placement: Optional[Mapping[str, str]] = None,
    network: Optional[Network] = None,
    engine: Optional[str] = None,
) -> RunStats:
    """Evaluate a Boolean query with ParBoX (one visit per site).

    The query must be a Boolean query: its selection part may consist only of
    qualifiers applied at the root (``.[q]``).  The Boolean result is exposed
    as ``stats.answer_ids``, which contains the document root's node id when
    the query is true and is empty otherwise, plus ``stats.notes``.
    """
    plan = ensure_plan(query)
    if any(step.kind != SELFQUAL for step in plan.selection):
        raise XPathError(
            "ParBoX evaluates Boolean queries only; use PaX3/PaX2 for data-selecting queries"
        )
    if network is None:
        network = build_network(fragmentation, placement)
    coordinator_id = network.coordinator_id

    stats = RunStats(algorithm="ParBoX", query=plan.source)
    stats.fragments_evaluated = fragmentation.fragment_ids()
    stage = StageStats(name="qualifiers")
    prewarm_fragments(fragmentation, engine=engine)

    outputs: Dict[str, FragmentQualifierOutput] = {}
    site_ids = network.sites_holding(fragmentation.fragment_ids())
    for site_id in site_ids:
        site = network.sites[site_id]
        fragment_ids = network.fragments_on(site_id)
        network.send(
            coordinator_id, site_id, MessageKind.EXEC_REQUEST,
            units=plan_units(plan) * len(fragment_ids),
            description="ParBoX: evaluate the Boolean query",
        )
        units = 0
        with site.visit("parbox:qualifiers"):
            for fragment_id in fragment_ids:
                output = qualifier_pass(fragmentation, fragment_id, plan, engine=engine)
                outputs[fragment_id] = output
                site.add_operations(output.operations)
                units += output.root_vector_units
        network.send(
            site_id, coordinator_id, MessageKind.QUALIFIER_VECTORS, units,
            description="ParBoX: root qualifier vectors",
        )

    times = [network.sites[sid].stage_seconds.get("parbox:qualifiers", 0.0) for sid in site_ids]
    stage.parallel_seconds = max(times) if times else 0.0
    stage.total_seconds = sum(times)
    stage.sites_involved = len(site_ids)

    with stage_timer(stage):
        environment = unify_qualifier_vectors(
            fragmentation,
            plan,
            {fid: (out.root_head, out.root_desc) for fid, out in outputs.items()},
            Environment(),
        )
        result = _boolean_result_at_root(fragmentation, plan, outputs, environment)
    stats.stages.append(stage)

    root_id = fragmentation.tree.root.node_id
    stats.answer_ids = [root_id] if result else []
    stats.notes = f"boolean result: {result}"
    network.collect_stats(stats)
    return stats


def _boolean_result_at_root(
    fragmentation: Fragmentation,
    plan,
    outputs: Mapping[str, FragmentQualifierOutput],
    environment: Environment,
) -> bool:
    """Resolve the qualifier expression of ``.[q]`` at the document root."""
    root_fragment = fragmentation.root_fragment
    root_output = outputs[root_fragment.fragment_id]
    values = root_output.qual_values.get(fragmentation.tree.root.node_id, ())
    result = True
    for value in values:
        resolved = require_concrete(environment.resolve(value), "Boolean query at the root")
        result = result and resolved
    return bool(result)
