"""The combined pass of PaX2 (Section 4 of the paper).

PaX2 folds the qualifier pass and the selection pass into a single traversal
of each fragment: at every element node a *pre-order* computation extends the
selection prefix vector (using a fresh ``qz:`` placeholder wherever the
node's own qualifier value is not yet known), and a *post-order* computation
— once the node's subtree has been fully visited — produces the qualifier
values and binds the placeholders.

Placeholders are materialized lazily: a node needs one only when the prefix
leading to a qualifier step is not already known to be false, so in a typical
run only the handful of nodes that actually lie on the selection path pay for
variable bookkeeping.  This is what makes the single combined pass cheaper
than PaX3's two passes, which is precisely the effect the paper measures.

When the traversal of the fragment finishes, every ``qz:`` placeholder has a
binding in the local environment, so all vectors that leave the site (the
root's qualifier vectors, the virtual-node parent vectors, the candidate
formulas) are resolved locally first; only ``sv:`` / ``qh:`` / ``qd:``
variables — the ones that genuinely depend on other fragments — survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.booleans.env import Environment
from repro.booleans.formula import FormulaLike, is_false, is_true
from repro.core.qualifiers import virtual_qualifier_vectors
from repro.core.variables import pending_qual_var
from repro.fragments.fragment import Fragment
from repro.xmltree.nodes import NodeId, XMLNode
from repro.xpath.plan import QueryPlan
from repro.xpath.runtime import (
    QualAggregate,
    compute_qualifier_vectors,
    qualifier_values_for_selection,
    selection_vector,
)

__all__ = ["FragmentCombinedOutput", "evaluate_fragment_combined"]


class _LazyPlaceholders:
    """Per-node ``qz:`` placeholders, created only when actually consulted.

    :func:`repro.xpath.runtime.selection_vector` indexes this sequence only
    when the prefix before a qualifier step is not already false, so nodes
    off the selection path never allocate a variable.
    """

    __slots__ = ("node_id", "created")

    def __init__(self, node_id: NodeId):
        self.node_id = node_id
        self.created: Dict[int, FormulaLike] = {}

    def __getitem__(self, index: int) -> FormulaLike:
        variable = self.created.get(index)
        if variable is None:
            variable = pending_qual_var(self.node_id, index)
            self.created[index] = variable
        return variable


@dataclass
class FragmentCombinedOutput:
    """Result of the PaX2 combined pass over one fragment."""

    fragment_id: str
    #: HEAD / DESC vectors of the fragment root (variables of sub-fragments only)
    root_head: List[FormulaLike] = field(default_factory=list)
    root_desc: List[FormulaLike] = field(default_factory=list)
    #: definite answers found locally
    answers: List[NodeId] = field(default_factory=list)
    #: candidate answers with their residual formulas (no qz: variables left)
    candidates: Dict[NodeId, FormulaLike] = field(default_factory=dict)
    #: sub-fragment id -> resolved selection vector of its root's parent
    virtual_parent_vectors: Dict[str, List[FormulaLike]] = field(default_factory=dict)
    operations: int = 0
    root_vector_units: int = 0


def evaluate_fragment_combined(
    fragment: Fragment,
    plan: QueryPlan,
    init_vector: Sequence[FormulaLike],
    is_root_fragment: bool,
) -> FragmentCombinedOutput:
    """Run the combined pre/post-order pass of PaX2 over *fragment*."""
    output = FragmentCombinedOutput(fragment_id=fragment.fragment_id)
    n_steps = plan.n_steps
    has_quals = plan.has_qualifiers
    root = fragment.root
    anchor_at_root = is_root_fragment and not plan.absolute
    local_env = Environment()

    #: (node_id, final entry) for nodes that may be answers, resolved at the end
    pending_finals: list[tuple[NodeId, FormulaLike]] = []
    #: raw virtual parent vectors, resolved at the end
    pending_virtual: dict[str, List[FormulaLike]] = {}

    elements_processed = 0
    root_vectors: tuple[List[FormulaLike], List[FormulaLike]] | None = None
    empty_placeholders: Sequence[FormulaLike] = tuple()

    def make_frame(node: XMLNode, parent_vector: Sequence[FormulaLike]):
        """Pre-order work for *node*; returns the traversal frame."""
        nonlocal elements_processed
        elements_processed += 1
        placeholders: Sequence[FormulaLike]
        if has_quals:
            placeholders = _LazyPlaceholders(node.node_id)
        else:
            placeholders = empty_placeholders
        vector = selection_vector(
            plan,
            node,
            parent_vector,
            is_context_root=(anchor_at_root and node is root),
            qual_values=placeholders,
        )
        final = vector[n_steps]
        if final is not False and not is_false(final):
            pending_finals.append((node.node_id, final))

        virtuals = fragment.virtual_children_of(node) if fragment.virtual_children else []
        aggregate = QualAggregate(plan)
        if virtuals:
            for virtual in virtuals:
                pending_virtual[virtual.fragment_id] = list(vector)
            if has_quals:
                for virtual in virtuals:
                    head, desc = virtual_qualifier_vectors(plan, virtual.fragment_id)
                    aggregate.add_child(plan, head, desc)
        return (node, iter(fragment.real_element_children(node)), aggregate, vector, placeholders)

    stack = [make_frame(root, list(init_vector))]
    while stack:
        node, children_iter, aggregate, vector, placeholders = stack[-1]
        pushed = False
        for child in children_iter:
            stack.append(make_frame(child, vector))
            pushed = True
            break
        if pushed:
            continue
        stack.pop()
        if has_quals:
            ex, head, desc = compute_qualifier_vectors(plan, node, aggregate)
            created = placeholders.created
            if created:
                values = qualifier_values_for_selection(plan, ex)
                for index in created:
                    local_env.bind(created[index].name, values[index])
            if stack:
                stack[-1][2].add_child(plan, head, desc)
            else:
                root_vectors = (head, desc)
        elif not stack:
            root_vectors = ([False] * plan.n_items, [False] * plan.n_items)

    # Local resolution: eliminate qz: placeholders from everything that
    # leaves the site or decides answers.
    for node_id, final in pending_finals:
        resolved = local_env.resolve(final) if has_quals else final
        if is_true(resolved):
            output.answers.append(node_id)
        elif not is_false(resolved):
            output.candidates[node_id] = resolved
    for child_id, vector in pending_virtual.items():
        output.virtual_parent_vectors[child_id] = (
            local_env.resolve_vector(vector) if has_quals else vector
        )

    assert root_vectors is not None
    output.root_head, output.root_desc = root_vectors
    width = max(1, plan.n_items + n_steps + 1)
    output.operations = elements_processed * width
    output.root_vector_units = len(plan.head_item_ids) + len(plan.desc_item_ids)
    return output
