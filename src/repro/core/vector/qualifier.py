"""Vectorized qualifier pass (Stage 1 of PaX3 / ParBoX).

Semantically identical to the kernel and reference passes: the column
analysis (:mod:`repro.core.vector.quals`) computes every item's EX column
in topological item order, the per-element qualifier-value tuples are read
off the selection-qualifier columns (symbolic rows from the exact scalar
replay), and the root HEAD/DESC vectors are the root's rows.  The
qualifier-value map is built in reverse pre-order, the same insertion
order the kernel produces.
"""

from __future__ import annotations

from repro.core.kernel.tables import plan_tables
from repro.core.qualifiers import FragmentQualifierOutput
from repro.core.vector.encode import vector_fragment
from repro.core.vector.program import vector_program
from repro.core.vector.quals import qualifier_analysis
from repro.fragments.fragment import Fragment
from repro.xmltree.flat import FlatFragment
from repro.xpath.plan import QueryPlan

__all__ = ["evaluate_fragment_qualifiers_vector"]


def evaluate_fragment_qualifiers_vector(
    fragment: Fragment, flat: FlatFragment, plan: QueryPlan
) -> FragmentQualifierOutput:
    """Column-at-a-time qualifier pass over the window encoding."""
    output = FragmentQualifierOutput(fragment_id=fragment.fragment_id)
    n_items = plan.n_items
    if not plan.has_qualifiers:
        # Same early-out as the kernel: no qualifier work, no operation
        # charge (the accounting fingerprints must match bit for bit).
        output.root_head = [False] * n_items
        output.root_desc = [False] * n_items
        return output

    vf = vector_fragment(flat)
    tables = plan_tables(flat, plan)
    program = vector_program(vf, plan, tables)
    analysis = qualifier_analysis(vf, flat, plan, tables, program)

    output.root_head = analysis.root_head
    output.root_desc = analysis.root_desc

    # Per-element qualifier values, inserted in reverse pre-order exactly
    # like the kernel's reverse walk.  tolist() materializes Python bools
    # (numpy bool_ must never leave the columns).
    qual_values = output.qual_values
    node_ids = flat.node_ids
    value_cols = [col.tolist() for col in analysis.sel_qual_cols]
    sym_values = analysis.sym_qual_values
    for index in vf.elem_idx[::-1].tolist():
        values = sym_values.get(index)
        if values is None:
            values = tuple(col[index] for col in value_cols)
        qual_values[node_ids[index]] = values

    output.operations = flat.n_elements * max(1, n_items)
    output.root_vector_units = len(tables.head_item_ids) + len(tables.desc_item_ids)
    return output
