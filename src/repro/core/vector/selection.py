"""Vectorized selection pass (Stage 2 of PaX3).

The qualifier values arrive from outside (the stage-1 fixpoint), so this
is the pure top-down half: encode the provided per-element values into
code columns once, run the whole-column selection sweep, decode the final
column.  Operation accounting matches the kernel, which charges skipped
(concretely dead) elements too — both engines report
``n_elements * (n_steps + 1)``.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.booleans.formula import FormulaLike
from repro.core.kernel.tables import plan_tables
from repro.core.selection import FragmentSelectionOutput
from repro.core.vector.algebra import CodeSpace
from repro.core.vector.encode import vector_fragment
from repro.core.vector.program import vector_program
from repro.core.vector.walk import (
    emit_finals,
    emit_virtual_vectors,
    selection_code_columns,
)
from repro.fragments.fragment import Fragment
from repro.xmltree.flat import FlatFragment
from repro.xmltree.nodes import NodeId
from repro.xpath.plan import QueryPlan

__all__ = ["evaluate_fragment_selection_vector"]


def evaluate_fragment_selection_vector(
    fragment: Fragment,
    flat: FlatFragment,
    plan: QueryPlan,
    qual_provider: Optional[Callable[[NodeId], Sequence[FormulaLike]]],
    init_vector: Sequence[FormulaLike],
    is_root_fragment: bool,
) -> FragmentSelectionOutput:
    """Top-down selection pass over the window encoding."""
    output = FragmentSelectionOutput(fragment_id=fragment.fragment_id)
    vf = vector_fragment(flat)
    np = vf.np
    tables = plan_tables(flat, plan)
    program = vector_program(vf, plan, tables)
    n_steps = plan.n_steps
    space = CodeSpace(np)

    n_quals = len(tables.sel_quals)
    qual_cols = [np.zeros(vf.n, dtype=np.int64) for _ in range(n_quals)]
    if n_quals and qual_provider is not None:
        node_ids = flat.node_ids
        for index in vf.elem_idx.tolist():
            values = qual_provider(node_ids[index])
            for slot, value in enumerate(values):
                if slot >= n_quals:  # pragma: no cover - defensive
                    break
                qual_cols[slot][index] = space.encode(value)

    cols = selection_code_columns(
        vf,
        space,
        tables,
        program,
        init_vector,
        is_root_fragment and not plan.absolute,
        qual_cols,
    )

    emit_finals(space, cols[n_steps], flat.node_ids, output.answers, output.candidates)
    emit_virtual_vectors(space, cols, flat, output.virtual_parent_vectors)

    output.operations = flat.n_elements * (n_steps + 1)
    return output
