"""Numpy accelerator tier: whole-column window kernels over FlatFragment.

The third engine (``--engine vector``) evaluates the per-fragment passes as
vectorized operations over the XPath-accelerator window encoding — pre/post
order, level and per-tag index columns derived from
:class:`~repro.xmltree.flat.FlatFragment` — instead of per-node Python
dispatch.  See :mod:`repro.core.vector.encode` for the encoding and the
pass modules for the window algebra; results are bit-identical to both the
``kernel`` and ``reference`` engines and are differentially pinned to them
by the test suite and ``repro bench-core``.
"""

from repro.core.vector.encode import (
    numpy_available,
    require_numpy,
    vector_fragment,
)

__all__ = ["numpy_available", "require_numpy", "vector_fragment"]
