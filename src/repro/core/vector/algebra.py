"""Interned formula codes: boolean mask algebra over the hash-consed DAG.

The vector walks keep whole columns of int64 *codes* instead of columns of
Python objects: ``0`` is False, ``1`` is True, and every residual formula
of the hash-consed DAG (:mod:`repro.booleans.formula`) gets a small integer
on first appearance.  Concrete fragments therefore stay pure 0/1 integer
arrays end to end; symbolic rows (ancestors of virtual cut points, plus
whatever the init vector injects) resolve through the real ``conj``/``disj``
constructors exactly once per *distinct* operand pair — the pair memo plus
hash-consing make the column fold produce structurally identical formulas
to the kernel's per-node folds, in far fewer constructor calls.

Codes never leak: :meth:`CodeSpace.decode` returns the original Python
``bool``/formula objects (numpy ``bool_`` would break ``is_true``'s
``isinstance(value, bool)`` check, so outputs are always decoded).
"""

from __future__ import annotations

from typing import Dict, List

from repro.booleans.formula import conj, disj

__all__ = ["CodeSpace"]

#: codes are packed two-per-int64 in the unique-pair resolution; fragments
#: would need ~2**31 distinct residual formulas to overflow this
_PACK_SHIFT = 32
_PACK_MASK = (1 << _PACK_SHIFT) - 1


class CodeSpace:
    """One pass's bijection between formula values and int64 codes."""

    __slots__ = ("np", "_values", "_by_value", "_disj_memo", "_conj_memo")

    def __init__(self, np_module):
        self.np = np_module
        self._values: List[object] = [False, True]
        self._by_value: Dict[object, int] = {False: 0, True: 1}
        self._disj_memo: Dict[tuple, int] = {}
        self._conj_memo: Dict[tuple, int] = {}

    def encode(self, value) -> int:
        """The code of a Python bool or hash-consed formula."""
        if value is False:
            return 0
        if value is True:
            return 1
        code = self._by_value.get(value)
        if code is None:
            code = len(self._values)
            self._values.append(value)
            self._by_value[value] = code
        return code

    def decode(self, code: int):
        """The Python value of *code* (a plain bool for 0/1)."""
        return self._values[code]

    # -- scalar connectives -------------------------------------------------

    def disj_code(self, left: int, right: int) -> int:
        """``disj`` over codes, with the formula identities short-circuited."""
        if left == 0:
            return right
        if right == 0 or left == right:
            return left
        if left == 1 or right == 1:
            return 1
        key = (left, right)
        code = self._disj_memo.get(key)
        if code is None:
            code = self.encode(disj(self._values[left], self._values[right]))
            self._disj_memo[key] = code
        return code

    def conj_code(self, left: int, right: int) -> int:
        """``conj`` over codes, with the formula identities short-circuited."""
        if left == 0 or right == 0:
            return 0
        if left == 1:
            return right
        if right == 1 or left == right:
            return left
        key = (left, right)
        code = self._conj_memo.get(key)
        if code is None:
            code = self.encode(conj(self._values[left], self._values[right]))
            self._conj_memo[key] = code
        return code

    # -- column connectives -------------------------------------------------

    def _resolve_pairs(self, out, left, right, rest, scalar):
        """Route the residual×residual rows through *scalar*, one call per
        distinct (left, right) pair: pack both codes into one int64, unique
        them, resolve each unique pair once, scatter back."""
        np = self.np
        rows = np.nonzero(rest)[0]
        if not rows.size:
            return
        packed = (left[rows] << _PACK_SHIFT) | right[rows]
        unique, inverse = np.unique(packed, return_inverse=True)
        resolved = np.fromiter(
            (
                scalar(int(pair >> _PACK_SHIFT), int(pair & _PACK_MASK))
                for pair in unique
            ),
            dtype=np.int64,
            count=unique.size,
        )
        out[rows] = resolved[inverse]

    def disj_cols(self, left, right):
        """Elementwise :meth:`disj_code` over two code columns."""
        np = self.np
        out = left.copy()
        false_left = left == 0
        out[false_left] = right[false_left]
        out[(left == 1) | (right == 1)] = 1
        rest = (left >= 2) & (right >= 2) & (left != right)
        self._resolve_pairs(out, left, right, rest, self.disj_code)
        return out

    def conj_cols(self, left, right):
        """Elementwise :meth:`conj_code` over two code columns."""
        np = self.np
        out = left.copy()
        true_left = left == 1
        out[true_left] = right[true_left]
        out[(left == 0) | (right == 0)] = 0
        rest = (left >= 2) & (right >= 2) & (left != right)
        self._resolve_pairs(out, left, right, rest, self.conj_code)
        return out
