"""Column-at-a-time qualifier analysis (the bottom-up half, vectorized).

The kernel's reverse walk computes, per element, the EX vector of every
qualifier item plus the HEAD/DESC rows folded into the parent.  Items are
interned in topological order (suffix and nested-qualifier items always
have smaller ids — see :class:`repro.xpath.plan.QualItem`), so the same
recurrence runs column at a time with no tree walk at all:

* EMPTY — the terminal test column (shared mask from the program);
* CHILD — scatter: candidate rows from the per-tag index whose suffix
  column holds mark their parents;
* DESC — the descendant-or-self window aggregation: one prefix sum over
  the suffix column, differenced at ``(pre, post)``;
* SELFQUAL — boolean mask algebra over the already-computed item columns,
  following the hash-consed qualifier expression tree.

Symbolic rows — ancestors-or-self of virtual cut points, where EX values
mention sub-fragment variables — are recomputed exactly as the kernel does,
bottom-up in decreasing pre-order, folding virtual variables and child rows
in document order so residual formulas come out structurally identical.
Everything below those rows reads straight from the concrete columns (a
non-ancestor's window can never contain a symbolic row).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.booleans.formula import FormulaLike, conj, disj
from repro.core.kernel.tables import (
    ITEM_CHILD,
    ITEM_DESC,
    ITEM_EMPTY_TEXT,
    ITEM_EMPTY_TRUE,
    ITEM_EMPTY_VAL,
    PlanTables,
)
from repro.core.variables import desc_var, head_var
from repro.core.vector.encode import VectorFragment
from repro.core.vector.program import VectorProgram
from repro.xmltree.flat import FlatFragment
from repro.xpath.plan import CHILD, DESC, EMPTY, QueryPlan, evaluate_qual_expr

__all__ = ["QualAnalysis", "qualifier_analysis"]


class QualAnalysis:
    """One fragment's qualifier state, columnar where concrete."""

    __slots__ = (
        "ex_cols",
        "sel_qual_cols",
        "sym_qual_values",
        "root_head",
        "root_desc",
    )

    def __init__(self, ex_cols, sel_qual_cols, sym_qual_values, root_head, root_desc):
        #: per item, the boolean EX column (garbage at symbolic rows)
        self.ex_cols = ex_cols
        #: per selection qualifier, the boolean value column (idem)
        self.sel_qual_cols = sel_qual_cols
        #: flat index -> exact qualifier-value tuple at the symbolic rows
        self.sym_qual_values = sym_qual_values
        self.root_head = root_head
        self.root_desc = root_desc


def _qual_mask(np, expr, ex_cols, n):
    """A qualifier expression as boolean mask algebra over item columns."""
    kind = expr[0]
    if kind == "item":
        return ex_cols[expr[1]]
    if kind == "not":
        return ~_qual_mask(np, expr[1], ex_cols, n)
    out = None
    if kind == "and":
        for part in expr[1]:
            mask = _qual_mask(np, part, ex_cols, n)
            out = mask if out is None else out & mask
        return np.ones(n, dtype=bool) if out is None else out
    # "or" — evaluate_qual_expr raises on anything else, mirror its shapes
    for part in expr[1]:
        mask = _qual_mask(np, part, ex_cols, n)
        out = mask if out is None else out | mask
    return np.zeros(n, dtype=bool) if out is None else out


def qualifier_analysis(
    vf: VectorFragment,
    flat: FlatFragment,
    plan: QueryPlan,
    tables: PlanTables,
    program: VectorProgram,
) -> QualAnalysis:
    """Evaluate every qualifier item of *plan* over *vf*, column at a time."""
    np = vf.np
    n = vf.n
    n_items = plan.n_items

    # ---------------------------------------------------- concrete columns
    ex_cols: List[object] = [None] * n_items
    for item in plan.items:
        item_id = item.item_id
        kind = item.kind
        if kind == EMPTY:
            col = program.empty_cols[item_id]
        elif kind == CHILD:
            # Scatter: candidate rows (per-tag index) whose suffix holds
            # mark their parents.  Duplicate parents collapse via fancy
            # assignment — exactly the agg_head disjunction, concretely.
            rows = program.child_rows[item_id]
            col = np.zeros(n, dtype=bool)
            if rows.size:
                holds = ex_cols[item.rest][rows] & vf.parent_ge0[rows]
                col[vf.parent[rows[holds]]] = True
        elif kind == DESC:
            # EX = suffix holds on a descendant-or-self: the (pre, post)
            # window aggregation over the suffix column.
            col = vf.window_any_incl(ex_cols[item.rest])
        else:  # SELFQUAL
            col = _qual_mask(np, item.qual, ex_cols, n) & ex_cols[item.rest]
        ex_cols[item_id] = col

    sel_qual_cols = [
        _qual_mask(np, qual, ex_cols, n) for qual in tables.sel_quals
    ]

    # ------------------------------------------------------- symbolic rows
    # Ancestors-or-self of virtual cut points carry sub-fragment variables;
    # replay the kernel's per-node recurrence there (bottom-up), reading
    # concrete child contributions from the columns above.
    sym_qual_values: Dict[int, tuple] = {}
    sym_rows: Dict[int, tuple] = {}
    if vf.anc_idx.size:
        item_prog = tables.item_prog
        sel_quals = tables.sel_quals
        head_item_ids = tables.head_item_ids
        desc_item_ids = tables.desc_item_ids
        head_rest = tables.head_rest
        head_by_tag = tables.head_by_tag
        anc_mask = vf.anc_mask
        tag_ids = flat.tag_id
        text_norm = flat.text_norm
        numeric = flat.numeric
        virtual_at = flat.virtual_at
        subtree_size = flat.subtree_size

        # Sorted hit lists per item, for O(log n) child-window probes.
        nonzero_cache: Dict[int, object] = {}

        def window_holds(item_id: int, lo: int, hi: int) -> bool:
            hits = nonzero_cache.get(item_id)
            if hits is None:
                hits = nonzero_cache[item_id] = np.nonzero(ex_cols[item_id])[0]
            return np.searchsorted(hits, lo) < np.searchsorted(hits, hi)

        for index in vf.anc_idx.tolist():
            # -- child aggregation: virtuals first, then element children
            #    in document order, same fold order as both other engines
            agg_head: List[FormulaLike] = [False] * n_items
            agg_desc: List[FormulaLike] = [False] * n_items
            virtuals = virtual_at.get(index)
            if virtuals is not None:
                for child_fragment_id in virtuals:
                    for item_id in head_item_ids:
                        agg_head[item_id] = disj(
                            agg_head[item_id], head_var(child_fragment_id, item_id)
                        )
                    for item_id in desc_item_ids:
                        agg_desc[item_id] = disj(
                            agg_desc[item_id], desc_var(child_fragment_id, item_id)
                        )
            for child in flat.element_children(index):
                if anc_mask[child]:
                    _child_ex, child_head, child_desc = sym_rows[child]
                    for item_id in head_item_ids:
                        value = child_head[item_id]
                        if value is not False:
                            agg_head[item_id] = disj(agg_head[item_id], value)
                    for item_id in desc_item_ids:
                        value = child_desc[item_id]
                        if value is not False:
                            agg_desc[item_id] = disj(agg_desc[item_id], value)
                else:
                    for item_id in head_by_tag[tag_ids[child]]:
                        if ex_cols[head_rest[item_id]][child]:
                            agg_head[item_id] = disj(agg_head[item_id], True)
                    child_end = child + subtree_size[child]
                    for item_id in desc_item_ids:
                        if window_holds(item_id, child, child_end):
                            agg_desc[item_id] = disj(agg_desc[item_id], True)

            # -- EX row via the same compiled item program as the kernel
            ex: List[FormulaLike] = [False] * n_items
            for instr in item_prog:
                code = instr[0]
                if code == ITEM_CHILD:
                    ex[instr[1]] = agg_head[instr[1]]
                elif code == ITEM_DESC:
                    rest = instr[2]
                    ex[instr[1]] = disj(ex[rest], agg_desc[rest])
                elif code == ITEM_EMPTY_TEXT:
                    ex[instr[1]] = text_norm[index] == instr[2]
                elif code == ITEM_EMPTY_TRUE:
                    ex[instr[1]] = True
                elif code == ITEM_EMPTY_VAL:
                    value = numeric[index]
                    ex[instr[1]] = False if value is None else instr[2](value, instr[3])
                else:  # ITEM_SELFQUAL
                    ex[instr[1]] = conj(evaluate_qual_expr(instr[2], ex), ex[instr[3]])

            sym_qual_values[index] = tuple(
                evaluate_qual_expr(qual, ex) for qual in sel_quals
            )

            head_row: List[FormulaLike] = [False] * n_items
            for item_id in head_by_tag[tag_ids[index]]:
                value = ex[head_rest[item_id]]
                if value is not False:
                    head_row[item_id] = value
            desc_row: List[FormulaLike] = [False] * n_items
            for item_id in desc_item_ids:
                value = disj(ex[item_id], agg_desc[item_id])
                if value is not False:
                    desc_row[item_id] = value
            sym_rows[index] = (ex, head_row, desc_row)

    # ------------------------------------------------------------ root rows
    if vf.anc_idx.size:
        # Virtuals exist, so the root is an ancestor of one: exact rows.
        _root_ex, root_head, root_desc = sym_rows[0]
    else:
        root_head = [False] * n_items
        if n_items:
            for item_id in tables.head_by_tag[flat.tag_id[0]]:
                if ex_cols[tables.head_rest[item_id]][0]:
                    root_head[item_id] = True
        root_desc = [False] * n_items
        for item_id in tables.desc_item_ids:
            # disj(EX at the root, any EX below) = any hit in [0, n)
            if ex_cols[item_id].any():
                root_desc[item_id] = True

    return QualAnalysis(ex_cols, sel_qual_cols, sym_qual_values, root_head, root_desc)
