"""The accelerator window encoding: contiguous numpy columns per fragment.

An XPath-accelerator encoding of one fragment span, derived once from the
:class:`~repro.xmltree.flat.FlatFragment` columns:

``pre[i] = i``
    Pre-order rank — the flat index itself.
``post = pre + size``
    One past the last pre-order rank inside ``i``'s subtree, so node ``j``
    is a descendant-or-self of ``i`` exactly when ``pre[i] <= j < post[i]``
    — every axis step becomes a range predicate over these two columns.
``level``
    Depth below the fragment root (staircase-built from the subtree
    intervals), used to schedule symbolic descendant sweeps level by level.
``tag_starts`` / ``tag_rows``
    Per-tag sorted pre-order index: ``tag_rows`` holds all element rows
    grouped by ``tag_id`` (pre-order within each group) and ``tag_starts``
    the CSR offsets, so "the elements with tag t inside window (lo, hi)"
    is a ``searchsorted`` slice instead of a scan.

Instances hang off ``FlatFragment._vector``: the flat encodings are cached
on :class:`~repro.fragments.fragment_tree.Fragmentation` under the content
fingerprint, so epoch bumps, re-fragmentations and MVCC snapshot pinning
govern the vector columns for free — a pinned snapshot ``FlatFragment``
carries (and keeps alive) its own frozen vector columns.

numpy is optional at import time: only the ``vector`` engine needs it, and
:func:`require_numpy` turns its absence into an actionable error instead of
an ImportError traceback.  ``kernel``/``reference`` never import it.
"""

from __future__ import annotations

import operator
from typing import Dict, List, Optional

from repro.xmltree.flat import KIND_ELEMENT, FlatFragment

try:  # pragma: no cover - exercised via numpy_available() in both states
    import numpy as _np
except ImportError:  # pragma: no cover - container images ship numpy
    _np = None

__all__ = [
    "VectorFragment",
    "numpy_available",
    "require_numpy",
    "vector_fragment",
]

_MISSING_NUMPY_HINT = (
    "the 'vector' engine needs numpy, which is not importable in this"
    " environment. Install it (`pip install numpy`, or `pip install .` which"
    " declares it) or pick another engine: pass engine='kernel' /"
    " --engine kernel (or 'reference'), or set REPRO_FRAGMENT_ENGINE=kernel."
)

#: numeric comparison ops over whole columns; same op strings as
#: repro.xpath.runtime._NUMERIC_OPS, but the operator module versions
#: broadcast over numpy arrays (NaN rows are masked out by has_numeric
#: before these run, matching the kernel's explicit None check)
_COLUMN_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: caps on the per-fragment caches of plan-derived columns; like the kernel
#: dispatch tables, an unbounded query stream must not grow them forever
_MAX_TEST_MASKS = 512
_MAX_PROGRAMS = 256


def numpy_available() -> bool:
    """Whether the vector engine can run in this process."""
    return _np is not None


def require_numpy():
    """The numpy module, or an actionable error naming the alternatives."""
    if _np is None:
        raise RuntimeError(_MISSING_NUMPY_HINT)
    return _np


class VectorFragment:
    """Window-encoding columns of one fragment span (see module docstring)."""

    __slots__ = (
        "np",
        "flat",
        "n",
        "pre",
        "size",
        "post",
        "level",
        "tag_id",
        "elem",
        "elem_idx",
        "parent",
        "parent_ge0",
        "text_code",
        "text_intern",
        "numeric",
        "has_numeric",
        "n_tags",
        "tag_index",
        "tag_starts",
        "tag_rows",
        "anc_idx",
        "anc_mask",
        "_level_groups",
        "_test_masks",
        "_programs",
    )

    def __init__(self, flat: FlatFragment):
        np = require_numpy()
        self.np = np
        self.flat = flat
        n = flat.n
        self.n = n
        pre = np.arange(n, dtype=np.int64)
        size = np.asarray(flat.subtree_size, dtype=np.int64)
        self.pre = pre
        self.size = size
        self.post = pre + size
        self.parent = np.asarray(flat.parent, dtype=np.int64)
        self.parent_ge0 = self.parent >= 0
        self.tag_id = np.asarray(flat.tag_id, dtype=np.int64)
        kind = np.asarray(flat.kind, dtype=np.int64)
        self.elem = kind == KIND_ELEMENT
        self.elem_idx = np.nonzero(self.elem)[0]

        # level[i] = number of strict ancestors of i inside the span: node j
        # covers the strict-descendant interval (j, j+size[j]) — one +1/-1
        # staircase and a cumsum instead of a parent-chain walk per node.
        stair = np.zeros(n + 1, dtype=np.int64)
        np.add.at(stair, pre + 1, 1)
        np.add.at(stair, self.post, -1)
        self.level = np.cumsum(stair[:n])

        # Interned direct-text codes: text()=s tests become one integer
        # column comparison.  Text nodes carry -1 (they have no ex values).
        intern: Dict[str, int] = {}
        codes = np.full(n, -1, dtype=np.int64)
        for index, value in enumerate(flat.text_norm):
            if value is not None:
                code = intern.get(value)
                if code is None:
                    code = intern[value] = len(intern)
                codes[index] = code
        self.text_code = codes
        self.text_intern = intern

        # Numeric column with NaN for non-numeric rows; has_numeric is the
        # kernel's `value is None` check as a mask (NaN compares are wrong
        # for `!=`, so every val() test is ANDed with it).
        numeric = np.full(n, np.nan, dtype=np.float64)
        for index, value in enumerate(flat.numeric):
            if value is not None:
                numeric[index] = value
        self.numeric = numeric
        self.has_numeric = ~np.isnan(numeric)

        # Per-tag sorted pre-order index (CSR layout over element rows).
        n_tags = len(flat.tags)
        self.n_tags = n_tags
        self.tag_index = {tag: tid for tid, tag in enumerate(flat.tags)}
        if self.elem_idx.size:
            order = np.argsort(self.tag_id[self.elem_idx], kind="stable")
            self.tag_rows = self.elem_idx[order]
            self.tag_starts = np.searchsorted(
                self.tag_id[self.tag_rows], np.arange(n_tags + 1)
            )
        else:  # pragma: no cover - a span always contains its root element
            self.tag_rows = self.elem_idx
            self.tag_starts = np.zeros(n_tags + 1, dtype=np.int64)

        # Ancestors-or-self of virtual cut points: the only rows whose
        # qualifier values can be symbolic (depend on sub-fragment
        # variables).  A descendant of a non-member is a non-member, so the
        # window of a non-member row never sees a symbolic row and the
        # concrete columns are exact everywhere outside this set.
        anc = np.zeros(n, dtype=bool)
        parents = flat.parent
        for at in flat.virtual_indices:
            walk = at
            while walk >= 0 and not anc[walk]:
                anc[walk] = True
                walk = parents[walk]
        self.anc_mask = anc
        self.anc_idx = np.nonzero(anc)[0][::-1]  # decreasing = bottom-up

        self._level_groups: Optional[List[object]] = None
        #: per-item terminal test columns keyed by the normalized test tuple
        #: — shared across every plan and every fused wave on this fragment
        self._test_masks: Dict[tuple, object] = {}
        #: compiled window programs keyed by plan fingerprint (the dedup key
        #: the kernel tables and batch tier already use)
        self._programs: Dict[str, object] = {}

    # -- window primitives --------------------------------------------------

    def window_any_incl(self, col):
        """Per row ``i``: does ``col`` hold anywhere in ``[i, post[i])``?

        The descendant-or-self aggregation as one prefix sum: with
        ``csum[k] = sum(col[:k])``, the window ``[pre, post)`` is non-empty
        exactly when ``csum[post] - csum[pre] > 0``.
        """
        np = self.np
        csum = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(col, dtype=np.int64, out=csum[1:])
        return (csum[self.post] - csum[self.pre]) > 0

    def cover_mask(self, marked_idx):
        """Per row ``i``: is some ancestor-or-self of ``i`` in *marked_idx*?

        The top-down dual of :meth:`window_any_incl`: each marked row ``j``
        covers its whole subtree interval ``[j, post[j])``; a +1/-1
        staircase over the interval endpoints and a cumsum resolve all rows
        at once (the staircase pruning of the window technique).
        """
        np = self.np
        stair = np.zeros(self.n + 1, dtype=np.int64)
        if marked_idx.size:
            np.add.at(stair, marked_idx, 1)
            np.add.at(stair, self.post[marked_idx], -1)
        return np.cumsum(stair[: self.n]) > 0

    def rows_with_tag(self, tag: Optional[str]):
        """Element rows matching *tag* in pre-order (all elements if None)."""
        if tag is None:
            return self.elem_idx
        tid = self.tag_index.get(tag)
        if tid is None:
            return self.elem_idx[:0]
        return self.tag_rows[self.tag_starts[tid] : self.tag_starts[tid + 1]]

    def level_groups(self):
        """Element rows grouped by level, ascending (for symbolic sweeps)."""
        groups = self._level_groups
        if groups is None:
            np = self.np
            rows = self.elem_idx
            levels = self.level[rows]
            order = np.argsort(levels, kind="stable")
            rows = rows[order]
            levels = levels[order]
            top = int(levels[-1]) if rows.size else -1
            bounds = np.searchsorted(levels, np.arange(top + 2))
            groups = [
                rows[bounds[depth] : bounds[depth + 1]] for depth in range(top + 1)
            ]
            self._level_groups = groups
        return groups

    # -- terminal test columns (shared across plans and waves) --------------

    def test_mask(self, test: Optional[tuple]):
        """Boolean column of one EMPTY-item terminal test.

        ``None`` is the always-true test (the element mask); ``("text", "=",
        s)`` compares the interned text codes; ``("val", op, x)`` masks the
        numeric column.  Columns are cached by test tuple, so every plan in
        a wave that mentions ``text() = "goog"`` scans one shared mask.
        """
        if test is None:
            return self.elem
        col = self._test_masks.get(test)
        if col is None:
            np = self.np
            if test[0] == "text":
                code = self.text_intern.get(test[2], -2)
                col = self.text_code == code
            else:  # "val"
                col = self.has_numeric & _COLUMN_OPS[test[1]](self.numeric, test[2])
            cache = self._test_masks
            while len(cache) >= _MAX_TEST_MASKS:
                cache.pop(next(iter(cache)))
            cache[test] = col
        return col

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VectorFragment {self.flat.fragment_id} nodes={self.n}"
            f" tags={self.n_tags} symbolic={self.anc_idx.size}>"
        )


def vector_fragment(flat: FlatFragment) -> VectorFragment:
    """The (cached) window encoding of *flat*; requires numpy."""
    vector = flat._vector
    if vector is None:
        vector = flat._vector = VectorFragment(flat)
    return vector
