"""Plans compiled to window-program columns over one VectorFragment.

The kernel compiles a plan to per-tag dispatch *tables*
(:mod:`repro.core.kernel.tables`); the vector tier compiles one step
further, to whole *columns*:

* ``ok_cols[position]`` — for every CHILD selection step, the boolean
  column "an element whose tag this step matches" (``sel_child_ok``
  broadcast through the tag_id column once, instead of per node);
* ``child_rows[item_id]`` — for every CHILD qualifier item, the candidate
  element rows from the per-tag sorted index (a ``searchsorted`` CSR slice,
  or all elements for a wildcard);
* ``empty_cols[item_id]`` — for every EMPTY qualifier item, the terminal
  test column from the fragment-shared test-mask cache, so duplicate tests
  across the plans of a fused wave all scan one array.

Programs are cached on the VectorFragment keyed by the plan's normalized
fingerprint — the same dedup key the kernel tables and the batch tier use.
"""

from __future__ import annotations

from typing import Dict

from repro.core.kernel.tables import SEL_CHILD, PlanTables
from repro.core.vector.encode import _MAX_PROGRAMS, VectorFragment
from repro.xpath.plan import CHILD, EMPTY, QueryPlan

__all__ = ["VectorProgram", "vector_program"]


class VectorProgram:
    """One plan's window columns over one fragment's encoding."""

    __slots__ = ("ok_cols", "child_rows", "empty_cols")

    def __init__(self, vf: VectorFragment, plan: QueryPlan, tables: PlanTables):
        np = vf.np
        n = vf.n

        ok_cols: Dict[int, object] = {}
        if tables.sel_child_ok:
            # (n_tags, n_steps+1) gate table -> one bool column per CHILD step
            ok_table = np.asarray(tables.sel_child_ok, dtype=bool)
            rows = vf.elem_idx
            row_tags = vf.tag_id[rows]
            for instr in tables.sel_prog:
                if instr[0] == SEL_CHILD:
                    position = instr[1]
                    col = np.zeros(n, dtype=bool)
                    col[rows] = ok_table[row_tags, position]
                    ok_cols[position] = col
        else:  # pragma: no cover - a span always contains its root element
            for instr in tables.sel_prog:
                if instr[0] == SEL_CHILD:
                    ok_cols[instr[1]] = np.zeros(n, dtype=bool)
        self.ok_cols = ok_cols

        child_rows: Dict[int, object] = {}
        empty_cols: Dict[int, object] = {}
        for item in plan.items:
            if item.kind == CHILD:
                child_rows[item.item_id] = vf.rows_with_tag(item.tag)
            elif item.kind == EMPTY:
                empty_cols[item.item_id] = vf.test_mask(item.test)
        self.child_rows = child_rows
        self.empty_cols = empty_cols


def vector_program(vf: VectorFragment, plan: QueryPlan, tables: PlanTables) -> VectorProgram:
    """The (cached, bounded) window program of *plan* over *vf*."""
    key = plan.fingerprint
    cache = vf._programs
    program = cache.get(key)
    if program is None:
        program = VectorProgram(vf, plan, tables)
        while len(cache) >= _MAX_PROGRAMS:
            cache.pop(next(iter(cache)))  # FIFO, matching the kernel tables
        cache[key] = program
    return program
