"""The top-down selection half as whole-column code sweeps.

Selection prefix vectors depend only on the parent's vector and the current
element, so the per-position recurrence runs column at a time over the
formula-code encoding (:mod:`repro.core.vector.algebra`):

* CHILD — one parent gather (``padded[parent]``; the fragment root's
  ``-1`` parent indexes the appended init code) masked by the precompiled
  per-tag gate column;
* DESC — when the inputs are concrete 0/1, the staircase cover mask: the
  marked rows' subtree intervals cover exactly the rows whose
  ancestor-or-self chain hits a mark (plus the init short-circuit).  With
  symbolic codes in play, a level-by-level top-down sweep folds
  ``disj(parent_value, below)`` one whole level at a time;
* SELFQUAL — an elementwise code conjunction with the qualifier value
  column.

The emit helpers decode codes back to Python bools / hash-consed formulas
in pre-order, so answers, candidates and the virtual parent vectors leave
the site bit-identical to the kernel's.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.booleans.formula import FormulaLike
from repro.core.kernel.tables import SEL_CHILD, SEL_DESC, PlanTables
from repro.core.vector.algebra import CodeSpace
from repro.core.vector.encode import VectorFragment
from repro.core.vector.program import VectorProgram
from repro.xmltree.flat import FlatFragment

__all__ = ["selection_code_columns", "emit_finals", "emit_virtual_vectors"]


def selection_code_columns(
    vf: VectorFragment,
    space: CodeSpace,
    tables: PlanTables,
    program: VectorProgram,
    init_vector: Sequence[FormulaLike],
    anchor_at_root: bool,
    qual_cols: Sequence[object],
) -> List[object]:
    """All ``n_steps + 1`` selection code columns of one fragment."""
    np = vf.np
    n = vf.n
    parent = vf.parent
    elem = vf.elem
    init_codes = [space.encode(value) for value in init_vector]

    cols: List[object] = [None] * (len(tables.sel_prog) + 1)
    col = np.zeros(n, dtype=np.int64)
    if anchor_at_root and n:
        col[0] = 1  # vector[0] = is_ctx, at the fragment root only
    cols[0] = col

    for instr in tables.sel_prog:
        code = instr[0]
        position = instr[1]
        previous = cols[position - 1]
        if code == SEL_CHILD:
            # The fragment root's parent is -1: appending the init code
            # makes the gather read it there, everyone else reads their
            # parent's column entry.
            padded = np.append(previous, init_codes[position - 1])
            col = np.where(program.ok_cols[position], padded[parent], 0)
        elif code == SEL_DESC:
            init_code = init_codes[position]
            if init_code <= 1 and not (previous > 1).any():
                # Concrete: value(v) = init | any(previous on the
                # ancestor-or-self chain) — the staircase cover mask.
                if init_code == 1:
                    col = elem.astype(np.int64)
                else:
                    covered = vf.cover_mask(np.nonzero(previous == 1)[0])
                    col = (covered & elem).astype(np.int64)
            else:
                # Symbolic: parents precede children level by level, so
                # each level folds disj(parent_value, below) in one column
                # operation (operand order matches the kernel).
                col = np.zeros(n, dtype=np.int64)
                at_root = True
                for group in vf.level_groups():
                    if at_root:
                        col[0] = space.disj_code(init_code, int(previous[0]))
                        at_root = False
                    else:
                        col[group] = space.disj_cols(
                            col[parent[group]], previous[group]
                        )
        else:  # SEL_SELFQUAL
            col = space.conj_cols(previous, qual_cols[instr[2]])
        cols[position] = col
    return cols


def emit_finals(
    space: CodeSpace,
    final_col,
    node_ids: Sequence,
    answers: List,
    candidates: Dict,
) -> None:
    """Split the final column into answers / residual candidates, pre-order."""
    np = space.np
    rows = np.nonzero(final_col)[0].tolist()
    if not rows:
        return
    codes = final_col[rows].tolist()
    for index, code in zip(rows, codes):
        if code == 1:
            answers.append(node_ids[index])
        else:
            candidates[node_ids[index]] = space.decode(code)


def emit_virtual_vectors(
    space: CodeSpace,
    cols: Sequence[object],
    flat: FlatFragment,
    out: Dict[str, List[FormulaLike]],
) -> None:
    """Decode the selection vector at every virtual cut point, pre-order."""
    virtual_at = flat.virtual_at
    if not virtual_at:
        return
    for at in flat.virtual_indices:
        values = [space.decode(int(col[at])) for col in cols]
        for child_fragment_id in virtual_at[at]:
            out[child_fragment_id] = list(values)
