"""Vectorized combined pass (PaX2 Stage 1).

The kernel's combined pass runs the selection half first and parks ``qz:``
placeholders wherever a qualifier value is consulted, binding and resolving
them after its reverse walk.  The vector pass flips the order: the
qualifier analysis runs first (column at a time), so the selection sweep
conjoins the *actual* qualifier values directly and no placeholder
environment is needed.  Both schemes produce structurally identical
formulas: the bindings are placeholder-free, so resolution is a single
substitution, and the hash-consed connectives flatten n-ary combinations
the same way regardless of fold staging (see
:mod:`repro.booleans.formula`).  Answers, candidates, the root HEAD/DESC
vectors, the virtual parent vectors and the operation accounting all come
out bit-identical to both other engines.
"""

from __future__ import annotations

from typing import Sequence

from repro.booleans.formula import FormulaLike
from repro.core.combined import FragmentCombinedOutput
from repro.core.kernel.tables import plan_tables
from repro.core.vector.algebra import CodeSpace
from repro.core.vector.encode import vector_fragment
from repro.core.vector.program import vector_program
from repro.core.vector.quals import qualifier_analysis
from repro.core.vector.walk import (
    emit_finals,
    emit_virtual_vectors,
    selection_code_columns,
)
from repro.fragments.fragment import Fragment
from repro.xmltree.flat import FlatFragment
from repro.xpath.plan import QueryPlan

__all__ = ["evaluate_fragment_combined_vector"]


def evaluate_fragment_combined_vector(
    fragment: Fragment,
    flat: FlatFragment,
    plan: QueryPlan,
    init_vector: Sequence[FormulaLike],
    is_root_fragment: bool,
) -> FragmentCombinedOutput:
    """Combined qualifier+selection pass over the window encoding."""
    output = FragmentCombinedOutput(fragment_id=fragment.fragment_id)
    vf = vector_fragment(flat)
    np = vf.np
    tables = plan_tables(flat, plan)
    program = vector_program(vf, plan, tables)
    n_items = plan.n_items
    n_steps = plan.n_steps
    space = CodeSpace(np)

    if plan.has_qualifiers:
        analysis = qualifier_analysis(vf, flat, plan, tables, program)
        # Qualifier value columns as formula codes: the concrete mask casts
        # to 0/1 directly; symbolic rows get their exact values interned.
        qual_cols = [col.astype(np.int64) for col in analysis.sel_qual_cols]
        for index, values in analysis.sym_qual_values.items():
            for slot, value in enumerate(values):
                qual_cols[slot][index] = space.encode(value)
        output.root_head = analysis.root_head
        output.root_desc = analysis.root_desc
    else:
        qual_cols = []
        output.root_head = [False] * n_items
        output.root_desc = [False] * n_items

    cols = selection_code_columns(
        vf,
        space,
        tables,
        program,
        init_vector,
        is_root_fragment and not plan.absolute,
        qual_cols,
    )

    emit_finals(space, cols[n_steps], flat.node_ids, output.answers, output.candidates)
    emit_virtual_vectors(space, cols, flat, output.virtual_parent_vectors)

    output.operations = flat.n_elements * max(1, n_items + n_steps + 1)
    output.root_vector_units = len(plan.head_item_ids) + len(plan.desc_item_ids)
    return output
