"""Stacked combined pass for a fused query wave (vector tier).

The batch orchestrators hand one wave of plans to a single call per
fragment.  The vector tier stacks the wave over *shared masks*: every
distinct plan's window program is compiled up front, which interns the
wave's terminal test columns, per-tag candidate rows and CHILD gate
columns in the fragment-level caches — duplicate spellings and repeated
predicates across the wave then all scan the same arrays, and each plan's
sweep is a handful of whole-column operations over them.  Per-query
outputs (answers, candidates, virtual vectors, accounting) are
bit-identical to running each plan alone, which is exactly the kernel
batch contract the differential tests pin.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.booleans.formula import FormulaLike
from repro.core.combined import FragmentCombinedOutput
from repro.core.kernel.tables import plan_tables
from repro.core.vector.combined import evaluate_fragment_combined_vector
from repro.core.vector.encode import vector_fragment
from repro.core.vector.program import vector_program
from repro.fragments.fragment import Fragment
from repro.xmltree.flat import FlatFragment
from repro.xpath.plan import QueryPlan

__all__ = ["evaluate_fragment_combined_vector_batch"]


def evaluate_fragment_combined_vector_batch(
    fragment: Fragment,
    flat: FlatFragment,
    plans: Sequence[QueryPlan],
    init_vectors: Sequence[Sequence[FormulaLike]],
    is_root_fragment: bool,
) -> List[FragmentCombinedOutput]:
    """Evaluate a whole wave of plans over one fragment's window encoding."""
    if not plans:
        return []
    if len(plans) > 1:
        # Canonical fingerprint order (the batch tier's dedup key): compile
        # every distinct program once so the wave shares its mask columns,
        # independent of how callers interleave duplicate spellings.
        vf = vector_fragment(flat)
        compiled = set()
        for slot in sorted(range(len(plans)), key=lambda q: plans[q].fingerprint):
            plan = plans[slot]
            if plan.fingerprint not in compiled:
                compiled.add(plan.fingerprint)
                vector_program(vf, plan, plan_tables(flat, plan))
    return [
        evaluate_fragment_combined_vector(
            fragment, flat, plan, init_vector, is_root_fragment
        )
        for plan, init_vector in zip(plans, init_vectors)
    ]
