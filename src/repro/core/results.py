"""Query results returned by the public engine API."""

from __future__ import annotations

from typing import Iterator, List

from repro.distributed.stats import RunStats
from repro.xmltree.nodes import XMLNode, XMLTree
from repro.xmltree.serializer import serialize_node

__all__ = ["QueryResult", "PartialAnswer"]


class QueryResult:
    """The answer of a query plus the run statistics that produced it.

    Answers are exposed three ways: as stable node ids (:attr:`answer_ids`),
    as live nodes of the queried tree (:meth:`nodes`), and as serialized XML
    snippets (:meth:`to_xml`).
    """

    def __init__(self, tree: XMLTree, stats: RunStats):
        self._tree = tree
        self.stats = stats

    @property
    def is_partial(self) -> bool:
        """True when some site stayed unreachable and the answer covers only
        the visited fragments (see :class:`PartialAnswer`)."""
        return bool(self.stats.incomplete)

    @property
    def answer_ids(self) -> List[int]:
        """Node ids of the answer, in document order."""
        return list(self.stats.answer_ids)

    def __len__(self) -> int:
        return len(self.stats.answer_ids)

    def __iter__(self) -> Iterator[XMLNode]:
        return iter(self.nodes())

    def __contains__(self, node_id: int) -> bool:
        return node_id in set(self.stats.answer_ids)

    def nodes(self) -> List[XMLNode]:
        """The answer as nodes of the queried tree, in document order."""
        return [self._tree.node(node_id) for node_id in self.stats.answer_ids]

    def texts(self) -> List[str]:
        """Direct text content of each answer node."""
        return [node.text() for node in self.nodes()]

    def to_xml(self, pretty: bool = False) -> List[str]:
        """Each answer node serialized as an XML snippet."""
        return [serialize_node(node, pretty=pretty) for node in self.nodes()]

    def summary(self) -> str:
        """The run-statistics summary (timing, traffic, visits)."""
        return self.stats.summary()

    def __repr__(self) -> str:
        return (
            f"<QueryResult {len(self)} answers via {self.stats.algorithm}"
            f" ({self.stats.communication_units} traffic units)>"
        )


class PartialAnswer(QueryResult):
    """A degraded answer: certain over the fragments that were reachable.

    Returned by the service when a site stays down past the request's
    budget.  The answers present are *sound* — every one of them is an
    answer of the complete query (stage-1 definite answers depend only on
    their own fragment plus coordinator-computed initialization) — but
    answers living on the missing fragments, and unresolved candidates of
    unreachable sites, are absent.  The run's ``stats.incomplete`` flag is
    set and such results are never cached as complete.
    """

    @property
    def missing_sites(self) -> List[str]:
        """Sites the evaluation could not reach before giving up."""
        return list(self.stats.missing_sites)

    @property
    def missing_fragments(self) -> List[str]:
        """Fragments whose answers may be absent from this result."""
        return list(self.stats.missing_fragments)

    def __repr__(self) -> str:
        return (
            f"<PartialAnswer {len(self)} answers via {self.stats.algorithm},"
            f" missing sites {', '.join(self.stats.missing_sites) or '?'}>"
        )
