"""Stage 1 of PaX3: partial evaluation of qualifiers over one fragment.

This is the paper's extension of ParBoX (Section 3.1): a single bottom-up
pass over the fragment computes, for every element node, the values of the
qualifier sub-queries; at virtual nodes the unknown values of the missing
sub-fragment are replaced by fresh Boolean variables, so the results are
residual formulas rather than constants.

The output of the pass is

* the HEAD/DESC vectors of the fragment's root — these are what the
  coordinator unifies bottom-up over the fragment tree (``evalFT``), and
* for every element node, the values of the qualifier expressions attached
  to the selection steps — this is the state Stage 2 consumes at the site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.booleans.formula import FormulaLike
from repro.core.variables import desc_var, head_var
from repro.fragments.fragment import Fragment
from repro.xmltree.nodes import NodeId, XMLNode
from repro.xpath.plan import QueryPlan
from repro.xpath.runtime import (
    QualAggregate,
    compute_qualifier_vectors,
    qualifier_values_for_selection,
)

__all__ = ["FragmentQualifierOutput", "evaluate_fragment_qualifiers", "virtual_qualifier_vectors"]


@dataclass
class FragmentQualifierOutput:
    """Result of the qualifier pass over one fragment."""

    fragment_id: str
    #: HEAD vector of the fragment root (indexed by item id)
    root_head: List[FormulaLike] = field(default_factory=list)
    #: DESC vector of the fragment root (indexed by item id)
    root_desc: List[FormulaLike] = field(default_factory=list)
    #: per element node: values of the SELFQUAL selection-step qualifiers
    qual_values: Dict[NodeId, Tuple[FormulaLike, ...]] = field(default_factory=dict)
    #: coarse operation count (elements processed x plan width)
    operations: int = 0
    #: number of traffic units if the root vectors were sent as-is
    root_vector_units: int = 0


def virtual_qualifier_vectors(
    plan: QueryPlan, child_fragment_id: str
) -> tuple[List[FormulaLike], List[FormulaLike]]:
    """The HEAD/DESC vectors standing in for an unevaluated sub-fragment.

    Each exchanged entry becomes a fresh variable named after the
    sub-fragment; entries never exchanged stay ``False`` (they are not read).
    """
    head: List[FormulaLike] = [False] * plan.n_items
    desc: List[FormulaLike] = [False] * plan.n_items
    for item_id in plan.head_item_ids:
        head[item_id] = head_var(child_fragment_id, item_id)
    for item_id in plan.desc_item_ids:
        desc[item_id] = desc_var(child_fragment_id, item_id)
    return head, desc


def evaluate_fragment_qualifiers(
    fragment: Fragment, plan: QueryPlan
) -> FragmentQualifierOutput:
    """Bottom-up partial evaluation of the qualifiers over *fragment*.

    The traversal is iterative (explicit stack) and visits every element of
    the fragment span exactly once, performing ``O(|Q|)`` work per node.
    """
    output = FragmentQualifierOutput(fragment_id=fragment.fragment_id)
    if not plan.has_qualifiers:
        output.root_head = [False] * plan.n_items
        output.root_desc = [False] * plan.n_items
        return output

    def new_aggregate(node: XMLNode) -> QualAggregate:
        """Aggregate seeded with the virtual children's variable vectors."""
        aggregate = QualAggregate(plan)
        for virtual in fragment.virtual_children_of(node):
            head, desc = virtual_qualifier_vectors(plan, virtual.fragment_id)
            aggregate.add_child(plan, head, desc)
        return aggregate

    root = fragment.root
    elements_processed = 0
    stack: list[tuple[XMLNode, object, QualAggregate]] = [
        (root, iter(fragment.real_element_children(root)), new_aggregate(root))
    ]
    root_vectors: tuple[List[FormulaLike], List[FormulaLike]] | None = None

    while stack:
        node, children_iter, aggregate = stack[-1]
        pushed = False
        for child in children_iter:
            stack.append(
                (child, iter(fragment.real_element_children(child)), new_aggregate(child))
            )
            pushed = True
            break
        if pushed:
            continue
        stack.pop()
        ex, head, desc = compute_qualifier_vectors(plan, node, aggregate)
        output.qual_values[node.node_id] = qualifier_values_for_selection(plan, ex)
        elements_processed += 1
        if stack:
            stack[-1][2].add_child(plan, head, desc)
        else:
            root_vectors = (head, desc)

    assert root_vectors is not None
    output.root_head, output.root_desc = root_vectors
    output.operations = elements_processed * max(1, plan.n_items)
    output.root_vector_units = len(plan.head_item_ids) + len(plan.desc_item_ids)
    return output
