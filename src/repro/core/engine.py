"""The public, user-facing query engine.

:class:`DistributedQueryEngine` ties everything together: it owns a
fragmentation (and hence the original tree), a placement of fragments onto
sites, and a default algorithm, and exposes ``execute()`` for queries plus a
few introspection helpers.

Example
-------
::

    from repro import DistributedQueryEngine, parse_xml, cut_by_size

    tree = parse_xml(open("catalog.xml").read())
    fragmentation = cut_by_size(tree, max_elements=5000)
    engine = DistributedQueryEngine(fragmentation, use_annotations=True)
    result = engine.execute("//item[price < 30]/name")
    for name in result.texts():
        print(name)
    print(result.summary())

The engine evaluates one query at a time through the synchronous simulated
network.  For many concurrent queries over the same fragmentation — with
per-site concurrency limits, admission control, result caching on the
normalized query and latency/throughput metrics — use :meth:`as_service` (or
:class:`repro.service.ServiceEngine` directly)::

    service = engine.as_service(max_in_flight=32)
    results = service.serve_batch(["//item/name"] * 100, concurrency=32)
    print(service.metrics.summary())
    print(service.cache.stats.summary())
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.core.batch import run_pax2_batch
from repro.core.common import QueryInput, ensure_plan
from repro.core.kernel.dispatch import ENGINES
from repro.core.naive import run_naive_centralized
from repro.core.parbox import run_parbox
from repro.core.pax2 import run_pax2
from repro.core.pax3 import run_pax3
from repro.core.pruning import relevant_fragments
from repro.core.results import QueryResult
from repro.distributed.placement import one_site_per_fragment
from repro.distributed.stats import RunStats
from repro.fragments.fragment_tree import Fragmentation
from repro.xpath.centralized import evaluate_centralized

__all__ = ["DistributedQueryEngine", "ALGORITHMS"]

#: algorithm name -> runner
ALGORITHMS = {
    "pax3": run_pax3,
    "pax2": run_pax2,
    "parbox": run_parbox,
    "naive": run_naive_centralized,
}

#: algorithms whose runners take no ``use_annotations`` parameter
_NO_ANNOTATION_ALGORITHMS = frozenset({"naive", "parbox"})

#: algorithms whose runners take no ``engine`` parameter (no per-fragment pass)
_NO_ENGINE_ALGORITHMS = frozenset({"naive"})


class DistributedQueryEngine:
    """Evaluate XPath queries over a fragmented, distributed XML tree.

    Parameters
    ----------
    fragmentation:
        The fragmented document (see :mod:`repro.fragments`).
    placement:
        Mapping ``fragment_id -> site_id``; defaults to one site per
        fragment, with the root fragment's site acting as the coordinator.
    algorithm:
        ``"pax2"`` (default, the paper's best algorithm), ``"pax3"``,
        ``"naive"``, or ``"parbox"`` (Boolean queries only).
    use_annotations:
        Enable the XPath-annotation optimization (fragment pruning and, for
        qualifier-free queries, concrete stack initialization).
    engine:
        Per-fragment pass implementation: ``"kernel"`` (columnar arrays,
        the default path) or ``"reference"`` (object-tree traversal);
        ``None`` defers to the process default
        (:func:`repro.core.kernel.dispatch.fragment_engine`).
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        placement: Optional[Mapping[str, str]] = None,
        algorithm: str = "pax2",
        use_annotations: bool = True,
        engine: Optional[str] = None,
    ):
        if algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}")
        if engine is not None and engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
        self.fragmentation = fragmentation
        self.placement = dict(placement) if placement else one_site_per_fragment(fragmentation)
        self.algorithm = algorithm
        self.use_annotations = use_annotations
        self.engine = engine

    # -- queries -----------------------------------------------------------

    def execute(
        self,
        query: QueryInput,
        algorithm: Optional[str] = None,
        use_annotations: Optional[bool] = None,
    ) -> QueryResult:
        """Evaluate a data-selecting query and return a :class:`QueryResult`."""
        stats = self.run(query, algorithm=algorithm, use_annotations=use_annotations)
        return QueryResult(self.fragmentation.tree, stats)

    def run(
        self,
        query: QueryInput,
        algorithm: Optional[str] = None,
        use_annotations: Optional[bool] = None,
    ) -> RunStats:
        """Evaluate a query and return the raw :class:`RunStats`."""
        name = algorithm or self.algorithm
        runner = ALGORITHMS[name]
        annotations = self.use_annotations if use_annotations is None else use_annotations
        kwargs = {}
        if name not in _NO_ENGINE_ALGORITHMS:
            kwargs["engine"] = self.engine
        if name not in _NO_ANNOTATION_ALGORITHMS:
            kwargs["use_annotations"] = annotations
        return runner(self.fragmentation, query, placement=self.placement, **kwargs)

    def run_batch(
        self,
        queries: Sequence[QueryInput],
        use_annotations: Optional[bool] = None,
    ) -> List[RunStats]:
        """Evaluate a wave of queries with one fused scan per fragment.

        PaX2 only (the engine's other algorithms fall back to a plain loop of
        :meth:`run`): stage 1 walks each relevant fragment once for the whole
        wave, duplicate queries share a kernel slot, and every query still
        gets the exact :class:`RunStats` its solo run would produce — see
        :func:`repro.core.batch.run_pax2_batch`.
        """
        annotations = self.use_annotations if use_annotations is None else use_annotations
        if self.algorithm != "pax2":
            return [self.run(query, use_annotations=annotations) for query in queries]
        return run_pax2_batch(
            self.fragmentation,
            queries,
            placement=self.placement,
            use_annotations=annotations,
            engine=self.engine,
        )

    def execute_batch(
        self,
        queries: Sequence[QueryInput],
        use_annotations: Optional[bool] = None,
    ) -> List[QueryResult]:
        """:meth:`run_batch`, with each RunStats wrapped as a QueryResult."""
        return [
            QueryResult(self.fragmentation.tree, stats)
            for stats in self.run_batch(queries, use_annotations=use_annotations)
        ]

    def execute_boolean(self, query: QueryInput) -> bool:
        """Evaluate a Boolean query with ParBoX and return its truth value."""
        stats = run_parbox(
            self.fragmentation, query, placement=self.placement, engine=self.engine
        )
        return bool(stats.answer_ids)

    def evaluate_centralized(self, query: QueryInput):
        """Evaluate against the original (un-fragmented) tree — ground truth."""
        return evaluate_centralized(self.fragmentation.tree, query)

    def refresh(self) -> None:
        """Re-fingerprint the document after an in-place edit.

        The kernel engine evaluates against columnar encodings cached on the
        fragmentation; mutating tree nodes in place between queries requires
        this call (or ``fragmentation.invalidate_flat()``) so the encodings
        are rebuilt — the same contract as the service layer's
        ``refresh_version``.  Re-fragmenting always starts fresh.
        """
        self.fragmentation.content_version(refresh=True)

    def as_service(self, **overrides):
        """A concurrent :class:`repro.service.ServiceEngine` over this engine's
        fragmentation, placement and defaults (see :mod:`repro.service`).

        The engine's algorithm/annotations defaults apply only when the
        caller passes neither an explicit ``config`` nor their own values.
        The returned service is the single-document facade over a full
        :class:`repro.service.ServiceHost`; to co-host this document with
        others behind one scheduler, use :meth:`register_with` (or build a
        ``ServiceHost`` and register fragmentations directly).
        """
        from repro.service.server import ServiceEngine

        if "config" not in overrides:
            overrides.setdefault("algorithm", self.algorithm)
            overrides.setdefault("use_annotations", self.use_annotations)
            overrides.setdefault("engine", self.engine)
        return ServiceEngine(self.fragmentation, placement=self.placement, **overrides)

    def register_with(self, host, name: str):
        """Register this engine's document with a multi-tenant service host.

        ``host`` is a :class:`repro.service.ServiceHost`; the engine's
        fragmentation and placement become document *name* in the host's
        catalog, served alongside the host's other tenants through the
        shared scheduler.  Returns the opened
        :class:`repro.service.DocumentSession`.
        """
        return host.register(name, self.fragmentation, placement=self.placement)

    # -- introspection --------------------------------------------------------

    def explain(self, query: QueryInput) -> str:
        """Describe how a query would be evaluated (plan + pruning decision)."""
        plan = ensure_plan(query)
        lines = [plan.describe(), ""]
        decision = relevant_fragments(self.fragmentation, plan)
        lines.append("fragments:")
        for fragment_id in self.fragmentation.fragment_ids():
            site = self.placement[fragment_id]
            status = "evaluate" if decision.keeps(fragment_id) else "prune"
            reason = decision.reasons.get(fragment_id, "")
            lines.append(f"  {fragment_id} @ {site}: {status} ({reason})")
        if not self.use_annotations:
            lines.append(
                "note: annotations disabled on this engine; all fragments would be evaluated"
            )
        return "\n".join(lines)

    def describe_fragmentation(self) -> str:
        """The fragmentation summary (fragments, sizes, placement)."""
        lines = [self.fragmentation.summary(), "", "placement:"]
        for fragment_id, site_id in sorted(self.placement.items()):
            lines.append(f"  {fragment_id} -> {site_id}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<DistributedQueryEngine algorithm={self.algorithm!r} "
            f"fragments={len(self.fragmentation)} annotations={self.use_annotations}>"
        )
