"""The NaiveCentralized baseline (Section 3 of the paper).

Ship every fragment to the query site, reassemble the document, evaluate the
query with the centralized algorithm.  The paper uses this baseline to show
why partial evaluation is needed: its network traffic is the size of the
whole tree rather than the size of the answer, and nothing runs in parallel.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional

from repro.core.common import (
    QueryInput,
    answer_subtree_nodes,
    build_network,
    ensure_plan,
    plan_units,
)
from repro.distributed.messages import MessageKind
from repro.distributed.network import Network
from repro.distributed.stats import RunStats, StageStats
from repro.fragments.fragment_tree import Fragmentation
from repro.fragments.reassembly import reassemble
from repro.xpath.centralized import evaluate_centralized

__all__ = ["run_naive_centralized"]


def run_naive_centralized(
    fragmentation: Fragmentation,
    query: QueryInput,
    placement: Optional[Mapping[str, str]] = None,
    network: Optional[Network] = None,
) -> RunStats:
    """Evaluate *query* by shipping all fragments to the coordinator."""
    plan = ensure_plan(query)
    if network is None:
        network = build_network(fragmentation, placement)
    coordinator_id = network.coordinator_id

    stats = RunStats(algorithm="NaiveCentralized", query=plan.source)
    stats.fragments_evaluated = fragmentation.fragment_ids()
    stage = StageStats(name="ship-and-evaluate")

    site_ids = network.sites_holding(fragmentation.fragment_ids())
    for site_id in site_ids:
        site = network.sites[site_id]
        fragment_ids = network.fragments_on(site_id)
        network.send(
            coordinator_id, site_id, MessageKind.EXEC_REQUEST,
            units=plan_units(plan) * len(fragment_ids),
            description="naive: request fragments",
        )
        shipped_nodes = 0
        with site.visit("naive:ship"):
            for fragment_id in fragment_ids:
                shipped_nodes += fragmentation[fragment_id].node_count()
        network.send(
            site_id, coordinator_id, MessageKind.FRAGMENT_SHIPMENT, shipped_nodes,
            description="naive: whole fragments",
        )

    times = [network.sites[sid].stage_seconds.get("naive:ship", 0.0) for sid in site_ids]
    stage.parallel_seconds = max(times) if times else 0.0
    stage.total_seconds = sum(times)
    stage.sites_involved = len(site_ids)

    # Coordinator-side: reassemble the document and run the centralized
    # evaluator.  Both are charged to the coordinator (nothing is parallel).
    started = time.perf_counter()
    assembled = reassemble(fragmentation)
    result = evaluate_centralized(assembled, plan)
    stage.coordinator_seconds = time.perf_counter() - started
    stats.stages.append(stage)

    # Reassembly preserves the original node ids (not just document order —
    # after in-place mutations ids are no longer a dense pre-order
    # numbering), so results are comparable across algorithms directly.
    stats.answer_ids = sorted(result.answer_ids)
    stats.answer_nodes_shipped = answer_subtree_nodes(fragmentation.tree, stats.answer_ids)
    network.collect_stats(stats)
    stats.notes = "all fragments shipped to the coordinator"
    return stats
