"""The paper's contribution: PaX3, PaX2, ParBoX and their optimizations.

Public entry points:

* :class:`repro.core.engine.DistributedQueryEngine` — the user-facing API,
* :func:`repro.core.pax3.run_pax3`, :func:`repro.core.pax2.run_pax2` — the
  two partial-evaluation algorithms,
* :func:`repro.core.parbox.run_parbox` — the Boolean-query baseline of [5],
* :func:`repro.core.naive.run_naive_centralized` — the ship-everything
  baseline,
* :mod:`repro.core.pruning` — the XPath-annotation optimization.
"""

from repro.core.engine import DistributedQueryEngine
from repro.core.results import PartialAnswer, QueryResult
from repro.core.pax3 import run_pax3
from repro.core.pax2 import run_pax2
from repro.core.batch import run_pax2_batch
from repro.core.parbox import run_parbox
from repro.core.naive import run_naive_centralized
from repro.core.pruning import relevant_fragments, initial_vector_from_labels

__all__ = [
    "DistributedQueryEngine",
    "PartialAnswer",
    "QueryResult",
    "run_pax3",
    "run_pax2",
    "run_pax2_batch",
    "run_parbox",
    "run_naive_centralized",
    "relevant_fragments",
    "initial_vector_from_labels",
]
