"""Fragmentation of XML trees.

A tree is decomposed into disjoint *fragments*; each fragment can be placed
on a different site.  The decomposition induces a *fragment tree*, and every
edge of that fragment tree can be annotated with the label path connecting
the two fragment roots (the paper's XPath-annotations, Section 5).

Fragments reference the nodes of the original tree (no copying): a fragment
is its root node plus the knowledge of which descendant nodes are roots of
child fragments (the *virtual nodes*).  This keeps node identifiers stable
across the centralized ground truth and the distributed evaluation.
"""

from repro.fragments.fragment import Fragment, VirtualNode
from repro.fragments.fragment_tree import Fragmentation, FragmentationError, build_fragmentation
from repro.fragments.fragmenters import (
    cut_at_nodes,
    cut_by_size,
    cut_matching,
    cut_random,
    cut_top_level,
)
from repro.fragments.reassembly import reassemble
from repro.fragments.annotations import edge_annotation, root_label_path

__all__ = [
    "Fragment",
    "VirtualNode",
    "Fragmentation",
    "FragmentationError",
    "build_fragmentation",
    "cut_at_nodes",
    "cut_by_size",
    "cut_matching",
    "cut_random",
    "cut_top_level",
    "reassemble",
    "edge_annotation",
    "root_label_path",
]
