"""A single fragment of a fragmented XML tree."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.xmltree.nodes import NodeId, XMLNode

__all__ = ["Fragment", "VirtualNode"]


@dataclass(frozen=True)
class VirtualNode:
    """Placeholder for a sub-fragment hanging below a node of this fragment.

    ``parent`` is the node of *this* fragment under which the sub-fragment's
    root sits in the original tree; ``fragment_id`` names the sub-fragment;
    ``root_node_id`` is the (globally stable) id of the sub-fragment's root.
    The label of that root is deliberately *not* exposed: in the paper's
    setting a site only knows that "some fragment hangs here".
    """

    parent: XMLNode
    fragment_id: str
    root_node_id: NodeId


class Fragment:
    """A fragment: a subtree of the original tree minus its sub-fragments.

    The fragment *span* is the set of nodes reachable from :attr:`root`
    without entering a sub-fragment.  Traversal helpers below respect that
    boundary; algorithm code never touches a node outside the span.
    """

    def __init__(
        self,
        fragment_id: str,
        root: XMLNode,
        parent_id: Optional[str] = None,
    ):
        self.fragment_id = fragment_id
        self.root = root
        self.parent_id = parent_id
        #: node id of a sub-fragment root -> that sub-fragment's id
        self.virtual_children: Dict[NodeId, str] = {}
        self._element_count: Optional[int] = None
        self._node_count: Optional[int] = None

    # -- structure -----------------------------------------------------------

    def add_virtual_child(self, root_node_id: NodeId, fragment_id: str) -> None:
        """Register a direct sub-fragment rooted at *root_node_id*."""
        self.virtual_children[root_node_id] = fragment_id
        self._element_count = None
        self._node_count = None

    def invalidate_counts(self) -> None:
        """Drop the cached span sizes after an in-place span mutation."""
        self._element_count = None
        self._node_count = None

    def is_leaf(self) -> bool:
        """A leaf fragment has no sub-fragments (hence no virtual nodes)."""
        return not self.virtual_children

    def is_root_fragment(self) -> bool:
        return self.parent_id is None

    # -- traversal -------------------------------------------------------------

    def is_virtual(self, node: XMLNode) -> bool:
        """Whether *node* is the root of a sub-fragment (a virtual node here)."""
        return node.node_id in self.virtual_children

    def real_children(self, node: XMLNode) -> list[XMLNode]:
        """Children of *node* that belong to this fragment's span."""
        return [child for child in node.children if child.node_id not in self.virtual_children]

    def real_element_children(self, node: XMLNode) -> list[XMLNode]:
        """Element children of *node* within the span."""
        return [
            child
            for child in node.children
            if child.is_element and child.node_id not in self.virtual_children
        ]

    def virtual_children_of(self, node: XMLNode) -> list[VirtualNode]:
        """Virtual nodes hanging directly below *node*."""
        result = []
        for child in node.children:
            fragment_id = self.virtual_children.get(child.node_id)
            if fragment_id is not None:
                result.append(VirtualNode(node, fragment_id, child.node_id))
        return result

    def iter_span(self) -> Iterator[XMLNode]:
        """All nodes of the span (elements and text), in document order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            for child in reversed(node.children):
                if child.node_id not in self.virtual_children:
                    stack.append(child)

    def iter_span_elements(self) -> Iterator[XMLNode]:
        """Element nodes of the span, in document order."""
        return (node for node in self.iter_span() if node.is_element)

    # -- accounting --------------------------------------------------------------

    def node_count(self) -> int:
        """Number of nodes in the span."""
        if self._node_count is None:
            self._node_count = sum(1 for _ in self.iter_span())
        return self._node_count

    def element_count(self) -> int:
        """Number of element nodes in the span."""
        if self._element_count is None:
            self._element_count = sum(1 for _ in self.iter_span_elements())
        return self._element_count

    def approximate_bytes(self) -> int:
        """Approximate serialized size of the span."""
        total = 0
        for node in self.iter_span():
            if node.is_element:
                total += 2 * len(node.tag or "") + 5
            else:
                total += len(node.value or "")
        return total

    def __repr__(self) -> str:
        return (
            f"<Fragment {self.fragment_id} root={self.root.label!r} "
            f"parent={self.parent_id} virtual={len(self.virtual_children)}>"
        )
