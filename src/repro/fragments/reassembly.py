"""Reassembling a fragmented tree into a standalone document.

Used by the ``NaiveCentralized`` baseline (which conceptually ships every
fragment to the query site and glues them back together) and by tests that
check a fragmentation loses no information.  The reassembled tree is a deep
copy built purely from fragment spans, so the test is honest: it would fail
if a fragmentation dropped or duplicated nodes.
"""

from __future__ import annotations

from repro.fragments.fragment import Fragment
from repro.fragments.fragment_tree import Fragmentation
from repro.xmltree.nodes import ELEMENT, TEXT, XMLNode, XMLTree

__all__ = ["reassemble"]


def _copy_span(fragmentation: Fragmentation, fragment: Fragment, node: XMLNode) -> XMLNode:
    """Deep-copy *node* (which belongs to *fragment*'s span), splicing child
    fragments in place of virtual nodes.  Source node ids are preserved."""
    if node.is_text:
        copy = XMLNode(TEXT, value=node.value)
        copy.node_id = node.node_id
        return copy
    copy = XMLNode(ELEMENT, tag=node.tag)
    copy.node_id = node.node_id
    for child in node.children:
        child_fragment_id = fragment.virtual_children.get(child.node_id)
        if child_fragment_id is not None:
            child_fragment = fragmentation[child_fragment_id]
            copy.append(_copy_span(fragmentation, child_fragment, child_fragment.root))
        else:
            copy.append(_copy_span(fragmentation, fragment, child))
    return copy


def reassemble(fragmentation: Fragmentation) -> XMLTree:
    """Rebuild the original document from its fragments (as a fresh tree).

    The copy keeps the source document's node ids — on a pristine document
    those are dense pre-order ids, but after in-place mutations
    (:mod:`repro.updates`) they are not, and a consumer comparing answer ids
    against the original tree (the NaiveCentralized baseline) needs the
    real ids, not a renumbering.
    """
    root_fragment = fragmentation.root_fragment
    root_copy = _copy_span(fragmentation, root_fragment, root_fragment.root)
    tree = XMLTree(root_copy, reindex=False)
    tree.adopt_preassigned_ids()
    return tree
