"""XPath-annotations on fragment-tree edges (Section 5 of the paper).

The edge from a fragment ``F_j`` to a sub-fragment ``F_k`` is annotated with
the label path connecting the root of ``F_j`` (exclusive) to the root of
``F_k`` (inclusive) in the original tree; e.g. the edge ``(F0, F4)`` in the
paper's running example is annotated ``client/broker/market``.

Annotations only expose *labels*, never content or qualifiers; the optimizer
(:mod:`repro.core.pruning`) therefore uses them conservatively.
"""

from __future__ import annotations

from typing import List

from repro.fragments.fragment_tree import Fragmentation

__all__ = ["edge_annotation", "root_label_path", "annotation_table"]


def edge_annotation(fragmentation: Fragmentation, child_fragment_id: str) -> List[str]:
    """Labels from the parent fragment's root (exclusive) down to the child
    fragment's root (inclusive)."""
    child = fragmentation[child_fragment_id]
    if child.parent_id is None:
        return []
    parent_root = fragmentation[child.parent_id].root
    labels: list[str] = [child.root.label]
    node = child.root.parent
    while node is not None and node is not parent_root:
        labels.append(node.label)
        node = node.parent
    if node is not parent_root:
        raise ValueError(
            f"fragment {child_fragment_id} is not below its declared parent {child.parent_id}"
        )
    labels.reverse()
    return labels


def root_label_path(fragmentation: Fragmentation, fragment_id: str) -> List[str]:
    """Labels from the document root (exclusive) down to the fragment's root
    (inclusive); empty for the root fragment.

    This is the concatenation of the edge annotations along the fragment-tree
    path from the root fragment, which is exactly the information a
    coordinator holding an annotated fragment tree can reconstruct.
    """
    path: list[str] = []
    chain = [fragment_id] + fragmentation.ancestors(fragment_id)
    for fid in reversed(chain):
        path.extend(edge_annotation(fragmentation, fid))
    return path


def annotation_table(fragmentation: Fragmentation) -> dict[str, List[str]]:
    """Annotation of every fragment-tree edge, keyed by the child fragment id."""
    return {
        fragment_id: edge_annotation(fragmentation, fragment_id)
        for fragment_id in fragmentation.fragment_ids()
        if fragmentation.parent(fragment_id) is not None
    }
