"""Fragmentation strategies.

The paper imposes no constraint on how a tree is fragmented; these helpers
produce the fragmentations used by the experiments (explicit cut nodes, one
fragment per top-level subtree, size-balanced cuts) plus a seeded random
fragmenter used heavily by the property-based tests.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Sequence

from repro.fragments.fragment_tree import Fragmentation, FragmentationError, build_fragmentation
from repro.xmltree.nodes import NodeId, XMLNode, XMLTree
from repro.xpath.centralized import evaluate_centralized

__all__ = [
    "cut_at_nodes",
    "cut_top_level",
    "cut_matching",
    "cut_by_size",
    "cut_random",
]


def cut_at_nodes(tree: XMLTree, node_ids: Iterable[NodeId]) -> Fragmentation:
    """Fragment *tree* by cutting at explicitly chosen nodes."""
    return build_fragmentation(tree, list(node_ids))


def cut_top_level(tree: XMLTree, keep_first_with_root: bool = True) -> Fragmentation:
    """One fragment per child of the document root.

    With *keep_first_with_root* (the default, matching the paper's FT1) the
    first child stays in the root fragment, so ``j`` top-level subtrees yield
    ``j`` fragments; otherwise they yield ``j + 1``.
    """
    children = [child for child in tree.root.children if child.is_element]
    if keep_first_with_root and children:
        children = children[1:]
    return build_fragmentation(tree, [child.node_id for child in children])


def cut_matching(tree: XMLTree, query: str) -> Fragmentation:
    """Cut at every node selected by a (qualifier-free) selection query.

    Nodes that are the document root are ignored; nested matches produce
    nested fragments.
    """
    answer_ids = [
        node_id for node_id in evaluate_centralized(tree, query).answer_ids
        if node_id != tree.root.node_id
    ]
    if not answer_ids:
        raise FragmentationError(f"query {query!r} selected no cut nodes")
    return build_fragmentation(tree, answer_ids)


def cut_by_size(tree: XMLTree, max_elements: int) -> Fragmentation:
    """Greedy size-balanced fragmentation.

    Walk the tree bottom-up accumulating the number of elements that are not
    yet assigned to a cut fragment; whenever a (non-root) subtree's residual
    weight reaches *max_elements*, cut it.  Fragments end up with roughly
    ``max_elements`` elements each (the root fragment may be smaller).
    """
    if max_elements < 1:
        raise ValueError("max_elements must be positive")
    cut_ids: list[NodeId] = []
    residual: dict[NodeId, int] = {}

    def post_order(root: XMLNode) -> Iterable[XMLNode]:
        stack: list[tuple[XMLNode, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
                continue
            stack.append((node, True))
            for child in node.children:
                if child.is_element:
                    stack.append((child, False))

    for node in post_order(tree.root):
        weight = 1 + sum(
            residual.get(child.node_id, 0) for child in node.children if child.is_element
        )
        if node is not tree.root and weight >= max_elements:
            cut_ids.append(node.node_id)
            residual[node.node_id] = 0
        else:
            residual[node.node_id] = weight
    return build_fragmentation(tree, cut_ids)


def cut_random(
    tree: XMLTree,
    fragment_count: int,
    seed: int = 0,
    exclude: Callable[[XMLNode], bool] | None = None,
) -> Fragmentation:
    """Fragment by choosing ``fragment_count - 1`` random cut nodes.

    Nested cuts are allowed (and likely), exercising the "arbitrary nesting"
    the paper insists on.  With fewer eligible nodes than requested cuts, all
    eligible nodes are cut.
    """
    if fragment_count < 1:
        raise ValueError("fragment_count must be at least 1")
    rng = random.Random(seed)
    candidates = [
        node.node_id
        for node in tree.iter_elements()
        if node is not tree.root and (exclude is None or not exclude(node))
    ]
    rng.shuffle(candidates)
    chosen = sorted(candidates[: max(0, fragment_count - 1)])
    return build_fragmentation(tree, chosen)
