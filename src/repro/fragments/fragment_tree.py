"""The fragmentation of a tree and the induced fragment tree."""

from __future__ import annotations

import struct
from hashlib import blake2b
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.fragments.fragment import Fragment
from repro.xmltree.flat import FlatFragment, build_flat_fragment
from repro.xmltree.nodes import NodeId, XMLNode, XMLTree

__all__ = ["Fragmentation", "FragmentationError", "build_fragmentation"]


class FragmentationError(Exception):
    """Raised when a requested fragmentation is not well formed."""


class Fragmentation:
    """A set of disjoint fragments covering an XML tree, plus their tree.

    The fragmentation is also the paper's *fragment tree* ``FT``: fragments
    are its nodes, and fragment ``F_k`` is a child of ``F_j`` when the parent
    of ``F_k``'s root belongs to ``F_j``.
    """

    def __init__(self, tree: XMLTree):
        self.tree = tree
        self.fragments: Dict[str, Fragment] = {}
        self.root_fragment_id: Optional[str] = None
        #: node id of a fragment root -> fragment id (includes the root fragment)
        self.fragment_root_ids: Dict[NodeId, str] = {}
        #: columnar span encodings, valid for _content_version (see flat())
        self._flat_cache: Dict[str, FlatFragment] = {}
        self._content_version: Optional[str] = None
        #: per-fragment mutation epochs (see bump_epoch / version_token)
        self._epochs: Dict[str, int] = {}
        #: full-document fingerprint walks performed so far; tests assert the
        #: steady-state query path never increments this
        self.full_walks = 0

    # -- construction ---------------------------------------------------------

    def _add_fragment(self, fragment: Fragment) -> None:
        if fragment.fragment_id in self.fragments:
            raise FragmentationError(f"duplicate fragment id {fragment.fragment_id}")
        self.fragments[fragment.fragment_id] = fragment
        self.fragment_root_ids[fragment.root.node_id] = fragment.fragment_id
        if fragment.parent_id is None:
            self.root_fragment_id = fragment.fragment_id
        self._epochs[fragment.fragment_id] = 0
        self.invalidate_flat()

    # -- columnar encodings ---------------------------------------------------

    def content_fingerprint(self) -> str:
        """Placement-free fingerprint of the fragmented document.

        Covers the tree shape and content (size, labels and texts fed into a
        :mod:`hashlib` digest, so the value is identical across processes
        regardless of ``PYTHONHASHSEED``) and the fragment boundaries.  This
        is a **full document walk** — the steady-state paths never call it;
        mutations applied through :mod:`repro.updates` move the version via
        :meth:`bump_epoch` instead.  Every call increments :attr:`full_walks`
        so tests can assert the walk count stays flat while serving.
        """
        self.full_walks += 1
        hasher = blake2b(digest_size=8)
        hasher.update(struct.pack("<Q", self.tree.size()))
        for fragment_id in self.fragment_ids():
            fragment = self.fragments[fragment_id]
            hasher.update(fragment_id.encode("utf-8"))
            hasher.update(struct.pack("<q", fragment.root.node_id))
        for node in self.tree.root.iter_subtree():
            value = node.tag if node.is_element else node.value
            hasher.update(b"\x00" if value is None else value.encode("utf-8"))
            hasher.update(b"\x01")
        return hasher.hexdigest()

    def content_version(self, refresh: bool = False) -> str:
        """The cached content fingerprint, recomputed on demand.

        Passing ``refresh=True`` re-walks the document — the escape hatch for
        edits made *behind the fragmentation's back* (mutations applied
        through :mod:`repro.updates` never need it); when the fingerprint
        moved, the flat encodings are dropped with it.
        """
        if refresh or self._content_version is None:
            tag = self.content_fingerprint()
            if tag != self._content_version:
                self._flat_cache.clear()
                self._content_version = tag
        return self._content_version

    # -- mutation epochs -------------------------------------------------------

    def fragment_epoch(self, fragment_id: str) -> int:
        """How many in-place mutations have touched *fragment_id*'s span."""
        return self._epochs[fragment_id]

    def bump_epoch(self, fragment_id: str) -> int:
        """Record an in-place mutation of one fragment's span.

        Advances only the touched fragment's epoch and drops only that
        fragment's columnar encoding (rebuilt lazily on next access); every
        other fragment's arrays, and the cached content base, stay valid.
        This is what makes a write O(touched fragment) instead of
        O(document).  Returns the new epoch.
        """
        if fragment_id not in self.fragments:
            raise FragmentationError(f"unknown fragment id {fragment_id}")
        self._epochs[fragment_id] += 1
        self._flat_cache.pop(fragment_id, None)
        return self._epochs[fragment_id]

    def version_token(self) -> str:
        """An O(#fragments) version of the fragmented document, no tree walk.

        The content base (:meth:`content_version`, computed at most once per
        structural reset) folded with every fragment's mutation epoch: any
        mutation applied through :meth:`bump_epoch` moves the token, as does
        a ``refresh=True`` re-fingerprint that found out-of-band edits.
        Stable across processes (pure :mod:`hashlib`, no builtin ``hash``).
        """
        hasher = blake2b(digest_size=8)
        hasher.update(self.content_version().encode("ascii"))
        for fragment_id in self.fragment_ids():
            hasher.update(fragment_id.encode("utf-8"))
            hasher.update(struct.pack("<Q", self._epochs[fragment_id]))
        return hasher.hexdigest()

    def flat(self, fragment_id: str) -> FlatFragment:
        """The columnar encoding of one fragment span, built once and cached.

        The cache is keyed on :meth:`content_version`; re-fragmenting or
        refreshing the version after a document edit rebuilds the arrays.
        """
        self.content_version()
        encoded = self._flat_cache.get(fragment_id)
        if encoded is None:
            encoded = build_flat_fragment(self.fragments[fragment_id])
            self._flat_cache[fragment_id] = encoded
        return encoded

    def flat_cached(self, fragment_id: str) -> bool:
        """Whether *fragment_id*'s columnar encoding is currently built."""
        return fragment_id in self._flat_cache

    def invalidate_flat(self) -> None:
        """Drop the flat encodings and the cached content fingerprint."""
        self._flat_cache.clear()
        self._content_version = None

    # -- lookup ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.fragments)

    def __iter__(self) -> Iterator[Fragment]:
        return iter(self.fragments.values())

    def __getitem__(self, fragment_id: str) -> Fragment:
        return self.fragments[fragment_id]

    def fragment_ids(self) -> List[str]:
        """All fragment ids, root fragment first, then document order."""
        return list(self.fragments.keys())

    @property
    def root_fragment(self) -> Fragment:
        if self.root_fragment_id is None:
            raise FragmentationError("fragmentation has no root fragment")
        return self.fragments[self.root_fragment_id]

    def children(self, fragment_id: str) -> List[str]:
        """Ids of the direct sub-fragments of *fragment_id*."""
        return list(self.fragments[fragment_id].virtual_children.values())

    def parent(self, fragment_id: str) -> Optional[str]:
        """Id of the parent fragment, ``None`` for the root fragment."""
        return self.fragments[fragment_id].parent_id

    def ancestors(self, fragment_id: str) -> List[str]:
        """Fragment-tree ancestors of *fragment_id*, nearest first."""
        result = []
        current = self.parent(fragment_id)
        while current is not None:
            result.append(current)
            current = self.parent(current)
        return result

    def leaf_fragments(self) -> List[str]:
        """Ids of fragments without sub-fragments."""
        return [fid for fid, fragment in self.fragments.items() if fragment.is_leaf()]

    def depth(self, fragment_id: str) -> int:
        """Depth of a fragment in the fragment tree (root fragment = 0)."""
        return len(self.ancestors(fragment_id))

    def bottom_up_order(self) -> List[str]:
        """Fragment ids ordered so children precede their parents."""
        order = sorted(self.fragments, key=self.depth, reverse=True)
        return order

    def top_down_order(self) -> List[str]:
        """Fragment ids ordered so parents precede their children."""
        return sorted(self.fragments, key=self.depth)

    def parent_node_of(self, fragment_id: str) -> Optional[XMLNode]:
        """The node (in the parent fragment) whose child is this fragment's root."""
        fragment = self.fragments[fragment_id]
        return fragment.root.parent

    # -- accounting ---------------------------------------------------------------

    def total_nodes(self) -> int:
        """Total node count across fragment spans (== tree size)."""
        return sum(fragment.node_count() for fragment in self.fragments.values())

    def total_elements(self) -> int:
        return sum(fragment.element_count() for fragment in self.fragments.values())

    def total_bytes(self) -> int:
        return sum(fragment.approximate_bytes() for fragment in self.fragments.values())

    def max_fragment_elements(self) -> int:
        """Largest fragment size in elements (drives parallel-cost analysis)."""
        return max(fragment.element_count() for fragment in self.fragments.values())

    def summary(self) -> str:
        """A readable multi-line summary of the fragmentation."""
        lines = [f"fragmentation of tree with {self.tree.size()} nodes:"]
        for fragment_id in self.top_down_order():
            fragment = self.fragments[fragment_id]
            indent = "  " * (self.depth(fragment_id) + 1)
            lines.append(
                f"{indent}{fragment_id}: root=<{fragment.root.label}> "
                f"elements={fragment.element_count()} "
                f"bytes~{fragment.approximate_bytes()} "
                f"children={self.children(fragment_id)}"
            )
        return "\n".join(lines)

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants of a fragmentation.

        * exactly one root fragment whose root is the document root,
        * fragment spans are disjoint and cover the whole tree,
        * every non-root fragment's root has its parent inside the parent
          fragment's span.
        """
        if self.root_fragment_id is None:
            raise FragmentationError("no root fragment")
        if self.root_fragment.root is not self.tree.root:
            raise FragmentationError("the root fragment must contain the document root")

        seen: Dict[NodeId, str] = {}
        for fragment in self.fragments.values():
            for node in fragment.iter_span():
                if node.node_id in seen:
                    raise FragmentationError(
                        f"node {node.node_id} appears in fragments "
                        f"{seen[node.node_id]} and {fragment.fragment_id}"
                    )
                seen[node.node_id] = fragment.fragment_id
        if len(seen) != self.tree.size():
            raise FragmentationError(
                f"fragments cover {len(seen)} nodes but the tree has {self.tree.size()}"
            )

        for fragment in self.fragments.values():
            if fragment.parent_id is None:
                continue
            parent_fragment = self.fragments[fragment.parent_id]
            parent_node = fragment.root.parent
            if parent_node is None:
                raise FragmentationError(
                    f"non-root fragment {fragment.fragment_id} is rooted at the document root"
                )
            if seen.get(parent_node.node_id) != parent_fragment.fragment_id:
                raise FragmentationError(
                    f"parent of fragment {fragment.fragment_id} root is not in "
                    f"fragment {parent_fragment.fragment_id}"
                )
            if fragment.root.node_id not in parent_fragment.virtual_children:
                raise FragmentationError(
                    f"fragment {fragment.fragment_id} is not registered as a virtual "
                    f"child of {parent_fragment.fragment_id}"
                )

    def __repr__(self) -> str:
        return f"<Fragmentation fragments={len(self.fragments)} tree_nodes={self.tree.size()}>"


def build_fragmentation(
    tree: XMLTree,
    cut_node_ids: Sequence[NodeId] | Iterable[NodeId],
    fragment_prefix: str = "F",
) -> Fragmentation:
    """Build a fragmentation of *tree* by cutting at the given nodes.

    Every cut node becomes the root of its own fragment; the root fragment
    (``F0``) is rooted at the document root.  Cut nodes may be nested
    arbitrarily (a cut node inside another cut subtree produces a
    sub-sub-fragment), matching the paper's "most generic possible" setting.
    Fragment ids are assigned in document order of their roots.
    """
    cut_ids = sorted(set(cut_node_ids))
    for node_id in cut_ids:
        node = tree.node(node_id)
        if node is tree.root:
            raise FragmentationError("the document root cannot be a cut node")
        if not node.is_element:
            raise FragmentationError(f"cut node {node_id} is not an element")

    fragmentation = Fragmentation(tree)
    cut_set = set(cut_ids)

    # Fragment ids in document order: F0 for the root, then one per cut node.
    id_by_root: Dict[NodeId, str] = {tree.root.node_id: f"{fragment_prefix}0"}
    for index, node_id in enumerate(cut_ids, start=1):
        id_by_root[node_id] = f"{fragment_prefix}{index}"

    def owning_fragment_root(node: XMLNode) -> NodeId:
        """Root (node id) of the fragment that owns *node*."""
        current = node
        while current.parent is not None:
            if current.node_id in cut_set:
                return current.node_id
            current = current.parent
        return current.node_id  # the document root

    root_fragment = Fragment(id_by_root[tree.root.node_id], tree.root, parent_id=None)
    fragmentation._add_fragment(root_fragment)

    fragments_by_root: Dict[NodeId, Fragment] = {tree.root.node_id: root_fragment}
    for node_id in cut_ids:
        node = tree.node(node_id)
        parent_root_id = owning_fragment_root(node.parent)
        parent_fragment_id = id_by_root[parent_root_id]
        fragment = Fragment(id_by_root[node_id], node, parent_id=parent_fragment_id)
        fragmentation._add_fragment(fragment)
        fragments_by_root[node_id] = fragment

    for node_id in cut_ids:
        node = tree.node(node_id)
        parent_root_id = owning_fragment_root(node.parent)
        fragments_by_root[parent_root_id].add_virtual_child(node_id, id_by_root[node_id])

    return fragmentation
