"""MVCC fragment snapshots: pin a version's flat encodings, read while writing.

The per-session readers-writer gate (PR 5) gives single-document
correctness the blunt way: a write drains and blocks *every* reader of its
document.  This module provides the finer instrument.  A reader *pins* the
current ``(version_tag, {fragment_id -> FlatFragment})`` pair at admission
and evaluates against those captured columns for its whole lifetime, while
a writer mutates the object tree and bumps fragment epochs concurrently —
the flats a snapshot holds are immutable, and
:meth:`~repro.fragments.fragment_tree.Fragmentation.bump_epoch` merely pops
the touched fragment from the *cache*, so a pinned snapshot simply keeps
the superseded encoding alive while new readers get freshly built ones.

Capture is synchronous: :meth:`SnapshotManager.pin` materializes every
fragment's flat in one block with no awaits, so under the cooperative
single-threaded event loop no write can interleave and a snapshot is
torn-free by construction.  Snapshots are refcounted per version — all
readers of one version share one :class:`VersionSnapshot` — and reclaimed
when the last pinned reader releases.  Writers honour a bounded
retained-versions watermark (:attr:`SnapshotPolicy.max_retained_versions`):
when that many version snapshots are still alive, the next write waits for
a reclaim instead of growing version history without bound.

Answers computed against a snapshot are exact *at the pinned version*: the
``answer_ids`` and all traffic accounting match what a quiesced evaluation
at that version would produce (the fairness bench verifies this
differentially).  Materializing answer *nodes* through the live tree after
a later write is subject to the staleness contract documented in the
README: ids from a pinned version may since have been deleted.
"""

from __future__ import annotations

import asyncio
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.fragments.fragment_tree import Fragmentation
from repro.xmltree.flat import FlatFragment
from repro.xmltree.nodes import NodeId

__all__ = [
    "SnapshotPolicy",
    "SnapshotStats",
    "VersionSnapshot",
    "SnapshotManager",
]


@dataclass(frozen=True)
class SnapshotPolicy:
    """Knobs for MVCC snapshot reads (``ServiceConfig.snapshots``).

    ``enabled``
        When true (the default), eligible reads — PaX2 on the columnar
        kernel engine — pin a version snapshot instead of holding the
        session's read gate, so writes never wait for reader drain.
        Reference-engine and non-PaX2 reads always use the gate: they walk
        the live object tree and cannot be snapshot-isolated.
    ``max_retained_versions``
        Watermark on simultaneously retained version snapshots.  A writer
        finding this many alive waits for a reclaim before installing the
        next version, bounding memory under sustained writes against
        long-running readers.
    """

    enabled: bool = True
    max_retained_versions: int = 8

    def __post_init__(self) -> None:
        if self.max_retained_versions < 1:
            raise ValueError("max_retained_versions must be >= 1")


@dataclass
class SnapshotStats:
    """Lifetime counters, surfaced in host summaries and Prometheus."""

    pins: int = 0
    snapshots_created: int = 0
    snapshots_reclaimed: int = 0
    peak_retained: int = 0
    writer_stalls: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "pins": self.pins,
            "snapshots_created": self.snapshots_created,
            "snapshots_reclaimed": self.snapshots_reclaimed,
            "peak_retained": self.peak_retained,
            "writer_stalls": self.writer_stalls,
        }


class VersionSnapshot:
    """One pinned version: its tag and every fragment's flat encoding.

    Shared by all readers pinned at the same version; ``pins`` is managed
    by the owning :class:`SnapshotManager`.
    """

    __slots__ = ("version", "flats", "pins", "_span_totals")

    def __init__(self, version: str, flats: Dict[str, FlatFragment]):
        self.version = version
        self.flats = flats
        self.pins = 0
        #: fragment_id -> total tree nodes in the fragment's span plus all
        #: sub-fragment spans beneath it, memoized per snapshot
        self._span_totals: Dict[str, int] = {}

    def flat(self, fragment_id: str) -> FlatFragment:
        return self.flats[fragment_id]

    def _span_total(self, fragment_id: str) -> int:
        cached = self._span_totals.get(fragment_id)
        if cached is not None:
            return cached
        flat = self.flats[fragment_id]
        total = flat.n
        for index in flat.virtual_indices:
            for sub_id in flat.virtual_at[index]:
                total += self._span_total(sub_id)
        self._span_totals[fragment_id] = total
        return total

    def locate(self, node_id: NodeId) -> Optional[tuple]:
        """``(fragment_id, flat_index)`` of *node_id* at this version."""
        for fragment_id, flat in self.flats.items():
            index = flat.index_of(node_id)
            if index is not None:
                return fragment_id, index
        return None

    def answer_subtree_nodes(self, answer_ids: Iterable[NodeId]) -> int:
        """Total subtree nodes of the answers, computed from the snapshot.

        Mirrors ``answer_subtree_nodes(tree, ids)`` over the live tree —
        subtree size within the answer's own fragment span plus the full
        span totals of every sub-fragment hanging below the subtree — but
        reads only the pinned flats, so the accounting stays exact even
        when the live tree has moved on.
        """
        total = 0
        for node_id in answer_ids:
            located = self.locate(node_id)
            if located is None:
                continue
            fragment_id, index = located
            flat = self.flats[fragment_id]
            size = flat.subtree_size[index]
            total += size
            for virtual_index in flat.virtuals_in(index, index + size):
                for sub_id in flat.virtual_at[virtual_index]:
                    total += self._span_total(sub_id)
        return total

    def __repr__(self) -> str:
        return (
            f"<VersionSnapshot {self.version[:12]} pins={self.pins}"
            f" fragments={len(self.flats)}>"
        )


class SnapshotManager:
    """Per-session registry of pinned version snapshots.

    All methods except :meth:`wait_for_capacity` are synchronous and must
    be called between awaits of the session's event loop — that is what
    makes capture atomic without any locking.
    """

    def __init__(self, fragmentation: Fragmentation, policy: SnapshotPolicy):
        self.fragmentation = fragmentation
        self.policy = policy
        self.stats = SnapshotStats()
        self._snapshots: Dict[str, VersionSnapshot] = {}
        self._capacity_waiters: List[asyncio.Future] = []
        self._loop_ref: Optional[weakref.ref] = None

    # -- loop binding -------------------------------------------------------

    def _bind_loop(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        bound = self._loop_ref() if self._loop_ref is not None else None
        if bound is not loop:
            # A fresh loop (the blocking facade runs each call under its
            # own asyncio.run): pins and waiters from the dead loop cannot
            # resolve any more — drop them.
            self._snapshots.clear()
            self._capacity_waiters.clear()
            self._loop_ref = weakref.ref(loop)
        return loop

    # -- reader side --------------------------------------------------------

    async def prewarm(self) -> None:
        """Spread post-write encoding rebuilds over loop turns before a pin.

        :meth:`pin` must capture synchronously to stay torn-free, which
        makes it pay for every columnar encoding a write invalidated in one
        uninterruptible block — on a shared host that block stalls *other*
        tenants' readers behind this tenant's post-write rebuild chain.
        Building the missing encodings here first, yielding after each
        fragment, keeps the synchronous part of the pin to (usually) plain
        dict copies.  Purely best-effort: a write landing between yields
        just leaves the pin a fragment to rebuild inline.
        """
        fragmentation = self.fragmentation
        for fragment_id in fragmentation.fragment_ids():
            if fragmentation.flat_cached(fragment_id):
                continue
            fragmentation.flat(fragment_id)
            await asyncio.sleep(0)

    def pin(self, version: str) -> VersionSnapshot:
        """Pin *version*, capturing every fragment's flat synchronously.

        Must be called with the session at exactly *version* (no awaits
        between reading the session version and pinning).
        """
        self._bind_loop()
        snapshot = self._snapshots.get(version)
        if snapshot is None:
            fragmentation = self.fragmentation
            flats = {
                fragment_id: fragmentation.flat(fragment_id)
                for fragment_id in fragmentation.fragment_ids()
            }
            snapshot = VersionSnapshot(version, flats)
            self._snapshots[version] = snapshot
            self.stats.snapshots_created += 1
            self.stats.peak_retained = max(
                self.stats.peak_retained, len(self._snapshots)
            )
        snapshot.pins += 1
        self.stats.pins += 1
        return snapshot

    def release(self, snapshot: VersionSnapshot) -> None:
        snapshot.pins -= 1
        if snapshot.pins > 0:
            return
        if self._snapshots.get(snapshot.version) is snapshot:
            del self._snapshots[snapshot.version]
            self.stats.snapshots_reclaimed += 1
            self._wake_capacity_waiters()

    # -- writer side --------------------------------------------------------

    @property
    def retained(self) -> int:
        """Version snapshots currently alive (pinned by at least one reader)."""
        return len(self._snapshots)

    async def wait_for_capacity(self) -> None:
        """Writer back-pressure: wait until a new version may be installed.

        Called before applying a mutation.  While ``max_retained_versions``
        snapshots are alive, installing another version could grow history
        past the watermark, so the writer waits for a reclaim.  Readers pin
        only the *current* version, so the alive-version count can never
        grow while we wait — this converges as soon as any pinned reader
        finishes.
        """
        loop = self._bind_loop()
        while len(self._snapshots) >= self.policy.max_retained_versions:
            waiter: asyncio.Future = loop.create_future()
            self._capacity_waiters.append(waiter)
            self.stats.writer_stalls += 1
            try:
                await waiter
            finally:
                if waiter in self._capacity_waiters:
                    self._capacity_waiters.remove(waiter)

    def _wake_capacity_waiters(self) -> None:
        waiters, self._capacity_waiters = self._capacity_waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    def __repr__(self) -> str:
        return (
            f"<SnapshotManager retained={len(self._snapshots)}"
            f" watermark={self.policy.max_retained_versions}>"
        )
