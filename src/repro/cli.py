"""Command-line interface.

``python -m repro`` (or the ``repro-query`` console script) evaluates an
XPath query of the fragment ``X`` over an XML file, optionally fragmenting
and "distributing" it first, and reports the answers together with the run
statistics the paper's guarantees are about.

Examples
--------
Evaluate centrally (no fragmentation)::

    python -m repro query catalog.xml "//book[price < 30]/title"

Fragment into ~2000-element pieces, one simulated site each, run PaX2 with
XPath-annotations and show the statistics::

    python -m repro query catalog.xml "//book[price < 30]/title" \
        --fragment-size 2000 --algorithm pax2 --annotations --stats

Inspect how a document would be fragmented::

    python -m repro fragment catalog.xml --fragment-size 2000

Generate an XMark-like document for experiments::

    python -m repro generate --bytes 200000 --sites 2 --output sites.xml

Serve a batch of queries concurrently through the service layer (queries
read one per line from a file, or from stdin with ``-``) and report cache
and latency metrics::

    python -m repro serve catalog.xml --queries queries.txt \
        --fragment-size 2000 --concurrency 32 --repeat 4

Host several named documents behind one shared scheduler (queries are
routed round-robin across documents, or pinned with a ``name::query``
prefix)::

    python -m repro serve --doc store=catalog.xml --doc bids=auctions.xml \
        --queries queries.txt --fragment-size 2000

Benchmark the shared multi-document host against N isolated single-document
engines and emit ``BENCH_tenancy.json``::

    python -m repro bench-tenancy --docs 8 --ops 64 --write-ratio 0.05

Benchmark the service layer against the sequential engine loop and emit
``BENCH_service.json``::

    python -m repro bench-service --requests 128 --clients 1 8 64

Benchmark the columnar per-fragment kernels against the object-tree
reference passes and emit ``BENCH_core.json``::

    python -m repro bench-core --bytes 150000 --repeats 3

Benchmark the fused multi-query scan against query-at-a-time kernel passes
and emit ``BENCH_batch.json`` (shares the ``--bytes/--seed/--repeats`` knob
set with ``bench-core``)::

    python -m repro bench-batch --batch-sizes 1 4 16 64

Benchmark incremental maintenance under a mixed read/write stream against
the rebuild-everything baseline and emit ``BENCH_update.json``::

    python -m repro bench-update --ops 400 --write-ratios 0.01 0.10

Run the multi-tenant workload under an injected fault schedule (message
drops, a flapping site, a straggler), verify every degraded answer is a
flagged sound subset, and emit ``BENCH_chaos.json``::

    python -m repro bench-chaos --docs 4 --ops 48 --drop 0.05

Pit a small victim tenant against a mixed read/write antagonist at full
blast, differentially verify every MVCC snapshot read at its pinned
version, and emit ``BENCH_fairness.json``::

    python -m repro bench-fairness --victim-ops 48 --antagonist-clients 16

Serve with tracing on: write every request's span tree as JSON lines, a
Chrome trace for https://ui.perfetto.dev, a slow-query log, and expose
Prometheus metrics while the workload runs::

    python -m repro serve catalog.xml --queries queries.txt \
        --chrome-trace trace.json --slow-log slow.jsonl --metrics-port 9464

Fetch the Prometheus text exposition (or ``--json`` for the full stats
document) from a running ``serve --metrics-port`` endpoint::

    python -m repro stats http://127.0.0.1:9464

Benchmark the observability layer itself — tracing overhead on/off, per-stage
attribution residue, guarantee-checker coverage — and emit ``BENCH_obs.json``::

    python -m repro bench-obs --requests 192 --clients 16
"""

from __future__ import annotations

import argparse
import re
import sys
import traceback
from typing import Optional, Sequence

from repro.core.engine import ALGORITHMS, DistributedQueryEngine
from repro.core.kernel.dispatch import ENGINES
from repro.distributed.placement import one_site_per_fragment, round_robin_placement
from repro.fragments.fragment_tree import build_fragmentation
from repro.fragments.fragmenters import cut_by_size, cut_matching
from repro.workloads.xmark import SiteSpec, generate_sites_document
from repro.xmltree.parser import parse_xml_file
from repro.xmltree.serializer import serialize
from repro.xpath.centralized import evaluate_centralized

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed XPath evaluation with performance guarantees (SIGMOD 2007)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="evaluate an XPath query over an XML file")
    query.add_argument("document", help="path to the XML document")
    query.add_argument("xpath", help="query of the fragment X")
    query.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS) + ["centralized"], default="pax2",
        help="evaluation strategy (default: pax2)",
    )
    query.add_argument(
        "--fragment-size", type=int, default=None, metavar="N",
        help="fragment the document into pieces of about N elements",
    )
    query.add_argument(
        "--fragment-at", default=None, metavar="QUERY",
        help="fragment at every node selected by this (qualifier-free) query",
    )
    query.add_argument(
        "--sites", type=int, default=None, metavar="K",
        help="distribute fragments over K sites round-robin (default: one site per fragment)",
    )
    query.add_argument("--annotations", action="store_true",
                       help="enable the XPath-annotation optimization")
    query.add_argument(
        "--engine", choices=list(ENGINES), default=None,
        help="per-fragment pass implementation (default: kernel)",
    )
    query.add_argument("--stats", action="store_true", help="print run statistics")
    query.add_argument("--xml", action="store_true", help="print answers as XML snippets")
    query.add_argument("--limit", type=int, default=None, help="print at most this many answers")

    fragment = commands.add_parser("fragment", help="show how a document would be fragmented")
    fragment.add_argument("document", help="path to the XML document")
    fragment.add_argument("--fragment-size", type=int, default=None, metavar="N")
    fragment.add_argument("--fragment-at", default=None, metavar="QUERY")

    generate = commands.add_parser("generate", help="generate an XMark-like document")
    generate.add_argument("--bytes", type=int, default=100_000, dest="approx_bytes",
                          help="approximate size per site subtree (default 100000)")
    generate.add_argument("--sites", type=int, default=1, help="number of XMark site subtrees")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", default=None, help="write to this file instead of stdout")

    serve = commands.add_parser(
        "serve", help="serve a batch of queries concurrently through the service layer"
    )
    serve.add_argument("document", nargs="?", default=None,
                       help="path to the XML document (single-document mode)")
    serve.add_argument(
        "--doc", action="append", default=None, metavar="NAME=PATH", dest="docs",
        help="host a named document (repeatable; replaces the positional"
             " document and routes queries across all names)",
    )
    serve.add_argument(
        "--queries", default="-", metavar="FILE",
        help="file with one XPath query per line ('-' reads stdin; default)",
    )
    serve.add_argument("--fragment-size", type=int, default=None, metavar="N")
    serve.add_argument("--fragment-at", default=None, metavar="QUERY")
    serve.add_argument("--sites", type=int, default=None, metavar="K",
                       help="distribute fragments over K sites round-robin")
    serve.add_argument("--algorithm", choices=["pax2", "pax3", "naive", "parbox"],
                       default="pax2")
    serve.add_argument(
        "--engine", choices=list(ENGINES), default=None,
        help="per-fragment pass implementation (default: kernel)",
    )
    serve.add_argument("--concurrency", type=int, default=16,
                       help="simultaneous clients issuing the batch (default 16)")
    serve.add_argument("--repeat", type=int, default=1,
                       help="issue the query list this many times (exercises the cache)")
    serve.add_argument("--site-parallelism", type=int, default=4,
                       help="concurrent requests each site serves (default 4)")
    serve.add_argument("--cache-capacity", type=int, default=256,
                       help="result-cache entries (0 disables caching)")
    serve.add_argument("--answers", action="store_true",
                       help="print the answer count of every request")
    serve.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                       help="serve /metrics, /stats.json and /healthz on this port"
                            " while the workload runs (0 picks a free port)")
    serve.add_argument("--linger", type=float, default=0.0, metavar="SECONDS",
                       help="keep the metrics endpoint up this long after the"
                            " workload finishes (default 0)")
    serve.add_argument("--trace", default=None, metavar="FILE",
                       help="append every request's span tree to FILE as JSON lines")
    serve.add_argument("--chrome-trace", default=None, metavar="FILE",
                       help="write a Chrome trace to FILE (open at ui.perfetto.dev)")
    serve.add_argument("--slow-log", default=None, metavar="FILE",
                       help="JSON-lines log of requests at or above --slow-threshold")
    serve.add_argument("--slow-threshold", type=float, default=0.1, metavar="SECONDS",
                       help="slow-query latency threshold in seconds (default 0.1)")

    stats = commands.add_parser(
        "stats", help="fetch metrics from a running serve --metrics-port endpoint"
    )
    stats.add_argument("url", help="endpoint base URL, e.g. http://127.0.0.1:9464")
    stats.add_argument("--json", action="store_true", dest="as_json",
                       help="fetch the /stats.json document instead of /metrics")

    bench_service = commands.add_parser(
        "bench-service",
        help="benchmark service throughput vs the sequential engine loop",
    )
    bench_service.add_argument("--requests", type=int, default=128,
                               help="requests in the workload stream (default 128)")
    bench_service.add_argument("--clients", type=int, nargs="+", default=[1, 8, 64],
                               metavar="N", help="client concurrencies (default 1 8 64)")
    bench_service.add_argument("--bytes", type=int, default=60_000, dest="total_bytes",
                               help="approximate XMark document size (default 60000)")
    bench_service.add_argument("--seed", type=int, default=5)
    bench_service.add_argument("--site-parallelism", type=int, default=4)
    bench_service.add_argument("--output", default="BENCH_service.json",
                               help="report path (default BENCH_service.json)")

    bench_core = commands.add_parser(
        "bench-core",
        help="benchmark the engine tiers (reference, kernel, numpy vector)"
             " against each other",
    )
    _add_kernel_bench_knobs(bench_core, default_output="BENCH_core.json")
    bench_core.add_argument(
        "--large-bytes", type=int, default=None, dest="large_bytes",
        help="larger-document sweep size for the vector-tier headline"
             " (default 4x --bytes; 0 skips the sweep)")

    bench_batch = commands.add_parser(
        "bench-batch",
        help="benchmark the fused multi-query scan vs query-at-a-time kernel passes",
    )
    _add_kernel_bench_knobs(bench_batch, default_output="BENCH_batch.json")
    bench_batch.add_argument("--batch-sizes", type=int, nargs="+", default=[1, 4, 16, 64],
                             metavar="N", help="wave sizes to time (default 1 4 16 64)")

    bench_tenancy = commands.add_parser(
        "bench-tenancy",
        help="benchmark one shared multi-document host vs N isolated engines",
    )
    bench_tenancy.add_argument("--docs", type=int, default=8,
                               help="hosted documents / tenants (default 8)")
    bench_tenancy.add_argument("--bytes", type=int, default=30_000, dest="total_bytes",
                               help="approximate XMark size per document (default 30000)")
    bench_tenancy.add_argument("--ops", type=int, default=64,
                               help="operations per document stream (default 64)")
    bench_tenancy.add_argument("--write-ratio", type=float, default=0.05,
                               help="write fraction of each stream (default 0.05)")
    bench_tenancy.add_argument("--clients", type=int, default=4,
                               help="concurrent clients per document (default 4)")
    bench_tenancy.add_argument("--seed", type=int, default=5,
                               help="XMark generator seed (default 5)")
    bench_tenancy.add_argument("--workload-seed", type=int, default=17,
                               help="mixed-workload generator seed (default 17)")
    bench_tenancy.add_argument("--site-parallelism", type=int, default=4)
    bench_tenancy.add_argument("--output", default="BENCH_tenancy.json",
                               help="report path (default BENCH_tenancy.json)")

    bench_chaos = commands.add_parser(
        "bench-chaos",
        help="benchmark graceful degradation under an injected fault schedule",
    )
    bench_chaos.add_argument("--docs", type=int, default=4,
                             help="hosted documents / tenants (default 4)")
    bench_chaos.add_argument("--bytes", type=int, default=20_000, dest="total_bytes",
                             help="approximate XMark size per document (default 20000)")
    bench_chaos.add_argument("--ops", type=int, default=48,
                             help="operations per document stream (default 48)")
    bench_chaos.add_argument("--write-ratio", type=float, default=0.05,
                             help="write fraction of each stream (default 0.05)")
    bench_chaos.add_argument("--clients", type=int, default=4,
                             help="concurrent clients per document (default 4)")
    bench_chaos.add_argument("--drop", type=float, default=0.05, dest="drop_probability",
                             help="message drop probability on the faulty tenant's"
                                  " sites (default 0.05)")
    bench_chaos.add_argument("--straggler", type=float, default=0.002,
                             dest="straggler_seconds",
                             help="extra wire seconds per message on the straggler"
                                  " site (default 0.002)")
    bench_chaos.add_argument("--deadline", type=float, default=5.0,
                             dest="deadline_seconds",
                             help="per-request deadline budget in the chaos phase,"
                                  " seconds (default 5.0)")
    bench_chaos.add_argument("--seed", type=int, default=5,
                             help="XMark generator seed (default 5)")
    bench_chaos.add_argument("--workload-seed", type=int, default=17,
                             help="mixed-workload generator seed (default 17)")
    bench_chaos.add_argument("--fault-seed", type=int, default=23,
                             help="fault injector seed (default 23)")
    bench_chaos.add_argument("--site-parallelism", type=int, default=4)
    bench_chaos.add_argument("--output", default="BENCH_chaos.json",
                             help="report path (default BENCH_chaos.json)")

    bench_fairness = commands.add_parser(
        "bench-fairness",
        help="benchmark victim-tenant isolation under an antagonist stream"
             " (MVCC snapshots + weighted-fair admission vs the legacy gate)",
    )
    bench_fairness.add_argument("--bytes", type=int, default=24_000, dest="total_bytes",
                                help="approximate XMark size of the victim's"
                                     " document (default 24000)")
    bench_fairness.add_argument("--antagonist-bytes", type=int, default=8_000,
                                help="approximate XMark size of the antagonist's"
                                     " document (default 8000)")
    bench_fairness.add_argument("--victim-ops", type=int, default=48,
                                help="victim stream operations (default 48)")
    bench_fairness.add_argument("--antagonist-ops", type=int, default=144,
                                help="antagonist stream operations (default 144)")
    bench_fairness.add_argument("--victim-clients", type=int, default=4,
                                help="concurrent victim clients (default 4)")
    bench_fairness.add_argument("--antagonist-clients", type=int, default=16,
                                help="concurrent antagonist clients (default 16)")
    bench_fairness.add_argument("--victim-write-ratio", type=float, default=0.1,
                                help="victim write fraction (default 0.1)")
    bench_fairness.add_argument("--antagonist-write-ratio", type=float, default=0.3,
                                help="antagonist write fraction (default 0.3)")
    bench_fairness.add_argument("--victim-weight", type=float, default=2.0,
                                help="victim admission weight (default 2.0)")
    bench_fairness.add_argument("--antagonist-weight", type=float, default=1.0,
                                help="antagonist admission weight (default 1.0)")
    bench_fairness.add_argument("--antagonist-slice", type=int, default=1,
                                help="antagonist max-in-flight slice; 0 disables"
                                     " (default 1)")
    bench_fairness.add_argument("--max-in-flight", type=int, default=4,
                                help="shared admission capacity (default 4)")
    bench_fairness.add_argument("--max-retained-versions", type=int, default=8,
                                help="snapshot retention watermark (default 8)")
    bench_fairness.add_argument("--seed", type=int, default=5,
                                help="XMark generator seed (default 5)")
    bench_fairness.add_argument("--workload-seed", type=int, default=17,
                                help="mixed-workload generator seed (default 17)")
    bench_fairness.add_argument("--site-parallelism", type=int, default=4)
    bench_fairness.add_argument("--repeats", type=int, default=5,
                                help="repeats of each timed phase; read latencies"
                                     " are pooled (default 5)")
    bench_fairness.add_argument("--output", default="BENCH_fairness.json",
                                help="report path (default BENCH_fairness.json)")

    bench_update = commands.add_parser(
        "bench-update",
        help="benchmark incremental maintenance vs rebuild-everything under writes",
    )
    bench_update.add_argument("--bytes", type=int, default=150_000, dest="total_bytes",
                              help="approximate XMark document size (default 150000)")
    bench_update.add_argument("--seed", type=int, default=5,
                              help="XMark generator seed (default 5)")
    bench_update.add_argument("--ops", type=int, default=400,
                              help="operations per timed stream (default 400)")
    bench_update.add_argument("--write-ratios", type=float, nargs="+",
                              default=[0.01, 0.10], metavar="R",
                              help="write fractions of the stream (default 0.01 0.10)")
    bench_update.add_argument("--workload-seed", type=int, default=17,
                              help="mixed-workload generator seed (default 17)")
    bench_update.add_argument("--output", default="BENCH_update.json",
                              help="report path (default BENCH_update.json)")

    bench_obs = commands.add_parser(
        "bench-obs",
        help="benchmark tracing overhead, latency attribution and guarantee checks",
    )
    bench_obs.add_argument("--requests", type=int, default=192,
                           help="requests in the workload stream (default 192)")
    bench_obs.add_argument("--clients", type=int, default=16,
                           help="concurrent clients in the throughput phases (default 16)")
    bench_obs.add_argument("--bytes", type=int, default=60_000, dest="total_bytes",
                           help="approximate XMark document size (default 60000)")
    bench_obs.add_argument("--seed", type=int, default=5,
                           help="XMark generator seed (default 5)")
    bench_obs.add_argument("--repeats", type=int, default=5,
                           help="ABBA measurement blocks (untraced/traced/"
                                "traced/untraced passes each); the enabled"
                                " cost compares the fastest pass per mode"
                                " (default 5)")
    bench_obs.add_argument("--site-parallelism", type=int, default=4)
    bench_obs.add_argument("--processes", type=int, default=4,
                           help="fresh interpreters the enabled-overhead"
                                " measurement is resampled in; per-process"
                                " code layout can tax one mode's hot path,"
                                " so the fastest pass per mode is taken"
                                " across all of them (default 4)")
    bench_obs.add_argument("--output", default="BENCH_obs.json",
                           help="report path (default BENCH_obs.json)")

    lint = commands.add_parser(
        "lint",
        help="run the AST-based concurrency & invariant checkers",
        description="Static analysis over the service stack: permit leaks,"
                    " blocking calls in coroutines, loop-affinity bugs,"
                    " unbalanced counter staging, unlabeled sheds, and"
                    " off-taxonomy tracer spans.  Exit 0 = clean, 1 ="
                    " unsuppressed findings, 2 = analyzer crash.",
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to analyze (default: src)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the machine-readable report (schema in README)")
    lint.add_argument("--baseline", metavar="FILE",
                      help="adopt findings recorded in FILE instead of failing on them")
    lint.add_argument("--update-baseline", metavar="FILE",
                      help="write current unsuppressed findings to FILE and exit 0")
    lint.add_argument("--list-rules", action="store_true",
                      help="print every rule's id, summary and full documentation")
    lint.add_argument("--verbose", action="store_true",
                      help="also show suppressed and baselined findings in text output")

    return parser


def _add_kernel_bench_knobs(parser: argparse.ArgumentParser, default_output: str) -> None:
    """The knob set ``bench-core`` and ``bench-batch`` share.

    One definition keeps the two kernel benchmarks comparable: the same
    document size, generator seed and best-of-N repeat policy apply to both,
    so a batch-speedup number can be read against the core-speedup number
    from the same workload.
    """
    parser.add_argument("--bytes", type=int, default=150_000, dest="total_bytes",
                        help="approximate XMark document size (default 150000)")
    parser.add_argument("--seed", type=int, default=5,
                        help="XMark generator seed (default 5)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default 3)")
    parser.add_argument("--output", default=default_output,
                        help=f"report path (default {default_output})")


def _fragment_document(tree, fragment_size: Optional[int], fragment_at: Optional[str]):
    """Build the fragmentation requested on the command line."""
    if fragment_size is not None and fragment_at is not None:
        raise SystemExit("use either --fragment-size or --fragment-at, not both")
    if fragment_at is not None:
        return cut_matching(tree, fragment_at)
    if fragment_size is not None:
        return cut_by_size(tree, max_elements=fragment_size)
    return build_fragmentation(tree, [])


def _cmd_query(args: argparse.Namespace) -> int:
    tree = parse_xml_file(args.document)

    if args.algorithm == "centralized":
        answer_ids = evaluate_centralized(tree, args.xpath).answer_ids
        _print_answers(tree, answer_ids, args)
        return 0

    fragmentation = _fragment_document(tree, args.fragment_size, args.fragment_at)
    if args.sites is not None:
        placement = round_robin_placement(fragmentation, site_count=args.sites)
    else:
        placement = one_site_per_fragment(fragmentation)
    engine = DistributedQueryEngine(
        fragmentation,
        placement=placement,
        algorithm=args.algorithm,
        use_annotations=args.annotations,
        engine=args.engine,
    )
    result = engine.execute(args.xpath)
    _print_answers(tree, result.answer_ids, args)
    if args.stats:
        print()
        print(result.summary())
    return 0


def _print_answers(tree, answer_ids, args) -> None:
    limit = args.limit if getattr(args, "limit", None) else len(answer_ids)
    print(f"{len(answer_ids)} answer(s)")
    for node_id in answer_ids[:limit]:
        node = tree.node(node_id)
        if getattr(args, "xml", False):
            from repro.xmltree.serializer import serialize_node

            sys.stdout.write(serialize_node(node, pretty=True))
        else:
            text = node.text()
            print(f"  <{node.tag}> {text}" if text else f"  <{node.tag}>")
    if limit < len(answer_ids):
        print(f"  ... and {len(answer_ids) - limit} more")


def _cmd_fragment(args: argparse.Namespace) -> int:
    tree = parse_xml_file(args.document)
    fragmentation = _fragment_document(tree, args.fragment_size, args.fragment_at)
    fragmentation.validate()
    print(fragmentation.summary())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    specs = [SiteSpec.from_bytes(args.approx_bytes) for _ in range(args.sites)]
    tree = generate_sites_document(specs, seed=args.seed)
    document = serialize(tree, pretty=True, declaration=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"wrote {tree.size()} nodes (~{tree.approximate_bytes()} bytes) to {args.output}")
    else:
        sys.stdout.write(document)
    return 0


def _read_queries(source: str) -> list:
    """Read one query per line, skipping blanks and ``#`` comments."""
    if source == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    queries = [line.strip() for line in lines]
    return [query for query in queries if query and not query.startswith("#")]


def _parse_doc_specs(specs) -> list:
    """``NAME=PATH`` pairs from repeated ``--doc`` options."""
    documents = []
    for spec in specs:
        name, separator, path = spec.partition("=")
        if not separator or not name or not path:
            raise SystemExit(f"--doc expects NAME=PATH, got {spec!r}")
        documents.append((name, path))
    return documents


#: what a ``name::query`` pin's left side may look like (document names —
#: see repro.service.store — never contain XPath metacharacters)
_PIN_NAME = re.compile(r"^[A-Za-z0-9_.\-]+$")


def _route_queries(queries: list, documents: list) -> list:
    """Assign each query line a document: ``name::query`` pins, the rest
    round-robin across the hosted documents.

    A pin naming a document that is not hosted is an error, not a fallback —
    a typo must not silently round-robin the raw line (whose ``name::``
    prefix would parse as a label test) onto an arbitrary document.
    """
    names = [name for name, _ in documents]
    routed = []
    cursor = 0
    for query in queries:
        name, separator, rest = query.partition("::")
        if separator and _PIN_NAME.match(name):
            if name not in names:
                raise SystemExit(
                    f"query {query!r} is pinned to unknown document {name!r};"
                    f" hosted: {', '.join(names)}"
                )
            routed.append((name, rest))
        else:
            routed.append((names[cursor % len(names)], query))
            cursor += 1
    return routed


def _build_tracer(args: argparse.Namespace):
    """A :class:`~repro.obs.trace.Tracer` for ``serve``'s tracing flags.

    Returns ``None`` when no observability flag was given, so the host keeps
    the allocation-free no-op tracer.
    """
    from repro.obs import ChromeTraceExporter, JsonLinesExporter, SlowQueryLog, Tracer

    exporters = []
    if args.trace:
        exporters.append(JsonLinesExporter(args.trace))
    if args.chrome_trace:
        exporters.append(ChromeTraceExporter(args.chrome_trace))
    if args.slow_log:
        exporters.append(SlowQueryLog(args.slow_log, threshold_seconds=args.slow_threshold))
    if not exporters and args.metrics_port is None:
        return None
    return Tracer(exporters=exporters)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import ServiceHost

    queries = _read_queries(args.queries)
    if not queries:
        raise SystemExit("no queries to serve (expected one XPath query per line)")
    if args.docs and args.document:
        raise SystemExit("use either a positional document or --doc name=path, not both")
    if args.docs:
        documents = _parse_doc_specs(args.docs)
    elif args.document:
        documents = [("default", args.document)]
    else:
        raise SystemExit("no document to serve (positional path or --doc name=path)")

    tracer = _build_tracer(args)
    host = ServiceHost(
        algorithm=args.algorithm,
        engine=args.engine,
        site_parallelism=args.site_parallelism,
        cache_capacity=args.cache_capacity,
        max_in_flight=max(args.concurrency, 1),
        tracer=tracer,
    )
    for name, path in documents:
        tree = parse_xml_file(path)
        fragmentation = _fragment_document(tree, args.fragment_size, args.fragment_at)
        if args.sites is not None:
            placement = round_robin_placement(
                fragmentation, site_count=args.sites, site_prefix=f"{name}/S"
            )
        else:
            placement = one_site_per_fragment(fragmentation, site_prefix=f"{name}/S")
        host.register(name, fragmentation, placement)

    batch = _route_queries(queries, documents) * max(args.repeat, 1)

    import asyncio

    async def serve_all():
        endpoint = None
        if args.metrics_port is not None:
            from repro.obs import MetricsServer

            endpoint = await MetricsServer(host, port=args.metrics_port).start()
            print(f"[metrics at {endpoint.url}/metrics — also /stats.json /healthz]")
        gate = asyncio.Semaphore(max(args.concurrency, 1))

        async def client(name, query):
            async with gate:
                return await host.submit(name, query)

        try:
            results = await asyncio.gather(
                *(client(name, query) for name, query in batch)
            )
            if endpoint is not None and args.linger > 0:
                print(f"[metrics endpoint lingering {args.linger:g}s — ctrl-c to stop]")
                await asyncio.sleep(args.linger)
            return results
        finally:
            if endpoint is not None:
                await endpoint.stop()

    results = asyncio.run(serve_all())
    if args.answers:
        for (name, query), result in zip(batch, results):
            print(f"{len(result):6d} answer(s)  [{name}] {query}")
    print(host.summary())
    if tracer is not None:
        tracer.close()
        print(
            f"tracing: {tracer.requests_traced} request(s) traced,"
            f" {tracer.violation_count} guarantee violation(s)"
        )
        for flag, path in (("--trace", args.trace),
                           ("--chrome-trace", args.chrome_trace),
                           ("--slow-log", args.slow_log)):
            if path:
                print(f"  {flag} written to {path}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import urllib.request

    base = args.url.rstrip("/")
    if not base.startswith(("http://", "https://")):
        base = f"http://{base}"
    route = "/stats.json" if args.as_json else "/metrics"
    with urllib.request.urlopen(base + route, timeout=10.0) as response:
        sys.stdout.write(response.read().decode("utf-8"))
    return 0


def _cmd_bench_service(args: argparse.Namespace) -> int:
    from repro.bench.service_bench import (
        render_summary,
        run_service_benchmark,
        write_benchmark_json,
    )

    report = run_service_benchmark(
        total_bytes=args.total_bytes,
        requests=args.requests,
        client_counts=args.clients,
        seed=args.seed,
        site_parallelism=args.site_parallelism,
    )
    path = write_benchmark_json(report, args.output)
    print(render_summary(report))
    print(f"[written to {path}]")
    return 0


def _cmd_bench_core(args: argparse.Namespace) -> int:
    from repro.bench.core_bench import (
        render_summary,
        run_core_benchmark,
        write_benchmark_json,
    )

    report = run_core_benchmark(
        total_bytes=args.total_bytes,
        seed=args.seed,
        repeats=args.repeats,
        large_bytes=args.large_bytes,
    )
    path = write_benchmark_json(report, args.output)
    print(render_summary(report))
    print(f"[written to {path}]")
    return 0


def _cmd_bench_batch(args: argparse.Namespace) -> int:
    from repro.bench.batch_bench import (
        render_summary,
        run_batch_benchmark,
        write_benchmark_json,
    )

    report = run_batch_benchmark(
        total_bytes=args.total_bytes,
        seed=args.seed,
        repeats=args.repeats,
        batch_sizes=args.batch_sizes,
    )
    path = write_benchmark_json(report, args.output)
    print(render_summary(report))
    print(f"[written to {path}]")
    return 0


def _cmd_bench_tenancy(args: argparse.Namespace) -> int:
    from repro.bench.tenancy_bench import (
        render_summary,
        run_tenancy_benchmark,
        write_benchmark_json,
    )

    report = run_tenancy_benchmark(
        documents=args.docs,
        total_bytes=args.total_bytes,
        ops_per_document=args.ops,
        write_ratio=args.write_ratio,
        clients_per_document=args.clients,
        seed=args.seed,
        workload_seed=args.workload_seed,
        site_parallelism=args.site_parallelism,
    )
    path = write_benchmark_json(report, args.output)
    print(render_summary(report))
    print(f"[written to {path}]")
    return 0


def _cmd_bench_chaos(args: argparse.Namespace) -> int:
    from repro.bench.chaos_bench import (
        render_summary,
        run_chaos_benchmark,
        write_benchmark_json,
    )

    report = run_chaos_benchmark(
        documents=args.docs,
        total_bytes=args.total_bytes,
        ops_per_document=args.ops,
        write_ratio=args.write_ratio,
        clients_per_document=args.clients,
        drop_probability=args.drop_probability,
        straggler_seconds=args.straggler_seconds,
        deadline_seconds=args.deadline_seconds,
        seed=args.seed,
        workload_seed=args.workload_seed,
        fault_seed=args.fault_seed,
        site_parallelism=args.site_parallelism,
    )
    path = write_benchmark_json(report, args.output)
    print(render_summary(report))
    print(f"[written to {path}]")
    return 0


def _cmd_bench_fairness(args: argparse.Namespace) -> int:
    from repro.bench.fairness_bench import (
        render_summary,
        run_fairness_benchmark,
        write_benchmark_json,
    )

    report = run_fairness_benchmark(
        total_bytes=args.total_bytes,
        antagonist_bytes=args.antagonist_bytes,
        victim_ops=args.victim_ops,
        antagonist_ops=args.antagonist_ops,
        victim_clients=args.victim_clients,
        antagonist_clients=args.antagonist_clients,
        victim_write_ratio=args.victim_write_ratio,
        antagonist_write_ratio=args.antagonist_write_ratio,
        victim_weight=args.victim_weight,
        antagonist_weight=args.antagonist_weight,
        antagonist_slice=args.antagonist_slice if args.antagonist_slice > 0 else None,
        max_in_flight=args.max_in_flight,
        max_retained_versions=args.max_retained_versions,
        seed=args.seed,
        workload_seed=args.workload_seed,
        site_parallelism=args.site_parallelism,
        repeats=args.repeats,
    )
    path = write_benchmark_json(report, args.output)
    print(render_summary(report))
    print(f"[written to {path}]")
    return 0


def _cmd_bench_update(args: argparse.Namespace) -> int:
    from repro.bench.update_bench import (
        render_summary,
        run_update_benchmark,
        write_benchmark_json,
    )

    report = run_update_benchmark(
        total_bytes=args.total_bytes,
        seed=args.seed,
        ops=args.ops,
        write_ratios=args.write_ratios,
        workload_seed=args.workload_seed,
    )
    path = write_benchmark_json(report, args.output)
    print(render_summary(report))
    print(f"[written to {path}]")
    return 0


def _cmd_bench_obs(args: argparse.Namespace, from_shell: bool = False) -> int:
    import os

    if from_shell and os.environ.get("PYTHONHASHSEED") is None:
        # Pin the hash seed and relaunch before anything is imported:
        # str-hash randomisation shuffles every dict layout at interpreter
        # start and moves the measured tracing overhead by several points
        # from one invocation to the next — a reproducible benchmark pins
        # it (the answers are order-independent either way).  Only the
        # shell invocation relaunches; programmatic callers (tests) keep
        # their interpreter.
        os.environ["PYTHONHASHSEED"] = "0"
        os.execv(sys.executable, [sys.executable, "-m", "repro", *sys.argv[1:]])

    from repro.bench.obs_bench import (
        render_summary,
        run_obs_benchmark,
        write_benchmark_json,
    )

    report = run_obs_benchmark(
        total_bytes=args.total_bytes,
        requests=args.requests,
        clients=args.clients,
        seed=args.seed,
        repeats=args.repeats,
        site_parallelism=args.site_parallelism,
        processes=args.processes,
    )
    path = write_benchmark_json(report, args.output)
    print(render_summary(report))
    print(f"[written to {path}]")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """`repro lint`: exit 0 clean, 1 on findings, 2 on analyzer crash."""
    from repro import analysis

    try:
        if args.list_rules:
            for rule in analysis.all_rules():
                print(f"{rule.id}: {rule.summary}")
                doc = type(rule).doc()
                if doc:
                    print()
                    for line in doc.splitlines():
                        print(f"    {line}" if line else "")
                    print()
            return 0
        baseline = None
        if args.baseline:
            baseline = analysis.load_baseline(args.baseline)
        report = analysis.run(args.paths, baseline=baseline)
        if args.update_baseline:
            count = analysis.save_baseline(args.update_baseline, report.findings)
            print(f"baseline {args.update_baseline}: {count} entr{'y' if count == 1 else 'ies'} written")
            return 0
        if args.as_json:
            print(analysis.render_json(report))
        else:
            print(analysis.render_text(report, verbose_suppressed=args.verbose))
        return report.exit_code
    except Exception:  # noqa: BLE001 - crash (exit 2) is distinct from findings (exit 1)
        traceback.print_exc(file=sys.stderr)
        print("repro lint: analyzer crashed (exit 2)", file=sys.stderr)
        return 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "fragment":
        return _cmd_fragment(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "bench-obs":
        return _cmd_bench_obs(args, from_shell=argv is None)
    if args.command == "bench-service":
        return _cmd_bench_service(args)
    if args.command == "bench-core":
        return _cmd_bench_core(args)
    if args.command == "bench-batch":
        return _cmd_bench_batch(args)
    if args.command == "bench-tenancy":
        return _cmd_bench_tenancy(args)
    if args.command == "bench-chaos":
        return _cmd_bench_chaos(args)
    if args.command == "bench-fairness":
        return _cmd_bench_fairness(args)
    if args.command == "bench-update":
        return _cmd_bench_update(args)
    if args.command == "lint":
        return _cmd_lint(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
