"""A small XML parser for the subset of XML the reproduction uses.

The workload generator and the examples write plain element/text documents
(no attributes are required by the paper's queries, but attributes are
accepted and ignored so that real XMark output can be loaded).  Supported:

* element tags with optional attributes (attributes are discarded),
* self-closing tags,
* text content with the five standard entities,
* comments and processing instructions / XML declarations (skipped),
* CDATA sections.

The parser is a straightforward single-pass scanner; error positions are
reported as character offsets.
"""

from __future__ import annotations

import os
import re
import sys

from repro.xmltree.errors import XMLSyntaxError
from repro.xmltree.nodes import ELEMENT, TEXT, XMLNode, XMLTree

__all__ = ["parse_xml", "parse_xml_file"]

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-:]*")
_ENTITIES = {
    "&lt;": "<",
    "&gt;": ">",
    "&amp;": "&",
    "&apos;": "'",
    "&quot;": '"',
}


def _unescape(raw: str) -> str:
    """Replace the five predefined entities (and numeric references)."""
    if "&" not in raw:
        return raw
    out = raw
    for entity, char in _ENTITIES.items():
        out = out.replace(entity, char)
    out = re.sub(r"&#(\d+);", lambda match: chr(int(match.group(1))), out)
    out = re.sub(r"&#x([0-9A-Fa-f]+);", lambda match: chr(int(match.group(1), 16)), out)
    return out


class _Scanner:
    """Cursor over the document text."""

    def __init__(self, data: str):
        self.data = data
        self.pos = 0
        self.length = len(data)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.data[index] if index < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.data.startswith(token, self.pos)

    def skip(self, count: int) -> None:
        self.pos += count

    def skip_until(self, token: str, what: str) -> None:
        index = self.data.find(token, self.pos)
        if index < 0:
            raise XMLSyntaxError(f"unterminated {what}", self.pos)
        self.pos = index + len(token)

    def take_until(self, token: str, what: str) -> str:
        index = self.data.find(token, self.pos)
        if index < 0:
            raise XMLSyntaxError(f"unterminated {what}", self.pos)
        chunk = self.data[self.pos:index]
        self.pos = index + len(token)
        return chunk

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.data[self.pos].isspace():
            self.pos += 1

    def read_name(self) -> str:
        match = _NAME_RE.match(self.data, self.pos)
        if not match:
            raise XMLSyntaxError("expected a name", self.pos)
        self.pos = match.end()
        # Interned so tag comparisons downstream (node tests, dispatch
        # tables) are pointer comparisons and flat tag tables dedup for free.
        return sys.intern(match.group(0))


def parse_xml(data: str, keep_whitespace_text: bool = False) -> XMLTree:
    """Parse an XML document string into an :class:`XMLTree`.

    Whitespace-only text between elements is dropped unless
    *keep_whitespace_text* is true, matching how the paper's trees are drawn
    (pure structure plus meaningful leaf text).
    """
    scanner = _Scanner(data)
    root: XMLNode | None = None
    stack: list[XMLNode] = []

    def emit_text(raw: str) -> None:
        if not raw:
            return
        if not keep_whitespace_text and not raw.strip():
            return
        if not stack:
            if raw.strip():
                raise XMLSyntaxError("text content outside the root element", scanner.pos)
            return
        # Text payloads are interned too: workload generators draw from a
        # fixed vocabulary, so repeated values (prices, country names, ...)
        # collapse to one string object each.
        stack[-1].append(XMLNode(TEXT, value=sys.intern(_unescape(raw))))

    while not scanner.at_end():
        if scanner.peek() != "<":
            start = scanner.pos
            index = scanner.data.find("<", start)
            if index < 0:
                index = scanner.length
            emit_text(scanner.data[start:index])
            scanner.pos = index
            continue

        if scanner.startswith("<?"):
            scanner.skip_until("?>", "processing instruction")
            continue
        if scanner.startswith("<!--"):
            scanner.skip_until("-->", "comment")
            continue
        if scanner.startswith("<![CDATA["):
            scanner.skip(len("<![CDATA["))
            emit_text(scanner.take_until("]]>", "CDATA section"))
            continue
        if scanner.startswith("<!"):
            scanner.skip_until(">", "declaration")
            continue

        if scanner.startswith("</"):
            scanner.skip(2)
            tag = scanner.read_name()
            scanner.skip_whitespace()
            if scanner.peek() != ">":
                raise XMLSyntaxError(f"malformed closing tag </{tag}", scanner.pos)
            scanner.skip(1)
            if not stack:
                raise XMLSyntaxError(f"closing tag </{tag}> without an open element", scanner.pos)
            open_node = stack.pop()
            if open_node.tag != tag:
                raise XMLSyntaxError(
                    f"closing tag </{tag}> does not match <{open_node.tag}>", scanner.pos
                )
            continue

        # Opening (or self-closing) tag.
        scanner.skip(1)
        tag = scanner.read_name()
        node = XMLNode(ELEMENT, tag=tag)
        # Skip attributes (quoted values may contain '>' so they must be
        # consumed properly, not just scanned for the next '>').
        while True:
            scanner.skip_whitespace()
            char = scanner.peek()
            if char == ">":
                scanner.skip(1)
                self_closing = False
                break
            if char == "/" and scanner.peek(1) == ">":
                scanner.skip(2)
                self_closing = True
                break
            if not char:
                raise XMLSyntaxError(f"unterminated tag <{tag}", scanner.pos)
            scanner.read_name()
            scanner.skip_whitespace()
            if scanner.peek() == "=":
                scanner.skip(1)
                scanner.skip_whitespace()
                quote = scanner.peek()
                if quote not in ("'", '"'):
                    raise XMLSyntaxError("attribute value must be quoted", scanner.pos)
                scanner.skip(1)
                scanner.take_until(quote, "attribute value")

        if stack:
            stack[-1].append(node)
        elif root is None:
            root = node
        else:
            raise XMLSyntaxError("multiple root elements", scanner.pos)
        if not self_closing:
            stack.append(node)

    if stack:
        raise XMLSyntaxError(f"unclosed element <{stack[-1].tag}>", scanner.pos)
    if root is None:
        raise XMLSyntaxError("document has no root element", 0)
    return XMLTree(root)


def parse_xml_file(path: str | os.PathLike, keep_whitespace_text: bool = False) -> XMLTree:
    """Parse an XML file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_xml(handle.read(), keep_whitespace_text=keep_whitespace_text)
