"""Node and tree model.

The model is deliberately minimal: ordered element nodes with a tag, text
nodes with a string value, and stable integer identifiers assigned in
document (pre-order) order.  Attributes, namespaces and processing
instructions are outside the paper's query fragment and are not modelled.

Node identifiers are the glue between the distributed algorithms and the
ground truth: a query answer is a set of node ids, and those ids survive
fragmentation (fragments reference the same node objects as the original
tree), so the distributed result can be compared bit-for-bit against the
centralized evaluation.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.xmltree.errors import XMLTreeError

__all__ = ["NodeId", "XMLNode", "XMLTree", "ELEMENT", "TEXT"]

NodeId = int

ELEMENT = "element"
TEXT = "text"


class XMLNode:
    """A node of an XML tree (element or text).

    Public attributes
    -----------------
    node_id:
        Stable pre-order identifier assigned by :meth:`XMLTree.reindex`.
        ``-1`` until the node is attached to an indexed tree.
    kind:
        Either :data:`ELEMENT` or :data:`TEXT`.
    tag:
        Element tag, ``None`` for text nodes.
    value:
        Text content, ``None`` for element nodes.
    parent / children:
        Tree structure, in document order.
    """

    __slots__ = ("node_id", "kind", "tag", "value", "parent", "children")

    def __init__(
        self,
        kind: str,
        tag: Optional[str] = None,
        value: Optional[str] = None,
    ):
        if kind not in (ELEMENT, TEXT):
            raise XMLTreeError(f"unknown node kind: {kind!r}")
        if kind == ELEMENT and not tag:
            raise XMLTreeError("element nodes require a tag")
        if kind == TEXT and value is None:
            raise XMLTreeError("text nodes require a value")
        self.node_id: NodeId = -1
        self.kind = kind
        self.tag = tag
        self.value = value
        self.parent: Optional[XMLNode] = None
        self.children: list[XMLNode] = []

    # -- construction -----------------------------------------------------

    def append(self, child: "XMLNode") -> "XMLNode":
        """Attach *child* as the last child and return it."""
        if self.kind != ELEMENT:
            raise XMLTreeError("text nodes cannot have children")
        if child.parent is not None:
            raise XMLTreeError("node already has a parent")
        child.parent = self
        self.children.append(child)
        return child

    def extend(self, children: list["XMLNode"]) -> None:
        """Attach several children in order."""
        for child in children:
            self.append(child)

    # -- classification ---------------------------------------------------

    @property
    def is_element(self) -> bool:
        return self.kind == ELEMENT

    @property
    def is_text(self) -> bool:
        return self.kind == TEXT

    @property
    def label(self) -> str:
        """Tag for elements, the pseudo-label ``#text`` for text nodes."""
        return self.tag if self.kind == ELEMENT else "#text"

    # -- content ----------------------------------------------------------

    def text(self) -> str:
        """Concatenated value of the node's *direct* text children.

        For a text node this is its own value.  This is what ``text() = str``
        qualifiers compare against.
        """
        if self.kind == TEXT:
            return self.value or ""
        return "".join(child.value or "" for child in self.children if child.is_text)

    def numeric_value(self) -> Optional[float]:
        """The node's text parsed as a number, or ``None`` if not numeric.

        ``val() op num`` qualifiers use this; a leading currency symbol is
        tolerated because the paper's running example stores prices as
        ``$374``.
        """
        raw = self.text().strip()
        if raw.startswith("$"):
            raw = raw[1:]
        if not raw:
            return None
        try:
            return float(raw)
        except ValueError:
            return None

    # -- navigation -------------------------------------------------------

    def element_children(self) -> Iterator["XMLNode"]:
        """The node's element children, in document order."""
        return (child for child in self.children if child.is_element)

    def iter_subtree(self) -> Iterator["XMLNode"]:
        """Pre-order iteration over the subtree rooted at this node."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_descendants(self) -> Iterator["XMLNode"]:
        """Pre-order iteration over proper descendants."""
        iterator = self.iter_subtree()
        next(iterator)  # skip self
        return iterator

    def ancestors(self) -> Iterator["XMLNode"]:
        """Proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root_path_labels(self) -> list[str]:
        """Labels from the document root down to (and including) this node."""
        labels = [self.label]
        for ancestor in self.ancestors():
            labels.append(ancestor.label)
        labels.reverse()
        return labels

    def depth(self) -> int:
        """Number of proper ancestors."""
        return sum(1 for _ in self.ancestors())

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (including self)."""
        return sum(1 for _ in self.iter_subtree())

    def find_first(self, predicate: Callable[["XMLNode"], bool]) -> Optional["XMLNode"]:
        """First node in document order of this subtree matching *predicate*."""
        for node in self.iter_subtree():
            if predicate(node):
                return node
        return None

    def find_all(self, predicate: Callable[["XMLNode"], bool]) -> list["XMLNode"]:
        """All nodes in document order of this subtree matching *predicate*."""
        return [node for node in self.iter_subtree() if predicate(node)]

    # -- misc ---------------------------------------------------------------

    def __repr__(self) -> str:
        if self.kind == ELEMENT:
            return f"<XMLNode element {self.tag!r} id={self.node_id}>"
        preview = (self.value or "")[:20]
        return f"<XMLNode text {preview!r} id={self.node_id}>"


class XMLTree:
    """An XML document: a root element plus a node-id index.

    The tree owns document order.  After any structural change callers should
    invoke :meth:`reindex`; all factory functions in this package
    (:func:`repro.xmltree.parse_xml`, :class:`repro.xmltree.TreeBuilder`,
    the workload generators) return trees that are already indexed.
    """

    def __init__(self, root: XMLNode, reindex: bool = True):
        if not root.is_element:
            raise XMLTreeError("the root of a tree must be an element")
        if root.parent is not None:
            raise XMLTreeError("the root of a tree must not have a parent")
        self.root = root
        self._by_id: dict[NodeId, XMLNode] = {}
        self._next_node_id: NodeId = 0
        if reindex:
            self.reindex()

    # -- indexing -----------------------------------------------------------

    def reindex(self) -> None:
        """Assign pre-order ``node_id`` values and rebuild the id index.

        A full reindex renumbers *every* node, invalidating ids held outside
        the tree (fragmentations, cached answers).  In-place mutations use
        :meth:`register_subtree` instead, which hands out fresh ids beyond
        the pre-order range without disturbing existing ones.
        """
        self._by_id.clear()
        for index, node in enumerate(self.root.iter_subtree()):
            node.node_id = index
            self._by_id[index] = node
        self._next_node_id = len(self._by_id)

    def register_subtree(self, root: XMLNode) -> int:
        """Index an attached subtree of fresh nodes, assigning new ids.

        Ids are allocated from a monotone counter and never reused, so every
        id stays stable and unique across any sequence of inserts and
        deletes (ids of inserted nodes do *not* follow document pre-order —
        only uniqueness and stability are guaranteed, which is what
        fragmentation and answer accounting rely on).  Returns the number of
        nodes registered.
        """
        count = 0
        for node in root.iter_subtree():
            node.node_id = self._next_node_id
            self._by_id[node.node_id] = node
            self._next_node_id += 1
            count += 1
        return count

    def adopt_preassigned_ids(self) -> None:
        """Rebuild the id index from ids the nodes already carry.

        For trees whose nodes were built with meaningful ids (e.g. a
        reassembled copy preserving the source document's ids, which after
        in-place mutations are *not* a dense pre-order numbering).  Ids must
        be assigned and unique; the fresh-id counter resumes past the
        highest one.
        """
        self._by_id.clear()
        highest = -1
        for node in self.root.iter_subtree():
            if node.node_id < 0:
                raise XMLTreeError("adopt_preassigned_ids: node without an assigned id")
            if node.node_id in self._by_id:
                raise XMLTreeError(f"adopt_preassigned_ids: duplicate node id {node.node_id}")
            self._by_id[node.node_id] = node
            if node.node_id > highest:
                highest = node.node_id
        self._next_node_id = highest + 1

    def unregister_subtree(self, root: XMLNode) -> int:
        """Drop a detached subtree's nodes from the id index.

        The removed ids are retired for good (never reallocated).  Returns
        the number of nodes unregistered.
        """
        count = 0
        for node in root.iter_subtree():
            self._by_id.pop(node.node_id, None)
            count += 1
        return count

    def node(self, node_id: NodeId) -> XMLNode:
        """Look a node up by id."""
        try:
            return self._by_id[node_id]
        except KeyError:
            raise XMLTreeError(f"unknown node id {node_id}") from None

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._by_id

    # -- whole-tree views ----------------------------------------------------

    def iter_nodes(self) -> Iterator[XMLNode]:
        """All nodes in document order."""
        return self.root.iter_subtree()

    def iter_elements(self) -> Iterator[XMLNode]:
        """All element nodes in document order."""
        return (node for node in self.iter_nodes() if node.is_element)

    def size(self) -> int:
        """Total node count."""
        return len(self._by_id) if self._by_id else self.root.subtree_size()

    def element_count(self) -> int:
        """Element node count."""
        return sum(1 for _ in self.iter_elements())

    def approximate_bytes(self) -> int:
        """Approximate serialized size, used to parameterize workloads.

        Counted as tag characters (twice, for open/close) plus text content
        plus angle-bracket overhead; close enough to the real serialization
        for "cumulative fragment data size (MB)" sweeps.
        """
        total = 0
        for node in self.iter_nodes():
            if node.is_element:
                total += 2 * len(node.tag or "") + 5
            else:
                total += len(node.value or "")
        return total

    def __repr__(self) -> str:
        return f"<XMLTree root={self.root.tag!r} nodes={self.size()}>"
