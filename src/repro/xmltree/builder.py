"""Programmatic tree construction helpers.

Two styles are supported:

* the functional :func:`element` / :func:`text` constructors, convenient for
  literal trees in tests and examples::

      tree = XMLTree(element("clientele",
          element("client",
              element("name", text("Anna")),
              element("country", text("US")))))

* the stateful :class:`TreeBuilder`, convenient for generators that emit a
  document while walking some other structure (the XMark-like workload
  generator uses it).
"""

from __future__ import annotations

import sys
from typing import Union

from repro.xmltree.errors import XMLTreeError
from repro.xmltree.nodes import ELEMENT, TEXT, XMLNode, XMLTree

__all__ = ["element", "text", "TreeBuilder"]

Child = Union[XMLNode, str]


def text(value: str) -> XMLNode:
    """Create a text node (value interned, as the parser does)."""
    return XMLNode(TEXT, value=sys.intern(str(value)))


def element(tag: str, *children: Child) -> XMLNode:
    """Create an element node with the given children.

    Plain strings among *children* are converted to text nodes, which keeps
    literal trees compact: ``element("name", "Anna")``.  Tags are interned
    so tag comparisons anywhere downstream are pointer comparisons.
    """
    node = XMLNode(ELEMENT, tag=sys.intern(tag))
    for child in children:
        if isinstance(child, str):
            node.append(text(child))
        elif isinstance(child, XMLNode):
            node.append(child)
        else:
            raise XMLTreeError(f"cannot attach {type(child).__name__} as a child")
    return node


class TreeBuilder:
    """Incremental builder with an explicit open-element stack.

    Example::

        builder = TreeBuilder()
        with builder.open("person"):
            builder.leaf("name", "Anna")
            builder.leaf("age", "32")
        tree = builder.tree()
    """

    def __init__(self):
        self._root: XMLNode | None = None
        self._stack: list[XMLNode] = []

    class _OpenContext:
        """Context manager returned by :meth:`TreeBuilder.open`."""

        def __init__(self, builder: "TreeBuilder"):
            self._builder = builder

        def __enter__(self) -> "TreeBuilder":
            return self._builder

        def __exit__(self, exc_type, exc, tb) -> None:
            if exc_type is None:
                self._builder.close()

    def open(self, tag: str) -> "TreeBuilder._OpenContext":
        """Open an element; use as a context manager or pair with :meth:`close`."""
        node = XMLNode(ELEMENT, tag=sys.intern(tag))
        if self._stack:
            self._stack[-1].append(node)
        elif self._root is None:
            self._root = node
        else:
            raise XMLTreeError("document already has a root element")
        self._stack.append(node)
        return TreeBuilder._OpenContext(self)

    def close(self) -> None:
        """Close the innermost open element."""
        if not self._stack:
            raise XMLTreeError("no open element to close")
        self._stack.pop()

    def add_text(self, value: str) -> None:
        """Append a text node to the innermost open element."""
        if not self._stack:
            raise XMLTreeError("text content outside of any element")
        self._stack[-1].append(text(value))

    def leaf(self, tag: str, value: str | None = None) -> None:
        """Append ``<tag>value</tag>`` to the innermost open element."""
        if not self._stack:
            raise XMLTreeError("leaf element outside of any element")
        node = XMLNode(ELEMENT, tag=sys.intern(tag))
        if value is not None:
            node.append(text(value))
        self._stack[-1].append(node)

    def add_subtree(self, node: XMLNode) -> None:
        """Graft an already-built subtree under the innermost open element."""
        if not self._stack:
            raise XMLTreeError("subtree outside of any element")
        self._stack[-1].append(node)

    def tree(self) -> XMLTree:
        """Finish and return the indexed tree."""
        if self._root is None:
            raise XMLTreeError("no root element was opened")
        if self._stack:
            raise XMLTreeError(f"{len(self._stack)} element(s) left open")
        return XMLTree(self._root)
