"""Adapters to and from :mod:`xml.etree.ElementTree`.

These exist so users with existing XML tooling (including real XMark output)
can move documents into the reproduction's node model and back without going
through text.  Attributes and tail ordering are preserved on the way out as
well as ElementTree allows; on the way in, attributes are dropped because the
query fragment ``X`` cannot observe them.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.xmltree.nodes import ELEMENT, TEXT, XMLNode, XMLTree

__all__ = ["from_elementtree", "to_elementtree"]


def _convert_element(source: ET.Element) -> XMLNode:
    node = XMLNode(ELEMENT, tag=source.tag)
    if source.text and source.text.strip():
        node.append(XMLNode(TEXT, value=source.text))
    for child in source:
        node.append(_convert_element(child))
        if child.tail and child.tail.strip():
            node.append(XMLNode(TEXT, value=child.tail))
    return node


def from_elementtree(source: ET.Element | ET.ElementTree) -> XMLTree:
    """Convert an ElementTree document (or element) into an :class:`XMLTree`."""
    root = source.getroot() if isinstance(source, ET.ElementTree) else source
    return XMLTree(_convert_element(root))


def _convert_node(node: XMLNode) -> ET.Element:
    out = ET.Element(node.tag or "node")
    last_child: ET.Element | None = None
    for child in node.children:
        if child.is_text:
            if last_child is None:
                out.text = (out.text or "") + (child.value or "")
            else:
                last_child.tail = (last_child.tail or "") + (child.value or "")
        else:
            converted = _convert_node(child)
            out.append(converted)
            last_child = converted
    return out


def to_elementtree(tree: XMLTree) -> ET.ElementTree:
    """Convert an :class:`XMLTree` into an ElementTree document."""
    return ET.ElementTree(_convert_node(tree.root))
