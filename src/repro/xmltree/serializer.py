"""Serialization of trees back to XML text."""

from __future__ import annotations

from repro.xmltree.nodes import XMLNode, XMLTree

__all__ = ["serialize", "serialize_node"]


def _escape(raw: str) -> str:
    """Escape the characters that must not appear literally in content."""
    return (
        raw.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def _write_node(node: XMLNode, parts: list[str], indent: int, pretty: bool) -> None:
    pad = "  " * indent if pretty else ""
    newline = "\n" if pretty else ""
    if node.is_text:
        parts.append(f"{pad}{_escape(node.value or '')}{newline}")
        return
    if not node.children:
        parts.append(f"{pad}<{node.tag}/>{newline}")
        return
    only_text = all(child.is_text for child in node.children)
    if only_text:
        content = _escape("".join(child.value or "" for child in node.children))
        parts.append(f"{pad}<{node.tag}>{content}</{node.tag}>{newline}")
        return
    parts.append(f"{pad}<{node.tag}>{newline}")
    for child in node.children:
        _write_node(child, parts, indent + 1, pretty)
    parts.append(f"{pad}</{node.tag}>{newline}")


def serialize_node(node: XMLNode, pretty: bool = False) -> str:
    """Serialize a single subtree to XML text."""
    parts: list[str] = []
    _write_node(node, parts, 0, pretty)
    return "".join(parts)


def serialize(tree: XMLTree, pretty: bool = False, declaration: bool = False) -> str:
    """Serialize a whole tree to XML text.

    *pretty* indents nested elements; *declaration* prepends the standard XML
    declaration.
    """
    header = '<?xml version="1.0" encoding="UTF-8"?>\n' if declaration else ""
    return header + serialize_node(tree.root, pretty=pretty)
