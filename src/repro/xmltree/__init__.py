"""XML tree substrate.

A small, self-contained node-labelled ordered tree model, the substrate the
paper's fragmented documents live in.  It intentionally supports exactly what
the XPath fragment ``X`` needs: element nodes with a tag, text nodes with a
value, document order, stable node identifiers, and (de)serialization.
"""

from repro.xmltree.nodes import NodeId, XMLNode, XMLTree
from repro.xmltree.builder import TreeBuilder, element, text
from repro.xmltree.parser import parse_xml, parse_xml_file
from repro.xmltree.serializer import serialize, serialize_node
from repro.xmltree.etree_adapter import from_elementtree, to_elementtree
from repro.xmltree.errors import XMLSyntaxError, XMLTreeError

__all__ = [
    "XMLNode",
    "XMLTree",
    "NodeId",
    "TreeBuilder",
    "element",
    "text",
    "parse_xml",
    "parse_xml_file",
    "serialize",
    "serialize_node",
    "from_elementtree",
    "to_elementtree",
    "XMLSyntaxError",
    "XMLTreeError",
]
