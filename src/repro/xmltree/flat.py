"""Columnar (struct-of-arrays) encoding of fragment spans.

The per-fragment passes are the hot loop of every algorithm in this repo:
each query visits every element of every evaluated fragment.  Walking the
:class:`~repro.xmltree.nodes.XMLNode` object graph pays an attribute lookup,
a method call and a list allocation per edge; :class:`FlatFragment` instead
encodes a fragment span once as flat pre-order arrays so the kernels in
:mod:`repro.core.kernel` can walk plain integer indices.

Layout
------
One entry per span node (elements *and* text), in exactly the order of
:meth:`repro.fragments.fragment.Fragment.iter_span` (document pre-order,
sub-fragments excluded):

``kind[i]``
    :data:`KIND_ELEMENT` or :data:`KIND_TEXT`.
``tag_id[i]``
    Index into the per-fragment :attr:`tags` table (interned strings);
    ``-1`` for text nodes.
``parent[i]``
    Flat index of the parent within the span; ``-1`` for the fragment root.
``subtree_size[i]``
    Number of span nodes in the subtree rooted at ``i`` (including ``i``),
    so ``i + subtree_size[i]`` is the next sibling / unrelated node —
    pre-order plus subtree sizes is the whole tree structure.
``node_ids[i]``
    The node's stable global :data:`~repro.xmltree.nodes.NodeId`.
``text_norm[i]`` / ``numeric[i]``
    For elements: the direct-text content normalized for ``text() = s``
    tests (stripped, lower-cased) and parsed for ``val() op n`` tests
    (``None`` when not numeric), precomputed once at build time instead of
    per query per item.
``virtual_at``
    Flat index of a span element -> ids of the sub-fragments hanging
    directly below it, in document order (``virtual_indices`` holds the
    keys sorted, for range queries during subtree skips).

Instances are built once per fragment and cached on
:class:`~repro.fragments.fragment_tree.Fragmentation`, keyed by the same
content fingerprint the service result cache uses, so a re-fragmentation or
document edit that would change query answers also drops the flat encodings.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro.xmltree.nodes import NodeId

__all__ = ["FlatFragment", "KIND_ELEMENT", "KIND_TEXT", "build_flat_fragment"]

KIND_ELEMENT = 0
KIND_TEXT = 1


class FlatFragment:
    """Flat pre-order columns of one fragment span (see module docstring)."""

    __slots__ = (
        "fragment_id",
        "n",
        "kind",
        "tag_id",
        "parent",
        "subtree_size",
        "node_ids",
        "tags",
        "text_norm",
        "numeric",
        "virtual_at",
        "virtual_indices",
        "element_prefix",
        "n_elements",
        "_tables",
        "_batch_tables",
        "_id_index",
        "_vector",
    )

    def __init__(
        self,
        fragment_id: str,
        kind: List[int],
        tag_id: List[int],
        parent: List[int],
        subtree_size: List[int],
        node_ids: List[NodeId],
        tags: List[str],
        text_norm: List[Optional[str]],
        numeric: List[Optional[float]],
        virtual_at: Dict[int, Tuple[str, ...]],
    ):
        self.fragment_id = fragment_id
        self.n = len(kind)
        self.kind = kind
        self.tag_id = tag_id
        self.parent = parent
        self.subtree_size = subtree_size
        self.node_ids = node_ids
        self.tags = tags
        self.text_norm = text_norm
        self.numeric = numeric
        self.virtual_at = virtual_at
        self.virtual_indices = sorted(virtual_at)
        # element_prefix[i] = number of elements among flat indices < i;
        # one extra entry so prefix[end] - prefix[start] counts a range.
        prefix = [0] * (self.n + 1)
        running = 0
        for index, k in enumerate(kind):
            prefix[index] = running
            if k == KIND_ELEMENT:
                running += 1
        prefix[self.n] = running
        self.element_prefix = prefix
        self.n_elements = running
        #: per-query dispatch tables, keyed by the plan's normalized
        #: fingerprint (see repro.core.kernel.tables.plan_tables)
        self._tables: Dict[str, object] = {}
        #: fused per-wave tables, keyed by the canonical fingerprint tuple —
        #: a separate (smaller) cache so churning wave compositions cannot
        #: evict the hot single-query tables
        #: (see repro.core.kernel.batch.batch_plan_tables)
        self._batch_tables: Dict[tuple, object] = {}
        #: node_id -> flat index, built lazily on first index_of() — only
        #: the MVCC snapshot accounting needs it, per-query scans never do
        self._id_index: Optional[Dict[NodeId, int]] = None
        #: numpy accelerator encoding (pre/post/level columns + per-tag
        #: index), built lazily by repro.core.vector.encode.vector_fragment;
        #: riding on the FlatFragment means the content-fingerprint cache,
        #: epoch bumps and MVCC snapshot pinning all govern it for free
        self._vector: Optional[object] = None

    # -- structure helpers --------------------------------------------------

    def element_children(self, index: int) -> Iterator[int]:
        """Flat indices of the element children of span node *index*."""
        kind = self.kind
        size = self.subtree_size
        child = index + 1
        end = index + size[index]
        while child < end:
            if kind[child] == KIND_ELEMENT:
                yield child
            child += size[child]

    def elements_in(self, start: int, end: int) -> int:
        """Number of elements among flat indices ``[start, end)``."""
        return self.element_prefix[end] - self.element_prefix[start]

    def virtuals_in(self, start: int, end: int) -> List[int]:
        """Flat indices in ``[start, end)`` that carry virtual children."""
        indices = self.virtual_indices
        lo = bisect.bisect_left(indices, start)
        hi = bisect.bisect_left(indices, end)
        return indices[lo:hi]

    def index_of(self, node_id: NodeId) -> Optional[int]:
        """Flat index of *node_id* within this span, ``None`` if absent."""
        index = self._id_index
        if index is None:
            index = self._id_index = {
                nid: position for position, nid in enumerate(self.node_ids)
            }
        return index.get(node_id)

    def preorder_node_ids(self) -> List[NodeId]:
        """The span's node ids in document order (for round-trip checks)."""
        return list(self.node_ids)

    def __repr__(self) -> str:
        return (
            f"<FlatFragment {self.fragment_id} nodes={self.n}"
            f" elements={self.n_elements} tags={len(self.tags)}"
            f" virtuals={len(self.virtual_at)}>"
        )


def build_flat_fragment(fragment) -> FlatFragment:
    """Encode *fragment*'s span as a :class:`FlatFragment`.

    *fragment* is a :class:`repro.fragments.fragment.Fragment`; the import is
    kept out of module scope to avoid a cycle (fragments import xmltree).
    """
    virtual_children = fragment.virtual_children

    kind: List[int] = []
    tag_id: List[int] = []
    parent: List[int] = []
    node_ids: List[NodeId] = []
    text_norm: List[Optional[str]] = []
    numeric: List[Optional[float]] = []
    tags: List[str] = []
    tag_index: Dict[str, int] = {}
    virtual_at: Dict[int, Tuple[str, ...]] = {}

    # Pre-order walk mirroring Fragment.iter_span, tracking the parent's
    # flat index with an explicit stack of (node, parent_flat_index).
    stack = [(fragment.root, -1)]
    while stack:
        node, parent_index = stack.pop()
        index = len(kind)
        node_ids.append(node.node_id)
        parent.append(parent_index)
        if node.is_element:
            kind.append(KIND_ELEMENT)
            tag = node.tag
            tid = tag_index.get(tag)
            if tid is None:
                tid = tag_index[tag] = len(tags)
                tags.append(tag)
            tag_id.append(tid)
            # The canonical test semantics live on XMLNode; precompute from
            # them so the kernel and reference paths can never diverge.
            text_norm.append(node.text().strip().lower())
            numeric.append(node.numeric_value())
            virtuals = tuple(
                virtual_children[child.node_id]
                for child in node.children
                if child.node_id in virtual_children
            )
            if virtuals:
                virtual_at[index] = virtuals
        else:
            kind.append(KIND_TEXT)
            tag_id.append(-1)
            text_norm.append(None)
            numeric.append(None)
        for child in reversed(node.children):
            if child.node_id not in virtual_children:
                stack.append((child, index))

    # Subtree sizes: every node contributes 1 to each ancestor; a reverse
    # pre-order sweep folds child sizes into parents in O(n).
    n = len(kind)
    subtree_size = [1] * n
    for index in range(n - 1, 0, -1):
        subtree_size[parent[index]] += subtree_size[index]

    return FlatFragment(
        fragment_id=fragment.fragment_id,
        kind=kind,
        tag_id=tag_id,
        parent=parent,
        subtree_size=subtree_size,
        node_ids=node_ids,
        tags=tags,
        text_norm=text_norm,
        numeric=numeric,
        virtual_at=virtual_at,
    )
