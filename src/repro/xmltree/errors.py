"""Errors raised by the XML tree substrate."""

from __future__ import annotations

__all__ = ["XMLTreeError", "XMLSyntaxError"]


class XMLTreeError(Exception):
    """Base class for all errors raised by :mod:`repro.xmltree`."""


class XMLSyntaxError(XMLTreeError):
    """Raised when parsing malformed XML text.

    Carries the character offset and a human-readable description so callers
    can point at the offending position.
    """

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
